//! Quickstart: build a threshold-automaton model, reduce it to its
//! single-round form and verify a protocol of the benchmark end to end.
//!
//! Run with `cargo run --release -p cccore --example quickstart`.

use cccore::prelude::*;
use ccprotocols::naive::naive_voting;
use ccta::ModelKind;

fn main() {
    // 1. The running example of the paper (Fig. 2/3): the naive voting
    //    protocol, modelled as a threshold automaton.
    let naive = naive_voting();
    println!("model: {naive}");
    println!(
        "single-round form has {} locations",
        naive
            .single_round()
            .expect("multi-round model")
            .locations()
            .len()
    );
    assert_eq!(naive.single_round().unwrap().kind(), ModelKind::SingleRound);

    // 2. Verify a common-coin protocol of the Table II benchmark.
    let protocol = protocol_by_name("CC85(a)").expect("benchmark protocol");
    let config = VerifierConfig::quick();
    let result = verify_protocol(&protocol, &config);
    println!(
        "\n{} ({}): agreement={}, validity={}, termination={}",
        result.protocol,
        result.category,
        result.agreement.status,
        result.validity.status,
        result.termination.status
    );
    for report in &result.termination.reports {
        println!(
            "  obligation {:<18} -> {}",
            report.spec_name,
            report.status()
        );
    }

    // 3. The broken protocol: MMR14's almost-sure termination is refuted by a
    //    counterexample to the binding condition CB2 (the Sect. II attack).
    let mmr14 = protocol_by_name("MMR14").expect("benchmark protocol");
    let result = verify_protocol(&mmr14, &config);
    println!(
        "\nMMR14: termination = {} (violated obligation: {})",
        result.termination.status,
        result.termination.violated_obligation().unwrap_or("-")
    );
    if let Some(ce) = &result.termination.counterexample {
        println!(
            "counterexample with parameters {} and {} steps",
            ce.params,
            ce.len()
        );
    }
}
