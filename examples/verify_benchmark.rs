//! Reproduces Tables II and III of the paper: verifies all eight benchmark
//! protocols and prints the per-protocol property catalogue.
//!
//! Run with `cargo run --release -p cccore --example verify_benchmark`.

use cccore::prelude::*;

fn main() {
    let config = VerifierConfig::default();
    println!("verifying the eight common-coin protocols of Table II ...\n");
    let results = verify_all(&config);
    println!("{}", render_table2(&results));

    for result in &results {
        if result.termination.is_violated() {
            println!(
                "{}: almost-sure termination refuted via {} — the adaptive-adversary attack of Sect. II",
                result.protocol,
                result.termination.violated_obligation().unwrap_or("?")
            );
        }
    }

    println!("\nTable III: property catalogue for ABY22\n");
    let aby22 = protocol_by_name("ABY22").expect("benchmark protocol");
    println!("{}", render_table3(&aby22));
}
