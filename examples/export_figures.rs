//! Exports the threshold automata of the benchmark as Graphviz files,
//! reproducing the structure diagrams of Figs. 3–6 of the paper.
//!
//! Run with `cargo run --release -p cccore --example export_figures`.
//! The DOT files are written to `target/figures/`.

use ccprotocols::{all_protocols, naive::naive_voting};
use ccta::dot::to_dot;
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir)?;

    // Fig. 3: the naive voting automaton
    fs::write(
        out_dir.join("fig3_naive_voting.dot"),
        to_dot(&naive_voting()),
    )?;

    // Fig. 4 (and the Fig. 6 refinement) for every benchmark protocol,
    // both the multi-round and the single-round form
    for protocol in all_protocols() {
        let name = protocol.name().replace(['(', ')'], "");
        fs::write(
            out_dir.join(format!("{name}.dot")),
            to_dot(protocol.model()),
        )?;
        fs::write(
            out_dir.join(format!("{name}_single_round.dot")),
            to_dot(&protocol.single_round()),
        )?;
    }
    println!(
        "wrote {} DOT files to {}",
        2 + 2 * all_protocols().len(),
        out_dir.display()
    );
    println!("render with: dot -Tpdf target/figures/MMR14.dot -o mmr14.pdf");
    Ok(())
}
