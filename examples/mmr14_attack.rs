//! Replays the adaptive-adversary attack of Sect. II against executable
//! MMR14 processes, and shows that the repaired (CONF-phase) protocol
//! terminates under the same adversary and under fair scheduling.
//!
//! Run with `cargo run --release -p cccore --example mmr14_attack`.

use ccsim::{average_decision_round, run_adaptive_attack, run_fair, ProtocolKind, Value};

fn main() {
    println!("adaptive-adversary attack (n = 4, t = 1, inputs 0, 0, 1), 40 rounds budget\n");
    for kind in [ProtocolKind::Mmr14, ProtocolKind::Fixed] {
        let outcome = run_adaptive_attack(kind, 40, 2024);
        println!(
            "{:?}: terminated = {}, rounds executed = {}, estimates split = {}, rounds with early coin = {}",
            kind,
            outcome.terminated(),
            outcome.rounds_executed,
            outcome.estimates_split(),
            outcome.rounds_with_early_coin
        );
    }

    println!(
        "\nfair (non-adversarial) scheduling, average round of the last decision over 50 runs"
    );
    for kind in [ProtocolKind::Mmr14, ProtocolKind::Fixed] {
        let avg =
            average_decision_round(kind, 4, 1, &[Value::ZERO, Value::ONE, Value::ZERO], 50, 7);
        println!("{kind:?}: {avg:.2} rounds (the paper's analysis expects at most ~4)");
    }

    let report = run_fair(
        ProtocolKind::Fixed,
        7,
        2,
        &[
            Value::ZERO,
            Value::ONE,
            Value::ZERO,
            Value::ONE,
            Value::ZERO,
        ],
        11,
        300_000,
    );
    println!(
        "\nfixed protocol with n = 7, t = 2: all decided = {}, agreement = {}, messages delivered = {}",
        report.all_decided(),
        report.agreement(),
        report.delivered_messages
    );
}
