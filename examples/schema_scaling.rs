//! Reproduces Table IV: the maximum schema count as a function of the number
//! of milestones, on the ABY22 automaton and four same-size variants.
//!
//! Run with `cargo run --release -p cccore --example schema_scaling`.

use cccore::report::{render_table4, table4_rows};
use ccprotocols::fixed::{aby22, aby22_variants};
use ccta::SystemModel;

fn main() {
    let protocol = aby22();
    let variants: Vec<(SystemModel, _)> = aby22_variants()
        .into_iter()
        .map(|m| (m, protocol.clone()))
        .collect();
    let rows = table4_rows(&variants);
    println!("{}", render_table4(&rows));
    println!(
        "the schema count grows by roughly an order of magnitude per extra milestone,\n\
         which reproduces the scaling reported in Table IV of the paper"
    );
}
