//! Worker-count and wave-size scaling of the in-check parallel engine.
//!
//! Runs the full obligation catalogue of the two heaviest Table II
//! workloads (MMR14, ABY22) at 1, 2, 4, … in-check workers, the MMR14
//! catalogue across parallel wave sizes (the O(wave) candidate-buffer
//! bound of the pooled explorer), and a multi-valuation sweep at matching
//! total thread budgets.  Every run produces identical verdicts and state
//! counts (the engine is deterministic at any worker count and wave size —
//! see `ccchecker::explorer`), so the only thing that varies is wall-clock
//! time.
//!
//! This bench is the quick-mode CI scaling job: run with
//! `BENCH_JSON=BENCH_scaling.json cargo bench -p ccbench --bench scaling`
//! on a multi-core runner to capture per-worker-count wall-clock numbers
//! (the dev container used for local verification has a single core, so
//! scaling is measured in CI).

use ccchecker::{check_over_sweep_with_threads, CheckerOptions, ExplicitChecker};
use cccore::obligations_for;
use cccore::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// The single-system obligation-catalogue workload of one protocol.
fn catalogue_workload(name: &str) -> (cccounter::CounterSystem, Vec<ccchecker::Spec>) {
    let protocol = protocol_by_name(name).expect("benchmark protocol");
    let single = protocol.single_round();
    let obligations = obligations_for(&protocol, &single);
    let valuation = ccbench::bench_config()
        .select_valuations(&single)
        .into_iter()
        .next()
        .expect("benchmark valuation");
    let sys = cccounter::CounterSystem::new(single, valuation).expect("admissible");
    let specs: Vec<ccchecker::Spec> = obligations
        .agreement
        .iter()
        .chain(obligations.validity.iter())
        .chain(obligations.termination.iter())
        .cloned()
        .collect();
    (sys, specs)
}

/// Worker counts to measure: 1, 2, 4, … up to (and always including) the
/// available parallelism.
fn worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= cores)
        .collect();
    if !counts.contains(&cores) {
        counts.push(cores);
    }
    counts
}

fn bench_in_check_worker_scaling(c: &mut Criterion) {
    let counts = worker_counts();
    for name in ["MMR14", "ABY22"] {
        let (sys, specs) = catalogue_workload(name);
        let mut group = c.benchmark_group(format!("workers/{name}"));
        group.sample_size(5);
        for &workers in &counts {
            let options = CheckerOptions::default().with_workers(workers);
            group.bench_with_input(
                BenchmarkId::new("catalogue", workers),
                &(&sys, &specs),
                |b, (sys, specs)| {
                    b.iter(|| {
                        specs
                            .iter()
                            .map(|spec| {
                                ExplicitChecker::with_options(sys, options)
                                    .check(spec)
                                    .states_explored
                            })
                            .sum::<usize>()
                    })
                },
            );
        }
        group.finish();
    }
}

/// Wave-size axis: the same catalogue workload at the widest worker count,
/// sweeping the per-wave frontier bound.  Tiny waves measure the pool
/// round-trip overhead, the unbounded wave reproduces the unchunked
/// per-level buffering this engine replaced.
fn bench_wave_size_scaling(c: &mut Criterion) {
    let workers = *worker_counts().last().expect("at least one worker count");
    let (sys, specs) = catalogue_workload("MMR14");
    let mut group = c.benchmark_group("waves/MMR14");
    group.sample_size(5);
    for (label, wave_size) in [
        ("64", 64),
        ("1024", 1024),
        ("8192", 8192),
        ("unbounded", usize::MAX),
    ] {
        let options = CheckerOptions::default()
            .with_workers(workers)
            .with_wave_size(wave_size);
        group.bench_with_input(
            BenchmarkId::new("catalogue", label),
            &(&sys, &specs),
            |b, (sys, specs)| {
                b.iter(|| {
                    specs
                        .iter()
                        .map(|spec| {
                            ExplicitChecker::with_options(sys, options)
                                .check(spec)
                                .states_explored
                        })
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

fn bench_sweep_budget_scaling(c: &mut Criterion) {
    // a broader sweep so both levels (grid cells and in-check workers) of
    // the thread budget have work to absorb
    let protocol = protocol_by_name("ABY22").expect("benchmark protocol");
    let single = protocol.single_round();
    let obligations = obligations_for(&protocol, &single);
    let all_specs: Vec<ccchecker::Spec> = obligations
        .agreement
        .iter()
        .chain(obligations.validity.iter())
        .chain(obligations.termination.iter())
        .cloned()
        .collect();
    let valuations = VerifierConfig::thorough().select_valuations(&single);
    let mut group = c.benchmark_group("budget/sweep");
    group.sample_size(5);
    for &threads in &worker_counts() {
        group.bench_with_input(
            BenchmarkId::new("ABY22", threads),
            &(&single, &all_specs, &valuations),
            |b, (single, specs, valuations)| {
                b.iter(|| {
                    check_over_sweep_with_threads(
                        single,
                        specs,
                        valuations,
                        CheckerOptions::default(),
                        threads,
                    )
                });
            },
        );
    }
    group.finish();

    // scaling summary from the recorded measurements (`measurements()` is
    // an extension of the in-tree criterion shim)
    println!("\nwall-clock vs 1 worker (identical verdicts and counts at every width):");
    for prefix in [
        "workers/MMR14/catalogue",
        "workers/ABY22/catalogue",
        "budget/sweep/ABY22",
    ] {
        let base = c
            .measurements()
            .iter()
            .find(|m| m.id == format!("{prefix}/1"))
            .map(|m| m.mean_ns);
        let Some(base) = base else { continue };
        for m in c.measurements() {
            if let Some(w) = m.id.strip_prefix(&format!("{prefix}/")) {
                println!("  {:<32} x{w:<3} {:>6.2}x", prefix, base / m.mean_ns);
            }
        }
    }
}

criterion_group!(
    benches,
    bench_in_check_worker_scaling,
    bench_wave_size_scaling,
    bench_sweep_budget_scaling
);
criterion_main!(benches);
