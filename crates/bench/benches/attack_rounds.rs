//! Criterion benchmark behind the Sect. II experiment: simulated rounds to
//! decision under fair scheduling and under the adaptive adversary.

use ccsim::{run_adaptive_attack, run_fair, ProtocolKind, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_simulated_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.sample_size(20);
    for kind in [ProtocolKind::Mmr14, ProtocolKind::Fixed] {
        group.bench_with_input(
            BenchmarkId::new("fair_run", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    run_fair(
                        kind,
                        4,
                        1,
                        &[Value::ZERO, Value::ONE, Value::ZERO],
                        42,
                        100_000,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive_attack_20_rounds", format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| run_adaptive_attack(kind, 20, 42)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_rounds);
criterion_main!(benches);
