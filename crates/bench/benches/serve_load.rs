//! Open-loop load on the resident `ccserve` daemon.
//!
//! Every prior bench measures the checker as a library; this axis measures
//! the *service*: an in-process daemon under an open-loop arrival stream —
//! requests are issued on a fixed schedule regardless of completion, so
//! queueing pressure is real and the bounded admission queue actually
//! sheds.  The workload mixes Table II protocols (auto-selected quick
//! valuations) with generated families (`ccprotocols::family`) over a few
//! seeds, with enough repetition that the cross-request result cache gets
//! exercised.
//!
//! Reported metrics (the service-level axis of `BENCH_serve.json`):
//! requests/sec (terminal responses over the measurement window), p50/p99
//! end-to-end latency of answered requests, the shed rate of the admission
//! queue, and the result-cache hit rate.
//!
//! A second, restart variant runs the same stream against a daemon with a
//! durable cache log, restarts the daemon, and replays the stream: it
//! reports the recovery time (log replay to first answered ping) and the
//! post-restart cache hit rate, asserting the recovered cache retains at
//! least 0.8 of the warm hit rate.
//!
//! Run with `BENCH_JSON=BENCH_serve.json cargo bench -p ccbench --bench
//! serve_load` to capture the numbers in CI.

use ccprotocols::family::{FamilyParams, FaultModel};
use ccserve::server::{ServeConfig, Server};
use ccserve::wire::{CheckRequest, Priority, Request, Response, Source};
use ccserve::ServeClient;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Requests in the open-loop stream.
const TOTAL_REQUESTS: u64 = 120;
/// Arrival interval of the open-loop schedule.
const ARRIVAL_INTERVAL: Duration = Duration::from_millis(5);
/// Connections the stream is spread over.
const CONNECTIONS: usize = 4;
/// Per-request deadline, bounding worst-case service time.
const DEADLINE_MS: u64 = 250;

fn tiny_family() -> FamilyParams {
    FamilyParams {
        phases: 1,
        width: 1,
        fanout: 1,
        guard_density: 0,
        shared_vars: 1,
        coin_vars: 2,
        faults: FaultModel::Byzantine,
        resilience: 2,
    }
}

/// The request mix: Table II protocols and generated family points, cycled
/// so repeats hit the result cache.
fn request_source(n: u64) -> Source {
    match n % 8 {
        0 => Source::Protocol("Rabin83".into()),
        1 => Source::Family {
            params: tiny_family(),
            seed: n % 3,
        },
        2 => Source::Protocol("CC85(a)".into()),
        3 => Source::Family {
            params: FamilyParams::default(),
            seed: n % 2,
        },
        4 => Source::Protocol("FMR05".into()),
        5 => Source::Family {
            params: tiny_family(),
            seed: 7,
        },
        6 => Source::Protocol("KS16".into()),
        _ => Source::Family {
            params: FamilyParams {
                faults: FaultModel::Crash,
                ..tiny_family()
            },
            seed: n % 3,
        },
    }
}

fn check_request(id: u64) -> Request {
    Request::Check(CheckRequest {
        id,
        priority: match id % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        },
        deadline_ms: DEADLINE_MS,
        source: request_source(id),
        valuations: vec![],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    })
}

struct LoadReport {
    wall: Duration,
    latencies: Vec<Duration>,
    answered: u64,
    shed: u64,
    cache_hits: u64,
    cache_misses: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Drives the open-loop stream and collects per-request latencies.
fn run_open_loop(server: &Server, addr: std::net::SocketAddr) -> LoadReport {
    let send_times: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let started = Instant::now();

    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..CONNECTIONS {
        let client = ServeClient::connect_tcp(addr).expect("connect");
        receivers.push(client.try_clone().expect("receive half"));
        senders.push(client);
    }

    // receivers: one thread per connection, each drains its share of
    // terminal responses and records end-to-end latency
    let per_conn = TOTAL_REQUESTS / CONNECTIONS as u64;
    let mut handles = Vec::new();
    for mut receiver in receivers {
        let send_times = Arc::clone(&send_times);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut answered = 0u64;
            let mut shed = 0u64;
            for _ in 0..per_conn {
                let resp = receiver.recv().expect("terminal response");
                let id = resp.request_id().expect("terminal responses carry ids");
                let sent = send_times
                    .lock()
                    .unwrap()
                    .remove(&id)
                    .expect("response to a sent request");
                latencies.push(sent.elapsed());
                answered += 1;
                if matches!(resp, Response::Overloaded { .. }) {
                    shed += 1;
                }
            }
            (latencies, answered, shed)
        }));
    }

    // open-loop sender: fixed arrival schedule, round-robin over the
    // connections, never waiting for responses
    for n in 0..TOTAL_REQUESTS {
        let target = started + ARRIVAL_INTERVAL * n as u32;
        if let Some(wait) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sender = &mut senders[(n as usize) % CONNECTIONS];
        send_times.lock().unwrap().insert(n, Instant::now());
        sender.send(&check_request(n)).expect("open-loop send");
    }

    let mut latencies = Vec::new();
    let mut answered = 0u64;
    let mut shed = 0u64;
    for handle in handles {
        let (l, a, s) = handle.join().expect("receiver thread");
        latencies.extend(l);
        answered += a;
        shed += s;
    }
    let wall = started.elapsed();
    latencies.sort();

    let stats = server.stats();
    LoadReport {
        wall,
        latencies,
        answered,
        shed,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
    }
}

fn bench_serve_load(c: &mut Criterion) {
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 8,
        max_valuations: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("address");

    // a conventional timed group for the cheap service paths
    {
        let mut group = c.benchmark_group("serve_load");
        group.sample_size(20);
        let mut client = ServeClient::connect_tcp(addr).expect("connect");
        group.bench_function("ping_roundtrip", |b| {
            b.iter(|| client.ping().expect("ping"))
        });
        group.bench_function("stats_roundtrip", |b| {
            b.iter(|| client.stats().expect("stats"))
        });
        group.finish();
    }

    let report = run_open_loop(&server, addr);
    assert_eq!(report.answered, TOTAL_REQUESTS, "every request answered");

    let secs = report.wall.as_secs_f64().max(f64::EPSILON);
    let p50 = percentile(&report.latencies, 0.50);
    let p99 = percentile(&report.latencies, 0.99);
    let shed_rate = report.shed as f64 / report.answered as f64;
    let lookups = report.cache_hits + report.cache_misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        report.cache_hits as f64 / lookups as f64
    };

    println!(
        "serve_load: {} requests in {:.3}s ({:.1} req/s), p50 {:?}, p99 {:?}, \
         shed rate {:.3}, cache hit rate {:.3}",
        report.answered,
        report.wall.as_secs_f64(),
        report.answered as f64 / secs,
        p50,
        p99,
        shed_rate,
        hit_rate
    );

    c.metric("serve_load/requests_per_sec", report.answered as f64 / secs);
    c.metric("serve_load/latency_p50_ms", p50.as_secs_f64() * 1e3);
    c.metric("serve_load/latency_p99_ms", p99.as_secs_f64() * 1e3);
    c.metric("serve_load/shed_rate", shed_rate);
    c.metric("serve_load/cache_hit_rate", hit_rate);

    server.shutdown();

    bench_serve_restart(c);
}

fn hit_rate_of(report: &LoadReport) -> f64 {
    let lookups = report.cache_hits + report.cache_misses;
    if lookups == 0 {
        0.0
    } else {
        report.cache_hits as f64 / lookups as f64
    }
}

/// The restart variant: same open-loop stream against a log-backed daemon,
/// a full restart in between, and the recovered cache doing the work on the
/// second pass.
fn bench_serve_restart(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ccbench-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let log_path = dir.join("verdicts.cclog");
    let config = || ServeConfig {
        workers: 4,
        queue_capacity: 8,
        max_valuations: 1,
        cache_log: Some(log_path.clone()),
        ..ServeConfig::default()
    };

    // warm pass: populate the cache (and therefore the log)
    let server = Server::bind_tcp("127.0.0.1:0", config()).expect("bind");
    let addr = server.local_addr().expect("address");
    let warm = run_open_loop(&server, addr);
    let warm_hit_rate = hit_rate_of(&warm);
    server.shutdown();

    // restart: recovery time is bind (log replay happens inside) up to the
    // first answered ping — the moment the daemon is serving again
    let recovery_started = Instant::now();
    let server = Server::bind_tcp("127.0.0.1:0", config()).expect("rebind");
    let addr = server.local_addr().expect("address");
    ServeClient::connect_tcp(addr)
        .expect("connect")
        .ping()
        .expect("post-restart ping");
    let recovery = recovery_started.elapsed();
    let recovered_verdicts = server.stats().log_recovered;

    let cold = run_open_loop(&server, addr);
    let post_restart_hit_rate = hit_rate_of(&cold);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "serve_restart: recovered {} verdicts in {:.1}ms; hit rate warm {:.3} vs post-restart {:.3}",
        recovered_verdicts,
        recovery.as_secs_f64() * 1e3,
        warm_hit_rate,
        post_restart_hit_rate
    );
    assert!(
        recovered_verdicts > 0,
        "the warm pass must have persisted verdicts for the restart to recover"
    );
    assert!(
        post_restart_hit_rate >= 0.8 * warm_hit_rate,
        "recovered cache must retain the warm hit rate: {post_restart_hit_rate:.3} < 0.8 * {warm_hit_rate:.3}"
    );

    c.metric("serve_load/recovery_ms", recovery.as_secs_f64() * 1e3);
    c.metric("serve_load/post_restart_hit_rate", post_restart_hit_rate);
    c.metric("serve_load/warm_hit_rate", warm_hit_rate);
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
