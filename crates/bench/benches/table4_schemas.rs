//! Criterion benchmark behind Table IV: schema enumeration cost as a
//! function of the number of milestones.

use ccchecker::{milestones, schema_count};
use cccore::obligations_for;
use ccprotocols::fixed::{aby22, aby22_variants};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_schema_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(20);
    let protocol = aby22();
    for variant in aby22_variants() {
        let single = variant.single_round().expect("multi-round model");
        let m = milestones(&single).len();
        let obligations = obligations_for(&protocol, &single);
        let cb0 = obligations
            .termination
            .iter()
            .find(|s| s.name() == "CB0")
            .expect("CB0 obligation")
            .clone();
        group.bench_with_input(
            BenchmarkId::new("cb0", format!("{}-{m}milestones", variant.name())),
            &(&single, &cb0),
            |b, (single, spec)| b.iter(|| schema_count(single, spec)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schema_counts);
criterion_main!(benches);
