//! Sweeping *family parameters* (not just valuations) through the
//! incremental sweep engine.
//!
//! Every prior bench runs the eight fixed Table II protocols; this axis
//! generates an out-of-distribution workload with `ccprotocols::family`:
//! six labelled parameter points (shallow/deep phase structures, sparse
//! and saturated guard densities, Byzantine and crash-stop fault models)
//! instantiated at fixed seeds, each swept over its generated
//! guard-adjacent valuation grid with the full obligation catalogue.  For
//! every family point the bench reports wall-clock time *and* the
//! steady-state lever effectiveness on that workload — cache hit rate,
//! lineage reuse rate, memo hit rate and the overall amortization factor —
//! as scalar metrics next to the timing entries.
//!
//! Run with `BENCH_JSON=BENCH_family.json cargo bench -p ccbench --bench
//! family_sweep` to capture the per-family-point numbers in CI.

use ccchecker::{check_over_sweep_with_stats, CheckerOptions, Spec};
use ccprotocols::family::{FamilyParams, FaultModel, GeneratedFamily};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// The family parameter points of the bench axis.  All points use
/// resilience 2, whose generated sweep walks a relax step, an identical
/// step and a tighten step — the grid the incremental levers are built
/// for.
fn family_points() -> Vec<(&'static str, FamilyParams)> {
    let base = FamilyParams::default();
    vec![
        (
            "byz-shallow",
            FamilyParams {
                phases: 1,
                width: 2,
                ..base.clone()
            },
        ),
        (
            "byz-deep",
            FamilyParams {
                phases: 3,
                width: 1,
                ..base.clone()
            },
        ),
        (
            "byz-wide",
            FamilyParams {
                phases: 2,
                width: 3,
                fanout: 3,
                ..base.clone()
            },
        ),
        (
            "byz-dense",
            FamilyParams {
                phases: 2,
                width: 2,
                guard_density: 95,
                ..base.clone()
            },
        ),
        (
            "byz-sparse",
            FamilyParams {
                phases: 2,
                width: 2,
                guard_density: 15,
                ..base.clone()
            },
        ),
        (
            "crash-shallow",
            FamilyParams {
                phases: 1,
                width: 2,
                faults: FaultModel::Crash,
                ..base
            },
        ),
    ]
}

fn workload(params: &FamilyParams, seed: u64) -> (GeneratedFamily, Vec<Spec>) {
    let fam = params.instantiate(seed);
    let specs = Spec::family_catalogue(&fam.single_round, &fam.obligations);
    (fam, specs)
}

fn bench_family_sweep(c: &mut Criterion) {
    let seed = 0xBE7C_0001;
    {
        let mut group = c.benchmark_group("family_sweep");
        group.sample_size(5);
        for (label, params) in family_points() {
            let (fam, specs) = workload(&params, seed);
            group.bench_with_input(
                BenchmarkId::new("incremental", label),
                &(&fam, &specs),
                |b, (fam, specs)| {
                    b.iter(|| {
                        check_over_sweep_with_stats(
                            &fam.single_round,
                            specs,
                            &fam.sweep,
                            CheckerOptions::default()
                                .with_graph_cache(true)
                                .with_incremental_sweep(true),
                            1,
                        )
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("fresh", label),
                &(&fam, &specs),
                |b, (fam, specs)| {
                    b.iter(|| {
                        check_over_sweep_with_stats(
                            &fam.single_round,
                            specs,
                            &fam.sweep,
                            CheckerOptions::default()
                                .with_graph_cache(true)
                                .with_incremental_sweep(false),
                            1,
                        )
                    })
                },
            );
        }
        group.finish();
    }

    // one instrumented pass per family point for the lever-effectiveness
    // metrics (`metric()` is an extension of the in-tree criterion shim)
    println!("\nper-family-point lever effectiveness over the generated grid:");
    for (label, params) in family_points() {
        let (fam, specs) = workload(&params, seed);
        let (_, stats) = check_over_sweep_with_stats(
            &fam.single_round,
            &specs,
            &fam.sweep,
            CheckerOptions::default()
                .with_graph_cache(true)
                .with_incremental_sweep(true),
            1,
        );
        c.metric(
            format!("family_sweep/{label}/cache_hit_rate"),
            stats.cache_hit_rate(),
        );
        c.metric(
            format!("family_sweep/{label}/lineage_reuse_rate"),
            stats.lineage_reuse_rate(),
        );
        c.metric(
            format!("family_sweep/{label}/memo_hit_rate"),
            stats.memo_hit_rate(),
        );
        c.metric(
            format!("family_sweep/{label}/amortization"),
            stats.amortization(),
        );
    }
}

criterion_group!(benches, bench_family_sweep);
criterion_main!(benches);
