//! Criterion benchmark behind Table II: per-property checking cost on
//! representative protocols of each category, plus three engine benchmarks:
//!
//! * `engine/…` vs `reference/…` — the packed-state delta engine against
//!   the pre-refactor clone-per-transition reference on the same query
//!   catalogue (single-threaded; the summary prints the speedup ratio per
//!   protocol),
//! * `catalogue/cached/…` vs `catalogue/uncached/…` — the whole obligation
//!   catalogue through one checker with the reachability-graph cache on vs
//!   off (single-threaded; the summary prints the amortization factor per
//!   protocol, compared on `min_ns`),
//! * `sweep_amortization/incremental/…` vs `sweep_amortization/fresh/…` —
//!   the whole catalogue over each protocol's full 8-valuation grid with
//!   the cross-valuation sweep lineage on vs off, plus the
//!   `no-verdict-memo` / `no-tighten-prune` variants isolating each
//!   steady-state lever (single-threaded; the summary prints the
//!   whole-sweep speedup and per-lever gains per protocol on `min_ns`), and
//! * `sweep/…` — `check_over_sweep` with 1 worker vs all cores on a
//!   multi-valuation sweep (parallel scaling).
//!
//! Run with `BENCH_JSON=BENCH_table2.json cargo bench -p ccbench --bench
//! table2_checking` to also emit the machine-readable summary.

use ccchecker::reference::reference_check;
use ccchecker::{check_over_sweep, check_over_sweep_with_threads, CheckerOptions, ExplicitChecker};
use cccore::obligations_for;
use cccore::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_property_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    // one representative protocol per category plus the broken protocol
    for name in ["Rabin83", "CC85(a)", "KS16", "MMR14", "ABY22"] {
        let protocol = protocol_by_name(name).expect("benchmark protocol");
        let single = protocol.single_round();
        let obligations = obligations_for(&protocol, &single);
        let config = ccbench::bench_config();
        let valuations = config.select_valuations(&single);
        for (label, specs) in [
            ("agreement", &obligations.agreement),
            ("validity", &obligations.validity),
            ("termination", &obligations.termination),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &(&single, specs, &valuations),
                |b, (single, specs, valuations)| {
                    b.iter(|| {
                        check_over_sweep(single, specs, valuations, CheckerOptions::default())
                    })
                },
            );
        }
    }
    group.finish();
}

/// The prepared single-threaded checking workload of one protocol: the
/// counter system at its benchmark valuation plus the full obligation
/// catalogue.  Construction (model transformation, valuation selection,
/// rule compilation) happens once outside the timed region, so the
/// engine/reference comparison measures checking alone.
fn catalogue_workload(
    protocol: &ProtocolModel,
) -> (cccounter::CounterSystem, Vec<ccchecker::Spec>) {
    let single = protocol.single_round();
    let obligations = obligations_for(protocol, &single);
    let config = ccbench::bench_config();
    let valuation = config
        .select_valuations(&single)
        .into_iter()
        .next()
        .expect("benchmark valuation");
    let sys = cccounter::CounterSystem::new(single, valuation).expect("admissible");
    let specs: Vec<ccchecker::Spec> = obligations
        .agreement
        .iter()
        .chain(obligations.validity.iter())
        .chain(obligations.termination.iter())
        .cloned()
        .collect();
    (sys, specs)
}

fn check_catalogue_with<
    F: Fn(&cccounter::CounterSystem, &ccchecker::Spec) -> ccchecker::CheckOutcome,
>(
    sys: &cccounter::CounterSystem,
    specs: &[ccchecker::Spec],
    check: &F,
) -> usize {
    specs
        .iter()
        .map(|spec| check(sys, spec).states_explored)
        .sum()
}

fn bench_engine_vs_reference(c: &mut Criterion) {
    let names = ["Rabin83", "CC85(a)", "KS16", "MMR14", "ABY22"];
    {
        let mut group = c.benchmark_group("engine");
        group.sample_size(10);
        for name in names {
            let protocol = protocol_by_name(name).expect("benchmark protocol");
            let workload = catalogue_workload(&protocol);
            group.bench_with_input(
                BenchmarkId::new("catalogue", name),
                &workload,
                |b, (sys, specs)| {
                    b.iter(|| {
                        check_catalogue_with(sys, specs, &|sys, spec| {
                            ExplicitChecker::new(sys).check(spec)
                        })
                    })
                },
            );
        }
        group.finish();
    }
    {
        let mut group = c.benchmark_group("reference");
        group.sample_size(10);
        for name in names {
            let protocol = protocol_by_name(name).expect("benchmark protocol");
            let workload = catalogue_workload(&protocol);
            group.bench_with_input(
                BenchmarkId::new("catalogue", name),
                &workload,
                |b, (sys, specs)| {
                    b.iter(|| {
                        check_catalogue_with(sys, specs, &|sys, spec| {
                            reference_check(sys, spec, &CheckerOptions::default())
                        })
                    })
                },
            );
        }
        group.finish();
    }
    // speedup summary from the recorded measurements (`measurements()` is
    // an extension of the in-tree criterion shim; with real criterion this
    // summary would be rebuilt from its saved estimates instead)
    println!("\nengine speedup over the pre-refactor reference (single-threaded):");
    let (mut engine_total, mut reference_total) = (0.0, 0.0);
    for name in names {
        let engine = c
            .measurements()
            .iter()
            .find(|m| m.id == format!("engine/catalogue/{name}"))
            .map(|m| m.mean_ns);
        let reference = c
            .measurements()
            .iter()
            .find(|m| m.id == format!("reference/catalogue/{name}"))
            .map(|m| m.mean_ns);
        if let (Some(e), Some(r)) = (engine, reference) {
            engine_total += e;
            reference_total += r;
            println!("  {name:<10} {:>6.2}x", r / e);
        }
    }
    if engine_total > 0.0 {
        println!(
            "  {:<10} {:>6.2}x (total wall-clock over the five-protocol workload)",
            "overall",
            reference_total / engine_total
        );
    }
}

/// The graph-cache amortization axis: whole-catalogue wall-clock per
/// protocol with the reachability-graph cache on vs off (both
/// single-threaded through one `ExplicitChecker::check_all` call, so the
/// only difference is explore-once-evaluate-many vs explore-per-spec).
/// The summary compares `min_ns` — the stable comparator for sub-ms runs
/// on this container — and prints the measured amortization factor.
fn bench_catalogue_cache(c: &mut Criterion) {
    let names = ["Rabin83", "CC85(a)", "KS16", "MMR14", "ABY22"];
    let mut group = c.benchmark_group("catalogue");
    group.sample_size(10);
    for name in names {
        let protocol = protocol_by_name(name).expect("benchmark protocol");
        let workload = catalogue_workload(&protocol);
        for (label, cache) in [("cached", true), ("uncached", false)] {
            let options = CheckerOptions::sequential().with_graph_cache(cache);
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &workload,
                |b, (sys, specs)| {
                    b.iter(|| {
                        let checker = ExplicitChecker::with_options(sys, options);
                        checker
                            .check_all(specs)
                            .iter()
                            .map(|o| o.states_explored)
                            .sum::<usize>()
                    })
                },
            );
        }
    }
    group.finish();
    println!("\nwhole-catalogue graph-cache amortization (single-threaded, min_ns):");
    let (mut cached_total, mut uncached_total) = (0.0, 0.0);
    for name in names {
        let cached = c
            .measurements()
            .iter()
            .find(|m| m.id == format!("catalogue/cached/{name}"))
            .map(|m| m.min_ns);
        let uncached = c
            .measurements()
            .iter()
            .find(|m| m.id == format!("catalogue/uncached/{name}"))
            .map(|m| m.min_ns);
        if let (Some(on), Some(off)) = (cached, uncached) {
            cached_total += on;
            uncached_total += off;
            println!("  {name:<10} {:>6.2}x", off / on);
        }
    }
    if cached_total > 0.0 {
        println!(
            "  {:<10} {:>6.2}x (total whole-catalogue wall-clock, cache on vs off)",
            "overall",
            uncached_total / cached_total
        );
    }
}

/// The incremental-sweep amortization axis: the whole obligation catalogue
/// over each protocol's full `VerifierConfig` valuation grid (8 valuations
/// at the default bounds), single-threaded, with the sweep lineage on vs
/// off (the graph cache is on in both — this isolates the *cross-valuation*
/// amortization on top of PR 4's within-valuation amortization).  Two
/// extra lineage variants isolate the steady-state levers: `no-verdict-memo`
/// re-evaluates every obligation on identical steps, `no-tighten-prune`
/// degrades tighten-only steps back to full rebuilds.  The summary compares
/// `min_ns` and prints the whole-sweep speedup plus each lever's isolated
/// gain per protocol.
fn bench_sweep_amortization(c: &mut Criterion) {
    let names = ["Rabin83", "CC85(a)", "KS16", "MMR14", "ABY22"];
    // the full grid: every admissible valuation the default verifier bounds
    // admit (8 per protocol), in select_valuations' guard-adjacent order
    let grid_config = VerifierConfig {
        max_valuations: 8,
        ..VerifierConfig::default()
    };
    let mut group = c.benchmark_group("sweep_amortization");
    group.sample_size(5);
    for name in names {
        let protocol = protocol_by_name(name).expect("benchmark protocol");
        let single = protocol.single_round();
        let obligations = obligations_for(&protocol, &single);
        let all_specs: Vec<ccchecker::Spec> = obligations
            .agreement
            .iter()
            .chain(obligations.validity.iter())
            .chain(obligations.termination.iter())
            .cloned()
            .collect();
        let valuations = grid_config.select_valuations(&single);
        // the lever variants pin the toggles explicitly so the measurement
        // is reproducible regardless of CC_VERDICT_MEMO/CC_TIGHTEN_PRUNE
        let lineage = CheckerOptions::sequential()
            .with_incremental_sweep(true)
            .with_verdict_memo(true)
            .with_tighten_prune(true);
        for (label, options) in [
            ("incremental", lineage),
            ("no-verdict-memo", lineage.with_verdict_memo(false)),
            ("no-tighten-prune", lineage.with_tighten_prune(false)),
            (
                "fresh",
                CheckerOptions::sequential().with_incremental_sweep(false),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &(&single, &all_specs, &valuations),
                |b, (single, specs, valuations)| {
                    b.iter(|| check_over_sweep_with_threads(single, specs, valuations, options, 1))
                },
            );
        }
    }
    group.finish();
    println!(
        "\nwhole-sweep incremental amortization (single-threaded, full grid, min_ns;\n\
         'memo gain' and 'prune gain' are the slowdowns from disabling one lever):"
    );
    let (mut inc_total, mut fresh_total) = (0.0, 0.0);
    for name in names {
        let min_of = |label: &str| {
            c.measurements()
                .iter()
                .find(|m| m.id == format!("sweep_amortization/{label}/{name}"))
                .map(|m| m.min_ns)
        };
        if let (Some(on), Some(off), Some(no_memo), Some(no_prune)) = (
            min_of("incremental"),
            min_of("fresh"),
            min_of("no-verdict-memo"),
            min_of("no-tighten-prune"),
        ) {
            inc_total += on;
            fresh_total += off;
            println!(
                "  {name:<10} {:>6.2}x   memo gain {:>5.2}x   prune gain {:>5.2}x",
                off / on,
                no_memo / on,
                no_prune / on,
            );
        }
    }
    if inc_total > 0.0 {
        println!(
            "  {:<10} {:>6.2}x (total whole-sweep wall-clock, incremental vs fresh)",
            "overall",
            fresh_total / inc_total
        );
    }
}

fn bench_sweep_scaling(c: &mut Criterion) {
    // a broader sweep so the grid has enough cells to parallelise
    let protocol = protocol_by_name("ABY22").expect("benchmark protocol");
    let single = protocol.single_round();
    let obligations = obligations_for(&protocol, &single);
    let all_specs: Vec<ccchecker::Spec> = obligations
        .agreement
        .iter()
        .chain(obligations.validity.iter())
        .chain(obligations.termination.iter())
        .cloned()
        .collect();
    let valuations = VerifierConfig::thorough().select_valuations(&single);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("sweep");
    group.sample_size(5);
    for (label, threads) in [("1-thread", 1), ("all-cores", cores)] {
        group.bench_with_input(
            BenchmarkId::new("scaling", label),
            &(&single, &all_specs, &valuations),
            |b, (single, specs, valuations)| {
                b.iter(|| {
                    check_over_sweep_with_threads(
                        single,
                        specs,
                        valuations,
                        CheckerOptions::default(),
                        threads,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_property_checking,
    bench_engine_vs_reference,
    bench_catalogue_cache,
    bench_sweep_amortization,
    bench_sweep_scaling
);
criterion_main!(benches);
