//! Criterion benchmark behind Table II: per-property checking cost on
//! representative protocols of each category.

use cccore::prelude::*;
use cccore::obligations_for;
use ccchecker::{check_over_sweep, CheckerOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_property_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    // one representative protocol per category plus the broken protocol
    for name in ["Rabin83", "CC85(a)", "KS16", "MMR14", "ABY22"] {
        let protocol = protocol_by_name(name).expect("benchmark protocol");
        let single = protocol.single_round();
        let obligations = obligations_for(&protocol, &single);
        let config = ccbench::bench_config();
        let valuations = config.select_valuations(&single);
        for (label, specs) in [
            ("agreement", &obligations.agreement),
            ("validity", &obligations.validity),
            ("termination", &obligations.termination),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &(&single, specs, &valuations),
                |b, (single, specs, valuations)| {
                    b.iter(|| {
                        check_over_sweep(single, specs, valuations, CheckerOptions::default())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_property_checking);
criterion_main!(benches);
