//! Benchmark harness for the evaluation tables of the paper.
//!
//! * `cargo run --release -p ccbench --bin table2` — Table II (8 protocols ×
//!   {Agreement, Validity, A.-s. Termination}: automaton sizes, schema
//!   counts, checking times, the MMR14 counterexample).
//! * `cargo run --release -p ccbench --bin table3` — Table III (the property
//!   catalogue per protocol).
//! * `cargo run --release -p ccbench --bin table4` — Table IV (maximum
//!   schema counts vs. number of milestones).
//! * `cargo bench -p ccbench` — Criterion micro-benchmarks of the
//!   per-property checking cost, the schema enumeration and the simulator.

use cccore::prelude::*;

/// The verifier configuration used by the table binaries and benches: one
/// Byzantine valuation per protocol, so the full benchmark completes within
/// minutes on a laptop.
pub fn bench_config() -> VerifierConfig {
    VerifierConfig::quick()
}

/// Verifies one benchmark protocol by name with the bench configuration.
///
/// # Panics
///
/// Panics if the protocol does not exist.
pub fn verify_named(name: &str) -> ProtocolVerification {
    let protocol = protocol_by_name(name).expect("benchmark protocol");
    verify_protocol(&protocol, &bench_config())
}

/// Parses the value of a CLI flag as a positive integer, exiting with the
/// conventional usage-error status when it is missing or malformed.
/// Shared by the `table2` / `profile_engine` flag loops.
pub fn parse_positive_flag(flag: &str, args: &mut dyn Iterator<Item = String>) -> usize {
    args.next()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            eprintln!("{flag} expects a positive integer");
            std::process::exit(2);
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        assert!(bench_config().max_processes <= 4);
    }

    #[test]
    fn verify_named_runs_a_small_protocol() {
        let result = verify_named("Rabin83");
        assert!(result.agreement.holds());
    }
}
