//! Regenerates Table IV: maximum schema counts for threshold automata of the
//! same size but different milestone counts.

use cccore::report::{render_table4, table4_rows};
use ccprotocols::fixed::{aby22, aby22_variants};
use ccta::SystemModel;

fn main() {
    let protocol = aby22();
    let variants: Vec<(SystemModel, _)> = aby22_variants()
        .into_iter()
        .map(|m| (m, protocol.clone()))
        .collect();
    println!("Table IV — maximum numbers of schemas for automata with different milestones\n");
    println!("{}", render_table4(&table4_rows(&variants)));
}
