//! Regenerates Table II: verification of the eight common-coin protocols.

use cccore::prelude::*;

fn main() {
    let config = ccbench::bench_config();
    let results = verify_all(&config);
    println!("Table II — benchmarks of 8 different common-coin-based protocols");
    println!("(schema counts and wall-clock times from this run; 'CE' marks a counterexample)\n");
    println!("{}", render_table2(&results));
    for r in &results {
        let vals: Vec<String> = r.valuations.iter().map(|v| v.to_string()).collect();
        println!(
            "{:<10} checked at parameter valuations (n, t, f, cc): {}",
            r.protocol,
            vals.join(", ")
        );
    }
}
