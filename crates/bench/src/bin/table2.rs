//! Regenerates Table II: verification of the eight common-coin protocols.
//!
//! Usage: `table2 [--threads N] [--wave-size W] [--no-graph-cache]
//! [--no-incremental-sweep] [--no-verdict-memo] [--no-tighten-prune]
//! [--deadline-ms D] [--max-resident-bytes B]` —
//! `N` is the total thread budget per property sweep, split between
//! `query × valuation` grid cells and in-check workers (default:
//! `CC_SWEEP_THREADS`, then all cores); `W` bounds a parallel level's
//! candidate buffers (default: `CC_WAVE_SIZE`, then the engine default);
//! `--no-graph-cache` disables the reachability-graph cache so every
//! obligation re-explores its own state space (default: cached, unless
//! `CC_GRAPH_CACHE=0`); `--no-incremental-sweep` disables the
//! cross-valuation graph lineage so every valuation re-explores its groups
//! (default: incremental, unless `CC_SWEEP_INCREMENTAL=0`);
//! `--no-verdict-memo` disables per-graph verdict memoization so identical
//! lineage steps re-evaluate every obligation (default: memoized, unless
//! `CC_VERDICT_MEMO=0`); `--no-tighten-prune` degrades tighten-only
//! lineage steps from the in-place prune back to a full rebuild (default:
//! pruned, unless `CC_TIGHTEN_PRUNE=0`).  The knob combinations produce
//! identical verdicts.  `--deadline-ms D` puts a
//! wall-clock deadline on each protocol's sweep and `--max-resident-bytes
//! B` caps each grid cell's state store: tripped cells degrade to
//! `interrupted` outcomes and their properties report `?` instead of a
//! fabricated verdict.

use cccore::prelude::*;

fn main() {
    let mut config = ccbench::bench_config();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let n = ccbench::parse_positive_flag("--threads", &mut args);
                config = config.with_threads(n);
            }
            "--wave-size" => {
                let w = ccbench::parse_positive_flag("--wave-size", &mut args);
                config = config.with_wave_size(w);
            }
            "--no-graph-cache" => {
                config = config.with_graph_cache(false);
            }
            "--no-incremental-sweep" => {
                config = config.with_incremental_sweep(false);
            }
            "--no-verdict-memo" => {
                config = config.with_verdict_memo(false);
            }
            "--no-tighten-prune" => {
                config = config.with_tighten_prune(false);
            }
            "--deadline-ms" => {
                let d = ccbench::parse_positive_flag("--deadline-ms", &mut args);
                config = config.with_deadline_ms(d as u64);
            }
            "--max-resident-bytes" => {
                let b = ccbench::parse_positive_flag("--max-resident-bytes", &mut args);
                config = config.with_max_resident_bytes(b);
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: table2 [--threads N] [--wave-size W] [--no-graph-cache] \
                     [--no-incremental-sweep] [--no-verdict-memo] [--no-tighten-prune] \
                     [--deadline-ms D] [--max-resident-bytes B]"
                );
                std::process::exit(2);
            }
        }
    }
    let results = verify_all(&config);
    println!("Table II — benchmarks of 8 different common-coin-based protocols");
    println!("(schema counts and wall-clock times from this run; 'CE' marks a counterexample)\n");
    println!("{}", render_table2(&results));
    for r in &results {
        let vals: Vec<String> = r.valuations.iter().map(|v| v.to_string()).collect();
        println!(
            "{:<10} checked at parameter valuations (n, t, f, cc): {}",
            r.protocol,
            vals.join(", ")
        );
    }
    println!("\nreachability-graph cache per protocol (one combined sweep over the catalogue):");
    for r in &results {
        println!("  {:<10} {}", r.protocol, r.cache_stats());
    }
    if !config.budget.is_unlimited() {
        println!("\nbudget-tripped grid cells per protocol (reported '?', never a verdict):");
        for r in &results {
            let interrupted: usize = [&r.agreement, &r.validity, &r.termination]
                .into_iter()
                .flat_map(|p| p.reports.iter())
                .map(|rep| rep.interrupted_cells())
                .sum();
            println!("  {:<10} {interrupted}", r.protocol);
        }
    }
}
