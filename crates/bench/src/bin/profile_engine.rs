//! Per-obligation engine-vs-reference timing, used to locate exploration
//! bottlenecks.  Not part of the published tables.

use ccchecker::reference::reference_check;
use ccchecker::{CheckerOptions, ExplicitChecker};
use cccore::obligations_for;
use cccore::prelude::*;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "MMR14".into());
    let protocol = protocol_by_name(&name).expect("protocol");
    let single = protocol.single_round();
    let obligations = obligations_for(&protocol, &single);
    let config = ccbench::bench_config();
    let valuation = config
        .select_valuations(&single)
        .into_iter()
        .next()
        .expect("valuation");
    let sys = cccounter::CounterSystem::new(single, valuation).expect("admissible");
    let options = CheckerOptions::default();
    println!("{name}: per-obligation engine vs reference (3 runs each, best)");
    for (group, specs) in [
        ("agreement", &obligations.agreement),
        ("validity", &obligations.validity),
        ("termination", &obligations.termination),
    ] {
        for spec in specs.iter() {
            let engine = (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let o = ExplicitChecker::new(&sys).check(spec);
                    (t.elapsed(), o.states_explored, o.transitions_explored)
                })
                .min()
                .unwrap();
            let reference = (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let o = reference_check(&sys, spec, &options);
                    (t.elapsed(), o.states_explored, o.transitions_explored)
                })
                .min()
                .unwrap();
            println!(
                "  {group:<12} {:<14} engine {:>10.3?} ref {:>10.3?} ({:.2}x)  states={} transitions={}",
                spec.name(),
                engine.0,
                reference.0,
                reference.0.as_secs_f64() / engine.0.as_secs_f64(),
                engine.1,
                engine.2,
            );
        }
    }
}
