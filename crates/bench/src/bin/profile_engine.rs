//! Per-obligation engine-vs-reference timing, used to locate exploration
//! bottlenecks, plus state-store occupancy statistics to guide shard-count
//! defaults and the whole-catalogue graph-cache amortization.  Not part of
//! the published tables.
//!
//! Usage:
//! `profile_engine [PROTOCOL] [--threads N] [--wave-size W] [--no-graph-cache]
//! [--deadline-ms D] [--max-resident-bytes B]`
//! — `N` sets the in-check worker count of the engine runs (default:
//! `CC_CHECK_THREADS`, then all cores; the reference is always
//! sequential), `W` the parallel wave size (default: `CC_WAVE_SIZE`, then
//! the engine default), and `--no-graph-cache` drops the cached
//! whole-catalogue run from the summary (the per-obligation rows always
//! use the per-spec path).  `--deadline-ms D` and `--max-resident-bytes B`
//! set the budget of the job-lifecycle section, which runs the catalogue
//! as a checkpointable `CheckJob` and reports each job's outcome —
//! completed, budget-tripped (with the trip reason and checkpointed
//! progress) and resumed-to-completion.

use ccchecker::reference::reference_check;
use ccchecker::{CheckJob, CheckerOptions, ExplicitChecker, JobBudget, JobOutcome};
use cccore::obligations_for;
use cccore::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let mut name = String::from("MMR14");
    let mut workers = 0usize;
    let mut wave_size = 0usize;
    let mut graph_cache = true;
    let mut budget = JobBudget::unlimited();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => workers = ccbench::parse_positive_flag("--threads", &mut args),
            "--wave-size" => wave_size = ccbench::parse_positive_flag("--wave-size", &mut args),
            "--no-graph-cache" => graph_cache = false,
            "--deadline-ms" => {
                let d = ccbench::parse_positive_flag("--deadline-ms", &mut args);
                budget = budget.with_deadline(Duration::from_millis(d as u64));
            }
            "--max-resident-bytes" => {
                let b = ccbench::parse_positive_flag("--max-resident-bytes", &mut args);
                budget = budget.with_max_resident_bytes(b);
            }
            other if !other.starts_with('-') => name = other.to_string(),
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: profile_engine [PROTOCOL] [--threads N] [--wave-size W] \
                     [--no-graph-cache] [--deadline-ms D] [--max-resident-bytes B]"
                );
                std::process::exit(2);
            }
        }
    }
    let protocol = protocol_by_name(&name).expect("protocol");
    let single = protocol.single_round();
    let obligations = obligations_for(&protocol, &single);
    let config = ccbench::bench_config();
    let valuation = config
        .select_valuations(&single)
        .into_iter()
        .next()
        .expect("valuation");
    let sys = cccounter::CounterSystem::new(single, valuation).expect("admissible");
    let options = CheckerOptions::default()
        .with_workers(workers)
        .with_wave_size(wave_size);
    let reference_options = CheckerOptions::sequential();
    println!(
        "{name}: per-obligation engine vs reference (3 runs each, best; \
         engine workers: {}, wave: {})",
        if workers == 0 {
            "auto".into()
        } else {
            workers.to_string()
        },
        if wave_size == 0 {
            "auto".into()
        } else {
            wave_size.to_string()
        }
    );
    for (group, specs) in [
        ("agreement", &obligations.agreement),
        ("validity", &obligations.validity),
        ("termination", &obligations.termination),
    ] {
        for spec in specs.iter() {
            // stats are identical across runs and cost O(index) to collect,
            // so fold them into the timed runs instead of a fourth check
            let mut stats = Default::default();
            let engine = (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let (o, s) =
                        ExplicitChecker::with_options(&sys, options).check_with_stats(spec);
                    stats = s;
                    (t.elapsed(), o.states_explored, o.transitions_explored)
                })
                .min()
                .unwrap();
            let reference = (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let o = reference_check(&sys, spec, &reference_options);
                    (t.elapsed(), o.states_explored, o.transitions_explored)
                })
                .min()
                .unwrap();
            println!(
                "  {group:<12} {:<14} engine {:>10.3?} ref {:>10.3?} ({:.2}x)  states={} transitions={}",
                spec.name(),
                engine.0,
                reference.0,
                reference.0.as_secs_f64() / engine.0.as_secs_f64(),
                engine.1,
                engine.2,
            );
            println!("  {:<27} store: {stats}", "");
        }
    }

    // whole-catalogue graph-cache amortization: the full obligation slice
    // through one cached checker vs the per-spec path, best of 3
    let all_specs: Vec<ccchecker::Spec> = obligations
        .agreement
        .iter()
        .chain(obligations.validity.iter())
        .chain(obligations.termination.iter())
        .cloned()
        .collect();
    println!("\nwhole-catalogue ({} obligations):", all_specs.len());
    let uncached = (0..3)
        .map(|_| {
            let t = Instant::now();
            let checker = ExplicitChecker::with_options(&sys, options.with_graph_cache(false));
            let _ = checker.check_all(&all_specs);
            t.elapsed()
        })
        .min()
        .unwrap();
    println!("  per-spec path: {uncached:>10.3?}");
    if graph_cache {
        let mut cache_stats = ccchecker::GraphCacheStats::default();
        let cached = (0..3)
            .map(|_| {
                let t = Instant::now();
                let checker = ExplicitChecker::with_options(&sys, options.with_graph_cache(true));
                let (_, s) = checker.check_all_with_stats(&all_specs);
                cache_stats = s;
                t.elapsed()
            })
            .min()
            .unwrap();
        println!(
            "  graph cache:   {cached:>10.3?} ({:.2}x)",
            uncached.as_secs_f64() / cached.as_secs_f64()
        );
        println!("  {cache_stats}");
        for g in &cache_stats.groups {
            println!(
                "    group {:<18} {} obligation(s) on {} states / {} transitions \
                 (1 miss, {} hit(s), {} KiB resident)",
                g.start,
                g.specs,
                g.states,
                g.transitions,
                g.specs - 1,
                g.resident_bytes / 1024,
            );
        }
    } else {
        println!("  graph cache:   disabled (--no-graph-cache)");
    }

    // job lifecycle: the same catalogue as a checkpointable job under the
    // requested budget, reporting the per-job outcome the sweep driver
    // acts on (completed / budget-tripped / resumed)
    println!(
        "\njob lifecycle ({}):",
        if budget.is_unlimited() {
            "unlimited budget"
        } else {
            "budget from --deadline-ms / --max-resident-bytes"
        }
    );
    let t = Instant::now();
    match CheckJob::new(&sys, &all_specs, options)
        .with_budget(budget)
        .run()
    {
        JobOutcome::Completed { outcomes, .. } => {
            println!(
                "  completed:      {} obligation(s) in {:.3?}",
                outcomes.len(),
                t.elapsed()
            );
        }
        JobOutcome::BudgetExceeded {
            reason, checkpoint, ..
        } => {
            println!(
                "  budget-tripped: {reason} after {}/{} obligation(s), \
                 {} states / {} transitions{}",
                checkpoint.completed_obligations(),
                checkpoint.total_obligations(),
                checkpoint.states_explored(),
                checkpoint.transitions_explored(),
                if checkpoint.has_build_in_flight() {
                    " (a build is suspended mid-wave)"
                } else {
                    ""
                },
            );
            let t = Instant::now();
            match CheckJob::new(&sys, &all_specs, options).resume(checkpoint) {
                JobOutcome::Completed { outcomes, .. } => println!(
                    "  resumed:        completed all {} obligation(s) in {:.3?}",
                    outcomes.len(),
                    t.elapsed()
                ),
                _ => println!("  resumed:        interrupted again"),
            }
        }
        JobOutcome::Interrupted { .. } => {
            unreachable!("the profile job owns its cancel token")
        }
    }

    // full-grid incremental sweep: cross-valuation lineage amortization and
    // the resident memory each surviving graph keeps alive per valuation
    if graph_cache {
        let grid_config = VerifierConfig {
            max_valuations: 8,
            ..VerifierConfig::default()
        };
        let grid_model = protocol.single_round();
        let valuations = grid_config.select_valuations(&grid_model);
        println!(
            "\nfull-grid sweep ({} valuations), incremental vs fresh (best of 3):",
            valuations.len()
        );
        let mut lineage_stats = ccchecker::GraphCacheStats::default();
        let mut timed = |incremental: bool| {
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let (_, s) = ccchecker::check_over_sweep_with_stats(
                        &grid_model,
                        &all_specs,
                        &valuations,
                        options.with_incremental_sweep(incremental),
                        1,
                    );
                    if incremental {
                        lineage_stats = s;
                    }
                    t.elapsed()
                })
                .min()
                .unwrap()
        };
        let incremental = timed(true);
        let fresh = timed(false);
        println!("  fresh:         {fresh:>10.3?}");
        println!(
            "  incremental:   {incremental:>10.3?} ({:.2}x)",
            fresh.as_secs_f64() / incremental.as_secs_f64()
        );
        println!("  {lineage_stats}");
        println!(
            "  levers:        memo {} hit(s) / {} miss(es); {} group(s) pruned in place \
             ({} action(s) cut) vs {} rebuilt; parked {} -> {} KiB ({:.2}x)",
            lineage_stats.memo_hits(),
            lineage_stats.memo_misses(),
            lineage_stats.pruned_groups(),
            lineage_stats.pruned_actions_total(),
            lineage_stats.rebuilt_groups(),
            lineage_stats.parked_full_bytes / 1024,
            lineage_stats.parked_compact_bytes / 1024,
            lineage_stats.parked_compression(),
        );
        for g in &lineage_stats.groups {
            println!(
                "    group {:<18} {:<8} {} obligation(s), {} states, {} seed(s), \
                 {} memo hit(s), {} KiB resident",
                g.start,
                g.origin.to_string(),
                g.specs,
                g.states,
                g.seed_frontier,
                g.memo_hits,
                g.resident_bytes / 1024,
            );
        }
    }
}
