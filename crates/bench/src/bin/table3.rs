//! Regenerates Table III: the checked properties, per protocol.

use cccore::prelude::*;

fn main() {
    for protocol in all_protocols() {
        println!("{}", render_table3(&protocol));
        println!();
    }
}
