//! Differential testing over generated protocol families.
//!
//! Where `random_differential` replays the frozen compatibility corpus,
//! this suite sweeps `ccprotocols::family` across its *parameter space*:
//! eight presets (Byzantine and crash-stop fault models, shallow and deep
//! phase structures, sparse and saturated guard densities, resilience 2
//! and 3) × 26 seeds each = 208 distinct families, every one checked
//! against three independent oracles:
//!
//! * **Engine ≡ reference** — verdict, state count, transition count and
//!   counterexample schedules, per obligation.
//! * **Cached ≡ uncached** — the reachability-graph cache at 1, 2 and 4
//!   workers agrees with the per-spec path, and every cached
//!   counterexample replays to a genuine violation.
//! * **Incremental ≡ fresh** — the guard-adjacent sweep grid the generator
//!   attaches to resilience-2 families is bit-identical incrementally and
//!   from scratch, at 1, 2 and 4 workers.
//! * **Simulator cross-check** — `ccsim::bridge` executes each family as
//!   individual automaton copies with independently evaluated guards:
//!   seeded fair and adversarial runs must never witness a violation of an
//!   obligation the checker proved safe, and every checker counterexample
//!   schedule must replay at the process level to the exact violating
//!   configurations.
//!
//! A failure message always carries the preset label and seed, so any
//! family can be rebuilt deterministically.

use ccchecker::reference::reference_check;
use ccchecker::{CheckStatus, CheckerOptions, ExplicitChecker, LocSet, Spec};
use cccounter::{Configuration, CounterSystem};
use ccprotocols::family::{FamilyParams, FaultModel, GeneratedFamily};
use ccsim::bridge::{replay_schedule, simulate, SimPolicy};
use ccta::LocClass;

/// Seeds per preset: 8 presets × 26 seeds = 208 families.
const SEEDS_PER_PRESET: usize = 26;

/// The family parameter presets: both fault models, shallow/deep/wide
/// phase structures, sparse and saturated guard densities, resilience 2
/// and 3.
fn presets() -> Vec<(&'static str, FamilyParams)> {
    let base = FamilyParams::default();
    vec![
        (
            "byz-tiny",
            FamilyParams {
                phases: 1,
                width: 1,
                shared_vars: 1,
                ..base.clone()
            },
        ),
        (
            "byz-branchy",
            FamilyParams {
                phases: 2,
                width: 2,
                fanout: 3,
                guard_density: 50,
                ..base.clone()
            },
        ),
        (
            "byz-dense",
            FamilyParams {
                phases: 2,
                width: 1,
                guard_density: 90,
                ..base.clone()
            },
        ),
        (
            "crash-tiny",
            FamilyParams {
                phases: 1,
                width: 2,
                shared_vars: 1,
                faults: FaultModel::Crash,
                ..base.clone()
            },
        ),
        (
            "crash-deep",
            FamilyParams {
                phases: 3,
                width: 1,
                faults: FaultModel::Crash,
                ..base.clone()
            },
        ),
        (
            "mixed",
            FamilyParams {
                phases: 2,
                width: 2,
                faults: FaultModel::Mixed,
                ..base.clone()
            },
        ),
        (
            "byz-a3",
            FamilyParams {
                phases: 1,
                width: 1,
                shared_vars: 1,
                resilience: 3,
                ..base.clone()
            },
        ),
        (
            "mixed-sparse",
            FamilyParams {
                phases: 2,
                width: 1,
                guard_density: 20,
                shared_vars: 1,
                faults: FaultModel::Mixed,
                ..base
            },
        ),
    ]
}

/// The full corpus: every preset at every seed, with a context label.
fn corpus() -> Vec<(String, GeneratedFamily)> {
    let mut families = Vec::new();
    for (pi, (label, params)) in presets().into_iter().enumerate() {
        for i in 0..SEEDS_PER_PRESET {
            let seed = 0xFA3_0000 + (pi as u64) * 0x1000 + i as u64;
            families.push((format!("{label}#{i}"), params.instantiate(seed)));
        }
    }
    families
}

fn counter_system(fam: &GeneratedFamily) -> CounterSystem {
    CounterSystem::new(fam.single_round.clone(), fam.valuation.clone())
        .expect("generated valuations are admissible")
}

fn specs_of(fam: &GeneratedFamily) -> Vec<Spec> {
    Spec::family_catalogue(&fam.single_round, &fam.obligations)
}

#[test]
fn generated_families_match_the_reference_engine() {
    let mut verdicts = [0usize; 3];
    for (ctx, fam) in corpus() {
        let sys = counter_system(&fam);
        let options = CheckerOptions::default();
        for spec in specs_of(&fam) {
            let engine = ExplicitChecker::with_options(&sys, options).check(&spec);
            let reference = reference_check(&sys, &spec, &options);
            let where_ = format!("{ctx} (seed {:#x}), {}", fam.seed, spec.name());
            assert_eq!(engine.status, reference.status, "verdicts differ: {where_}");
            assert_eq!(
                engine.states_explored, reference.states_explored,
                "state counts differ: {where_}"
            );
            assert_eq!(
                engine.transitions_explored, reference.transitions_explored,
                "transition counts differ: {where_}"
            );
            verdicts[match engine.status {
                CheckStatus::Holds => 0,
                CheckStatus::Violated => 1,
                CheckStatus::Unknown => 2,
            }] += 1;
            if engine.status == CheckStatus::Violated {
                let e = engine.counterexample.expect("engine counterexample");
                let r = reference.counterexample.expect("reference counterexample");
                assert_eq!(e.initial, r.initial, "initials differ: {where_}");
                assert_eq!(
                    e.schedule.steps(),
                    r.schedule.steps(),
                    "schedules differ: {where_}"
                );
            }
        }
    }
    assert!(
        verdicts[0] > 0 && verdicts[1] > 0,
        "degenerate verdict distribution: {verdicts:?}"
    );
}

#[test]
fn generated_families_cached_catalogue_matches_uncached() {
    let mut cached_violations = 0usize;
    for (ctx, fam) in corpus() {
        let sys = counter_system(&fam);
        let specs = specs_of(&fam);
        let uncached =
            ExplicitChecker::with_options(&sys, CheckerOptions::default().with_graph_cache(false))
                .check_all(&specs);
        for workers in [1, 2, 4] {
            // wave size 1 lowers the parallel-entry threshold so pooled
            // runs genuinely exercise the parallel cache build
            let options = CheckerOptions {
                workers,
                wave_size: if workers > 1 { 1 } else { 0 },
                ..CheckerOptions::default().with_graph_cache(true)
            };
            let (cached, stats) =
                ExplicitChecker::with_options(&sys, options).check_all_with_stats(&specs);
            assert!(
                stats.graphs_built() > 0 && stats.uncached_specs == 0,
                "{ctx} (seed {:#x}): the cached axis must exercise the cache",
                fam.seed
            );
            for ((spec, c), u) in specs.iter().zip(&cached).zip(&uncached) {
                let where_ = format!(
                    "{ctx} (seed {:#x}), {} at {workers} workers",
                    fam.seed,
                    spec.name()
                );
                // cached groups share one exploration, so only the verdict
                // (not per-spec state accounting) is comparable
                assert_eq!(c.status, u.status, "cached verdict differs: {where_}");
                if c.status == CheckStatus::Violated {
                    cached_violations += 1;
                }
            }
        }
    }
    assert!(cached_violations > 0, "degenerate corpus: no violation");
}

#[test]
fn generated_families_incremental_sweep_matches_fresh() {
    use ccchecker::check_over_sweep_with_stats;
    let (mut reused, mut extended) = (0usize, 0usize);
    let mut swept = 0usize;
    for (ctx, fam) in corpus() {
        // resilience-3 families carry a single-valuation "sweep"; and the
        // crash-stop environment models all n = 5 processes at the grid's
        // n, which is too heavy to run 200× here — keep the incremental
        // axis to the 4-process grids
        let env = fam.single_round.env().clone();
        if fam.sweep.len() < 2
            || fam
                .sweep
                .iter()
                .any(|v| env.system_size(v).is_none_or(|s| s.processes > 4))
        {
            continue;
        }
        swept += 1;
        let specs = specs_of(&fam);
        for workers in [1, 2, 4] {
            let options = CheckerOptions {
                workers,
                wave_size: if workers > 1 { 1 } else { 0 },
                ..CheckerOptions::default()
            }
            .with_graph_cache(true);
            let (incremental, stats) = check_over_sweep_with_stats(
                &fam.single_round,
                &specs,
                &fam.sweep,
                options.with_incremental_sweep(true),
                1,
            );
            let (fresh, _) = check_over_sweep_with_stats(
                &fam.single_round,
                &specs,
                &fam.sweep,
                options.with_incremental_sweep(false),
                1,
            );
            if workers == 1 {
                reused += stats.reused_groups();
                extended += stats.extended_groups();
            }
            for (ri, rf) in incremental.iter().zip(&fresh) {
                let where_ = format!(
                    "{ctx} (seed {:#x}), {} at {workers} workers",
                    fam.seed, ri.spec_name
                );
                assert_eq!(ri.status(), rf.status(), "sweep status differs: {where_}");
                assert_eq!(ri.outcomes.len(), rf.outcomes.len(), "{where_}");
                for (oi, of) in ri.outcomes.iter().zip(&rf.outcomes) {
                    let cell = format!("{where_} at {}", oi.params);
                    assert_eq!(oi.params, of.params, "{cell}");
                    assert_eq!(oi.outcome.status, of.outcome.status, "{cell}");
                    assert_eq!(
                        oi.outcome.states_explored, of.outcome.states_explored,
                        "state count differs: {cell}"
                    );
                    assert_eq!(
                        oi.outcome.transitions_explored, of.outcome.transitions_explored,
                        "transition count differs: {cell}"
                    );
                    match (&oi.outcome.counterexample, &of.outcome.counterexample) {
                        (None, None) => {}
                        (Some(ci), Some(cf)) => {
                            assert_eq!(ci.initial, cf.initial, "initial differs: {cell}");
                            assert_eq!(
                                ci.schedule.steps(),
                                cf.schedule.steps(),
                                "schedule differs: {cell}"
                            );
                        }
                        _ => panic!("counterexample presence differs: {cell}"),
                    }
                }
            }
        }
    }
    assert!(swept > 0, "no family qualified for the incremental axis");
    assert!(reused > 0, "no identical step was reused");
    assert!(extended > 0, "no relax-only step was extended");
}

/// Whether a simulator-visited configuration sequence witnesses a
/// violation of a (non-probabilistic) obligation, mirroring the checker's
/// cumulative semantics.
fn run_witnesses_violation(
    sys: &CounterSystem,
    spec: &Spec,
    configs: &[Configuration],
    terminal: bool,
) -> bool {
    match spec {
        Spec::NeverFrom { forbidden, .. } => configs.iter().any(|c| forbidden.is_occupied(c)),
        Spec::CoverNever {
            trigger, forbidden, ..
        } => {
            configs.iter().any(|c| trigger.is_occupied(c))
                && configs.iter().any(|c| forbidden.is_occupied(c))
        }
        Spec::NonBlocking { .. } => {
            let model = sys.model();
            terminal
                && configs.last().is_some_and(|last| {
                    model.loc_ids().any(|l| {
                        last.counter(l, 0) > 0 && model.location(l).class() != LocClass::BorderCopy
                    })
                })
        }
        // a single run cannot witness a ∀adversary∃path violation
        Spec::ExistsAvoidOneOf { .. } => false,
    }
}

/// The locations an adversarial run steers toward: the obligation's
/// forbidden sets.
fn adversarial_targets(spec: &Spec) -> Vec<ccta::LocId> {
    let sets: Vec<&LocSet> = match spec {
        Spec::NeverFrom { forbidden, .. } => vec![forbidden],
        Spec::CoverNever {
            trigger, forbidden, ..
        } => vec![trigger, forbidden],
        Spec::ExistsAvoidOneOf { forbidden_sets, .. } => forbidden_sets.iter().collect(),
        Spec::NonBlocking { .. } => vec![],
    };
    sets.into_iter()
        .flat_map(|s| s.locs().iter().copied())
        .collect()
}

#[test]
fn generated_families_agree_with_the_simulator_oracle() {
    let (mut safe_runs, mut replayed) = (0usize, 0usize);
    for (ctx, fam) in corpus() {
        let sys = counter_system(&fam);
        let specs = specs_of(&fam);
        let outcomes =
            ExplicitChecker::with_options(&sys, CheckerOptions::default()).check_all(&specs);
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            let where_ = format!("{ctx} (seed {:#x}), {}", fam.seed, spec.name());
            match outcome.status {
                CheckStatus::Holds => {
                    // direction (a): simulation must never witness a
                    // violation the checker proved safe
                    if spec.is_probabilistic() {
                        continue;
                    }
                    let starts = spec.start().configurations(&sys);
                    let targets = adversarial_targets(spec);
                    for (si, start) in starts.iter().take(3).enumerate() {
                        let mut runs = vec![
                            simulate(&sys, start, &SimPolicy::Fair, fam.seed ^ si as u64, 250),
                            simulate(
                                &sys,
                                start,
                                &SimPolicy::Fair,
                                fam.seed ^ 0x9E37 ^ si as u64,
                                250,
                            ),
                        ];
                        if !targets.is_empty() {
                            runs.push(simulate(
                                &sys,
                                start,
                                &SimPolicy::Adversarial(targets.clone()),
                                fam.seed ^ si as u64,
                                250,
                            ));
                            runs.push(simulate(
                                &sys,
                                start,
                                &SimPolicy::Adversarial(targets.clone()),
                                fam.seed ^ 0x517C ^ si as u64,
                                250,
                            ));
                        }
                        for trace in runs {
                            assert!(
                                !run_witnesses_violation(
                                    &sys,
                                    spec,
                                    &trace.configs,
                                    trace.terminal
                                ),
                                "the simulator witnessed a violation the checker called safe: \
                                 {where_} from start #{si}"
                            );
                            safe_runs += 1;
                        }
                    }
                }
                CheckStatus::Violated => {
                    // direction (b): every checker counterexample schedule
                    // replays at the process level to the same violating
                    // configurations
                    let ce = outcome.counterexample.as_ref().expect("counterexample");
                    if ce.schedule.is_empty() {
                        // structural acyclicity violations carry no schedule
                        assert!(ce.explanation.contains("cycle"), "{where_}");
                        continue;
                    }
                    let path = ce
                        .schedule
                        .apply(&sys, &ce.initial)
                        .unwrap_or_else(|e| panic!("{where_}: must replay in counters: {e:?}"));
                    let sim = replay_schedule(&sys, &ce.initial, &ce.schedule)
                        .unwrap_or_else(|e| panic!("{where_}: must replay in the simulator: {e}"));
                    assert_eq!(
                        sim.len(),
                        path.configs().len(),
                        "simulator path length differs: {where_}"
                    );
                    for (step, (mine, theirs)) in sim.iter().zip(path.configs()).enumerate() {
                        assert_eq!(
                            mine, theirs,
                            "simulator diverges from counter semantics at step {step}: {where_}"
                        );
                    }
                    // the replayed execution genuinely violates the spec
                    if !spec.is_probabilistic() {
                        assert!(
                            run_witnesses_violation(&sys, spec, &sim, sys.is_terminal(path.last())),
                            "replayed counterexample does not violate its spec: {where_}"
                        );
                    }
                    replayed += 1;
                }
                CheckStatus::Unknown => {}
            }
        }
    }
    // the corpus must drive both directions of the oracle
    assert!(safe_runs > 0, "no safe obligation was ever simulated");
    assert!(replayed > 0, "no counterexample was ever replayed");
}
