//! Fault-injection tests for the job lifecycle layer.
//!
//! Each test injects one failure mode — a seeded worker-lane panic, a
//! panicking sweep cell, an exhausted deadline, a resident-byte ("OOM")
//! cap, a state cap, or an asynchronous cancellation — and asserts the
//! structured-degradation contract: injected panics fail only their own
//! grid cell (retried once on a fresh pool before being given up on),
//! budget trips surrender a resumable checkpoint, resumed runs are
//! bit-identical to uninterrupted ones, and no failure mode ever loses a
//! grid cell or poisons the process.
//!
//! The panic injector (`ccchecker::fault`) is process-global, so every test
//! in this file serialises on one mutex.

use ccchecker::fixtures;
use ccchecker::{
    check_over_sweep_cancellable, check_over_sweep_with_stats, fault, resume_sweep, CancelToken,
    CellDisposition, CheckJob, CheckOutcome, CheckStatus, CheckerOptions, ExplicitChecker,
    InterruptKind, JobBudget, JobOutcome, LocSet, Spec, StartRestriction, SweepReport,
};
use cccounter::CounterSystem;
use ccta::{BinValue, ParamValuation, SystemModel};
use std::sync::Mutex;
use std::time::Duration;

/// Serialises the tests: the fault injector is process-global, and an armed
/// injector would fire inside any concurrently running exploration.
static SERIAL: Mutex<()> = Mutex::new(());

/// Disarms the injector even if the test body panics, so one failing test
/// cannot cascade injected panics into its siblings.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn model() -> SystemModel {
    fixtures::voting_model().single_round().unwrap()
}

fn catalogue(model: &SystemModel) -> Vec<Spec> {
    vec![
        Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(model, "I1", &["I1"]),
        },
        Spec::NeverFrom {
            name: "reachable-E0".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(model, "E0", &["E0"]),
        },
        Spec::ExistsAvoidOneOf {
            name: "avoid".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![
                LocSet::from_names(model, "F0", &["E0"]),
                LocSet::from_names(model, "F1", &["E1"]),
            ],
        },
        Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        },
    ]
}

fn sweep_valuations() -> Vec<ParamValuation> {
    vec![
        ParamValuation::new(vec![4, 1, 1, 1]),
        ParamValuation::new(vec![5, 1, 1, 1]),
    ]
}

/// Per-cell bit-identity of two sweep runs: dispositions, verdicts, counts,
/// details and counterexample schedules (durations are wall-clock and
/// excluded).
fn assert_reports_identical(a: &[SweepReport], b: &[SweepReport], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.spec_name, rb.spec_name, "{ctx}");
        assert_eq!(ra.outcomes.len(), rb.outcomes.len(), "{ctx}");
        for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
            let cell = format!("{ctx}: {} at {}", ra.spec_name, oa.params);
            assert_eq!(oa.params, ob.params, "{cell}");
            assert_eq!(oa.skipped, ob.skipped, "{cell}");
            assert_eq!(oa.disposition, ob.disposition, "{cell}");
            assert_outcomes_identical(&oa.outcome, &ob.outcome, &cell);
        }
    }
}

/// Bit-identity of two check outcomes: verdict, counts, detail and the
/// counterexample step for step.
fn assert_outcomes_identical(a: &CheckOutcome, b: &CheckOutcome, ctx: &str) {
    assert_eq!(a.status, b.status, "{ctx}");
    assert_eq!(a.states_explored, b.states_explored, "{ctx}");
    assert_eq!(a.transitions_explored, b.transitions_explored, "{ctx}");
    assert_eq!(a.detail, b.detail, "{ctx}");
    match (&a.counterexample, &b.counterexample) {
        (None, None) => {}
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.initial, cb.initial, "{ctx}");
            assert_eq!(ca.schedule.steps(), cb.schedule.steps(), "{ctx}");
        }
        _ => panic!("counterexample presence differs: {ctx}"),
    }
}

/// The four dispositions must partition every report's grid row.
fn assert_grid_accounted(reports: &[SweepReport], width: usize, ctx: &str) {
    for report in reports {
        let completed = report
            .outcomes
            .iter()
            .filter(|o| o.disposition == CellDisposition::Completed)
            .count();
        assert_eq!(
            completed + report.skipped_cells() + report.interrupted_cells() + report.failed_cells(),
            width,
            "{ctx}: {} lost a grid cell",
            report.spec_name
        );
    }
}

#[test]
fn injected_lane_panic_heals_on_the_retry_path() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let specs = catalogue(&model);
    let valuations = sweep_valuations();
    // pooled cells (2 lanes, single-node waves) so the injected panic fires
    // inside a worker lane's expand phase; the lineage is off so the only
    // recovery path under test is the fresh-rebuild retry
    let options = CheckerOptions::default()
        .with_workers(2)
        .with_wave_size(1)
        .with_incremental_sweep(false);
    let (baseline, _) = check_over_sweep_with_stats(&model, &specs, &valuations, options, 1);

    let _disarm = Disarm;
    fault::arm_panic(fault::SITE_EXPAND, 3, 1);
    let (healed, _) = check_over_sweep_with_stats(&model, &specs, &valuations, options, 1);
    let hits = fault::disarm();
    assert!(hits > 3, "the armed expand site was never reached: {hits}");

    // the one-shot panic was absorbed by the retry: no failed cell, and the
    // report is bit-identical to the un-faulted sweep
    assert_grid_accounted(&healed, valuations.len(), "healed");
    assert_reports_identical(&healed, &baseline, "healed vs baseline");
}

#[test]
fn persistent_cell_panic_fails_only_that_cell() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let specs = catalogue(&model);
    let valuations = sweep_valuations();
    // per-cell scheduling (cache off), sequential, so the first dispatched
    // cell is deterministic: specs[0] on valuations[0]
    let options = CheckerOptions::default().with_graph_cache(false);
    let (baseline, _) = check_over_sweep_with_stats(&model, &specs, &valuations, options, 1);

    // two shots: the first cell panics on the shared pool *and* on its
    // fresh-pool retry, exhausting both attempts; every later cell passes
    let _disarm = Disarm;
    fault::arm_panic(fault::SITE_SWEEP_CELL, 0, 2);
    let (reports, _) = check_over_sweep_with_stats(&model, &specs, &valuations, options, 1);
    let hits = fault::disarm();
    assert!(
        hits >= 2,
        "both attempts of the first cell must fire: {hits}"
    );

    assert_grid_accounted(&reports, valuations.len(), "persistent panic");
    let failed = &reports[0].outcomes[0];
    assert_eq!(failed.disposition, CellDisposition::Failed);
    assert_eq!(failed.outcome.status, CheckStatus::Unknown);
    assert!(
        failed.outcome.detail.starts_with("failed: ")
            && failed.outcome.detail.contains("injected fault"),
        "{}",
        failed.outcome.detail
    );
    assert_eq!(reports[0].failed_cells(), 1);
    // every sibling cell of the grid still completed and matches the
    // un-faulted run bit for bit
    for (r, b) in reports.iter().zip(&baseline) {
        for (v, (cell, base)) in r.outcomes.iter().zip(&b.outcomes).enumerate() {
            if r.spec_name == reports[0].spec_name && v == 0 {
                continue;
            }
            assert_eq!(cell.disposition, base.disposition, "{} {v}", r.spec_name);
            assert_outcomes_identical(
                &cell.outcome,
                &base.outcome,
                &format!("{} {v}", r.spec_name),
            );
        }
    }
}

#[test]
fn single_shot_cell_panic_is_invisible_after_retry() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let specs = catalogue(&model);
    let valuations = sweep_valuations();
    // cached batched scheduling: the retried cell must rebuild its graph on
    // a fresh lineage-free checker and still report identical results
    let options = CheckerOptions::default().with_incremental_sweep(false);
    let (baseline, _) = check_over_sweep_with_stats(&model, &specs, &valuations, options, 1);

    let _disarm = Disarm;
    fault::arm_panic(fault::SITE_SWEEP_CELL, 2, 1);
    let (healed, _) = check_over_sweep_with_stats(&model, &specs, &valuations, options, 1);
    let hits = fault::disarm();
    assert!(hits > 2, "the armed cell site was never reached: {hits}");

    assert_grid_accounted(&healed, valuations.len(), "healed cell");
    assert_reports_identical(&healed, &baseline, "healed cell vs baseline");
}

#[test]
fn exhausted_deadline_surrenders_a_resumable_checkpoint() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let sys = CounterSystem::new(model.clone(), fixtures::small_params()).unwrap();
    let specs = catalogue(&model);
    let options = CheckerOptions::default();
    let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);

    // a zero deadline is the deterministic flavour of "the clock ran out":
    // the job must trip before completing its obligations
    let job = CheckJob::new(&sys, &specs, options)
        .with_budget(JobBudget::unlimited().with_deadline(Duration::ZERO));
    let checkpoint = match job.run() {
        JobOutcome::BudgetExceeded {
            reason, checkpoint, ..
        } => {
            assert_eq!(reason, InterruptKind::Deadline);
            checkpoint
        }
        _ => panic!("a zero deadline must trip the budget"),
    };
    assert!(checkpoint.completed_obligations() < specs.len());

    // resuming with breathing room completes, bit-identical to check_all
    let (outcomes, _) = CheckJob::new(&sys, &specs, options)
        .resume(checkpoint)
        .completed()
        .expect("the resumed job must complete");
    for ((spec, a), b) in specs.iter().zip(&outcomes).zip(&reference) {
        assert_outcomes_identical(a, b, spec.name());
    }
}

#[test]
fn resident_byte_cap_trips_like_an_oom_and_resumes() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let sys = CounterSystem::new(model.clone(), fixtures::small_params()).unwrap();
    let specs = catalogue(&model);
    // the cache is pinned on (overriding `CC_GRAPH_CACHE`): the suspended
    // mid-wave build this test asserts on only exists on the cached path
    let options = CheckerOptions::default().with_graph_cache(true);
    let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);

    // a one-byte resident cap is the injected OOM: the first wave boundary
    // of the first build must trip it, with the partial store checkpointed
    let job = CheckJob::new(&sys, &specs, options)
        .with_budget(JobBudget::unlimited().with_max_resident_bytes(1));
    let checkpoint = match job.run() {
        JobOutcome::BudgetExceeded {
            reason, checkpoint, ..
        } => {
            assert_eq!(reason, InterruptKind::ResidentBudget);
            checkpoint
        }
        _ => panic!("a one-byte resident cap must trip the budget"),
    };
    assert!(checkpoint.has_build_in_flight());
    assert!(checkpoint.states_explored() > 0);

    let (outcomes, _) = CheckJob::new(&sys, &specs, options)
        .resume(checkpoint)
        .completed()
        .expect("the resumed job must complete");
    for ((spec, a), b) in specs.iter().zip(&outcomes).zip(&reference) {
        assert_outcomes_identical(a, b, spec.name());
    }
}

#[test]
fn state_cap_checkpoints_are_bit_identical_across_worker_counts() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let sys = CounterSystem::new(model.clone(), fixtures::small_params()).unwrap();
    let specs = catalogue(&model);
    for workers in [1, 2, 4] {
        let options = CheckerOptions {
            workers,
            wave_size: 1,
            ..CheckerOptions::default()
        };
        let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);
        // walk the job through repeated deterministic state-cap trips,
        // doubling the cap each time until it completes
        let mut cap = 4usize;
        let mut trips = 0usize;
        let mut outcome = CheckJob::new(&sys, &specs, options)
            .with_budget(JobBudget::unlimited().with_max_states(cap))
            .run();
        let outcomes = loop {
            match outcome {
                JobOutcome::Completed { outcomes, .. } => break outcomes,
                JobOutcome::BudgetExceeded {
                    reason, checkpoint, ..
                } => {
                    assert!(reason.is_budget(), "{reason}");
                    trips += 1;
                    cap *= 2;
                    outcome = CheckJob::new(&sys, &specs, options)
                        .with_budget(JobBudget::unlimited().with_max_states(cap))
                        .resume(checkpoint);
                }
                JobOutcome::Interrupted { .. } => {
                    panic!("no cancel token was tripped at {workers} workers")
                }
            }
        };
        assert!(
            trips > 0,
            "the state cap never tripped at {workers} workers"
        );
        for ((spec, a), b) in specs.iter().zip(&outcomes).zip(&reference) {
            assert_outcomes_identical(a, b, &format!("{} at {workers} workers", spec.name()));
        }
    }
}

#[test]
fn asynchronous_cancellation_is_resumable() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let sys = CounterSystem::new(model.clone(), fixtures::small_params()).unwrap();
    let specs = catalogue(&model);
    let options = CheckerOptions::default();
    let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);

    let job = CheckJob::new(&sys, &specs, options);
    let token = job.cancel_token();
    let canceller = std::thread::spawn(move || token.cancel());
    let first = job.run();
    canceller.join().unwrap();

    // the race is honest: the cancel may land before, during or after the
    // run — an interrupted job must resume to the same outcomes either way
    let outcomes = match first {
        JobOutcome::Completed { outcomes, .. } => outcomes,
        JobOutcome::Interrupted { checkpoint } => {
            CheckJob::new(&sys, &specs, options)
                .resume(checkpoint)
                .completed()
                .expect("the resumed job must complete")
                .0
        }
        JobOutcome::BudgetExceeded { reason, .. } => {
            panic!("no budget was set, yet {reason} tripped")
        }
    };
    for ((spec, a), b) in specs.iter().zip(&outcomes).zip(&reference) {
        assert_outcomes_identical(a, b, spec.name());
    }

    // a pre-cancelled job suspends before doing any work at all
    let eager = CheckJob::new(&sys, &specs, options);
    eager.cancel_token().cancel();
    let checkpoint = eager
        .run()
        .into_checkpoint()
        .expect("a pre-cancelled job must surrender a checkpoint");
    assert_eq!(checkpoint.completed_obligations(), 0);
    assert_eq!(checkpoint.states_explored(), 0);
}

#[test]
fn deadline_swept_grid_accounts_and_resumes_bit_identically() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let model = model();
    let specs = catalogue(&model);
    let valuations = sweep_valuations();
    let options = CheckerOptions::default();

    // an already-exhausted deadline interrupts every cell of the grid —
    // the sweep analogue of the zero-deadline job trip
    let (tripped, _) = check_over_sweep_cancellable(
        &model,
        &specs,
        &valuations,
        options,
        2,
        &CancelToken::new(),
        JobBudget::unlimited().with_deadline(Duration::ZERO),
    );
    assert_grid_accounted(&tripped, valuations.len(), "deadline sweep");
    for report in &tripped {
        assert_eq!(report.interrupted_cells(), valuations.len());
        for cell in &report.outcomes {
            assert!(cell.outcome.is_interrupted());
            assert!(
                cell.outcome.detail.contains("deadline"),
                "{}",
                cell.outcome.detail
            );
        }
    }

    // resuming with an open budget completes the grid, bit-identical to an
    // uninterrupted cancellable sweep at a different thread budget
    let (resumed, _) = resume_sweep(
        &model,
        &specs,
        &valuations,
        options,
        2,
        &CancelToken::new(),
        JobBudget::unlimited(),
        &tripped,
    );
    let (reference, _) = check_over_sweep_cancellable(
        &model,
        &specs,
        &valuations,
        options,
        1,
        &CancelToken::new(),
        JobBudget::unlimited(),
    );
    assert_grid_accounted(&resumed, valuations.len(), "resumed sweep");
    assert_reports_identical(&resumed, &reference, "resumed vs uninterrupted sweep");
}
