//! Randomized differential testing of the exploration engine.
//!
//! The hand-picked fixtures and the eight benchmark protocols pin the
//! engine on *known* shapes; this suite hammers it with ~100 seeded random
//! small counter systems (random intra-round DAGs, guards, updates and
//! tracked location sets, built through the in-tree `rand` shim so every
//! run is reproducible from its seed) and checks two contracts on each:
//!
//! * **Engine ≡ reference** — verdict, distinct-state count, transition
//!   count, and (for violations) the counterexample schedule step for step,
//!   which must also replay on the counter system.
//! * **Pooled waves ≡ sequential** — the persistent-pool wave pipeline at
//!   1, 2 and 4 workers × wave sizes {1, 7, unbounded} is bit-identical to
//!   the sequential loop (tiny wave sizes also lower the parallel-entry
//!   threshold, so these small systems genuinely exercise the wave path).
//! * **Cached ≡ uncached** — the reachability-graph cache
//!   (`check_all` sharing one exploration per start-restriction group) at
//!   1, 2 and 4 workers returns the same verdict as the per-spec path for
//!   every obligation, and every cached counterexample replays to a
//!   genuine violation of its spec.
//! * **Interrupted ≡ uninterrupted** — a `CheckJob` tripped by a state
//!   budget at a random cap, checkpointed and resumed (repeatedly, with a
//!   doubling cap) produces verdicts, counts and counterexample schedules
//!   bit-identical to a run that was never interrupted, at 1, 2 and 4
//!   workers.
//!
//! A failure message always includes the generator seed, so any
//! counterexample system can be rebuilt deterministically.

use ccchecker::reference::reference_check;
use ccchecker::{
    check_over_sweep_with_stats, CheckJob, CheckStatus, CheckerOptions, ExplicitChecker, JobBudget,
    JobOutcome, LocSet, Spec, StartRestriction,
};
use cccounter::CounterSystem;
use ccta::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random systems per test.
const SYSTEMS: usize = 100;

/// A random guard over the shared/coin variables: mostly `true`, otherwise
/// a single-atom threshold (mixing shared and coin atoms in one guard is
/// structurally illegal, so each guard sticks to one variable).
fn random_guard(
    rng: &mut StdRng,
    k: usize,
    shared: &[VarId],
    coins: &[VarId],
    quorum: &LinearExpr,
) -> Guard {
    match rng.gen_range(0..6u32) {
        0 | 1 => Guard::top(),
        2 => Guard::ge(
            shared[rng.gen_range(0..shared.len())],
            LinearExpr::constant(k, rng.gen_range(1..=2u64) as i64),
        ),
        3 => Guard::ge(shared[rng.gen_range(0..shared.len())], quorum.clone()),
        _ => Guard::ge(
            coins[rng.gen_range(0..coins.len())],
            LinearExpr::constant(k, 1),
        ),
    }
}

/// A random update: increment one shared variable, or nothing.
fn random_update(rng: &mut StdRng, shared: &[VarId]) -> Update {
    if rng.gen_bool(0.5) {
        Update::increment(shared[rng.gen_range(0..shared.len())])
    } else {
        Update::none()
    }
}

/// One random small system: a valid multi-round model (random intra-round
/// process DAG plus the standard fair-coin automaton) and an admissible
/// valuation with 2–3 modelled processes.
fn random_system(seed: u64) -> (CounterSystem, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let resilience = rng.gen_range(2..=3u64) as i64;
    let env = ccta::env::byzantine_common_coin_env(resilience);
    let k = env.num_params();
    let n = env.param_id("n").unwrap();
    let t = env.param_id("t").unwrap();
    let f = env.param_id("f").unwrap();
    let quorum = LinearExpr::param(k, n)
        .sub(&LinearExpr::param(k, t))
        .sub(&LinearExpr::param(k, f));

    let mut b = SystemBuilder::new(format!("random-{seed}"), env);
    let shared: Vec<VarId> = (0..rng.gen_range(1..=2usize))
        .map(|i| b.shared_var(&format!("v{i}")))
        .collect();
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");
    let coins = [cc0, cc1];

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let num_mids = rng.gen_range(1..=3usize);
    let mids: Vec<LocId> = (0..num_mids)
        .map(|i| b.process_location(&format!("S{i}"), LocClass::Intermediate, None))
        .collect();
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
    b.start_rule(j0, i0);
    b.start_rule(j1, i1);

    // random acyclic progress rules: a source of rank r only targets mids
    // of rank > r or a final location, so the intra-round graph is a DAG
    // (rules on cycles would have to drop their updates to stay canonical)
    let mut rule_no = 0usize;
    let mut add_random_rules =
        |b: &mut SystemBuilder, from: LocId, rank: usize, rng: &mut StdRng| {
            let mut targets: Vec<LocId> = mids.iter().copied().skip(rank).collect();
            targets.push(e0);
            targets.push(e1);
            for _ in 0..rng.gen_range(1..=2usize) {
                let to = targets[rng.gen_range(0..targets.len())];
                let guard = random_guard(rng, k, &shared, &coins, &quorum);
                let update = random_update(rng, &shared);
                b.rule(&format!("r{rule_no}"), from, to, guard, update);
                rule_no += 1;
            }
        };
    add_random_rules(&mut b, i0, 0, &mut rng);
    add_random_rules(&mut b, i1, 0, &mut rng);
    for (rank, &mid) in mids.iter().enumerate() {
        add_random_rules(&mut b, mid, rank + 1, &mut rng);
    }
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    // the standard fair-coin automaton publishing through cc0/cc1
    let jc = b.coin_location("JC", LocClass::Border, None);
    let ic = b.coin_location("IC", LocClass::Initial, None);
    let h0 = b.coin_location("H0", LocClass::Intermediate, None);
    let h1 = b.coin_location("H1", LocClass::Intermediate, None);
    let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
    let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
    b.start_rule(jc, ic);
    b.coin_toss(
        "toss",
        ic,
        vec![(h0, Probability::HALF), (h1, Probability::HALF)],
        Guard::top(),
        Update::none(),
    );
    b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
    b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
    b.round_switch(c0, jc);
    b.round_switch(c1, jc);

    let model = b
        .build()
        .unwrap_or_else(|e| panic!("seed {seed}: generated model must validate: {e:?}"))
        .single_round()
        .unwrap();
    // the smallest admissible valuations of the two environments: 2 or 3
    // modelled correct processes plus the coin
    let valuation = if resilience == 2 {
        ParamValuation::new(vec![3, 1, 1, 1])
    } else {
        ParamValuation::new(vec![4, 1, 1, 1])
    };
    let sys = CounterSystem::new(model, valuation)
        .unwrap_or_else(|e| panic!("seed {seed}: valuation must be admissible: {e:?}"));
    let mid_names = (0..num_mids).map(|i| format!("S{i}")).collect();
    (sys, mid_names)
}

/// A random tracked location set over the finals and intermediates.
fn random_locset(rng: &mut StdRng, model: &SystemModel, mids: &[String], tag: usize) -> LocSet {
    let mut pool: Vec<&str> = vec!["E0", "E1"];
    pool.extend(mids.iter().map(String::as_str));
    let size = rng.gen_range(1..=2usize.min(pool.len()));
    let mut names: Vec<&str> = Vec::new();
    while names.len() < size {
        let pick = pool[rng.gen_range(0..pool.len())];
        if !names.contains(&pick) {
            names.push(pick);
        }
    }
    LocSet::from_names(model, format!("T{tag}"), &names)
}

/// Random obligations over a random system: every query shape of the
/// catalogue, over random tracked sets.
fn random_specs(rng: &mut StdRng, model: &SystemModel, mids: &[String]) -> Vec<Spec> {
    let value = if rng.gen_bool(0.5) {
        BinValue::Zero
    } else {
        BinValue::One
    };
    vec![
        Spec::NeverFrom {
            name: "never".into(),
            start: StartRestriction::Unanimous(value),
            forbidden: random_locset(rng, model, mids, 0),
        },
        Spec::CoverNever {
            name: "cover".into(),
            start: StartRestriction::RoundStart,
            trigger: random_locset(rng, model, mids, 1),
            forbidden: random_locset(rng, model, mids, 2),
        },
        Spec::ExistsAvoidOneOf {
            name: "avoid".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![
                LocSet::from_names(model, "F0", &["E0"]),
                LocSet::from_names(model, "F1", &["E1"]),
            ],
        },
        Spec::NonBlocking {
            name: "nonblocking".into(),
            start: StartRestriction::RoundStart,
        },
    ]
}

#[test]
fn random_systems_match_the_reference_engine() {
    let mut verdicts = [0usize; 3];
    for i in 0..SYSTEMS {
        let seed = 0xD1F_F0000 + i as u64;
        let (sys, mids) = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
        let options = CheckerOptions::default();
        for spec in random_specs(&mut rng, sys.model(), &mids) {
            let engine = ExplicitChecker::with_options(&sys, options).check(&spec);
            let reference = reference_check(&sys, &spec, &options);
            assert_eq!(
                engine.status,
                reference.status,
                "seed {seed}: verdicts differ on {}",
                spec.name()
            );
            assert_eq!(
                engine.states_explored,
                reference.states_explored,
                "seed {seed}: state counts differ on {}",
                spec.name()
            );
            assert_eq!(
                engine.transitions_explored,
                reference.transitions_explored,
                "seed {seed}: transition counts differ on {}",
                spec.name()
            );
            verdicts[match engine.status {
                CheckStatus::Holds => 0,
                CheckStatus::Violated => 1,
                CheckStatus::Unknown => 2,
            }] += 1;
            if engine.status == CheckStatus::Violated {
                let e = engine.counterexample.expect("engine counterexample");
                let r = reference.counterexample.expect("reference counterexample");
                assert_eq!(
                    e.initial,
                    r.initial,
                    "seed {seed}: counterexample initials differ on {}",
                    spec.name()
                );
                assert_eq!(
                    e.schedule.steps(),
                    r.schedule.steps(),
                    "seed {seed}: counterexample schedules differ on {}",
                    spec.name()
                );
                // the counterexample is a real execution of the system
                let path = e
                    .schedule
                    .apply(&sys, &e.initial)
                    .unwrap_or_else(|err| panic!("seed {seed}: must replay: {err:?}"));
                assert_eq!(path.len(), e.schedule.len());
            }
        }
    }
    // the random family is not degenerate: both verdicts actually occur
    assert!(
        verdicts[0] > 0 && verdicts[1] > 0,
        "degenerate verdict distribution: {verdicts:?}"
    );
}

/// Replays a counterexample and asserts the resulting execution genuinely
/// violates the spec it was reported for.
fn assert_genuine_violation(
    sys: &CounterSystem,
    spec: &Spec,
    ce: &ccchecker::Counterexample,
    ctx: &str,
) {
    // structural acyclicity violations carry no schedule to replay
    if ce.explanation.contains("cycle") {
        assert!(ce.schedule.is_empty(), "{ctx}");
        return;
    }
    let path = ce
        .schedule
        .apply(sys, &ce.initial)
        .unwrap_or_else(|e| panic!("{ctx}: counterexample must replay: {e:?}"));
    match spec {
        Spec::NeverFrom { forbidden, .. } => {
            assert!(
                path.visits(|cfg| forbidden.is_occupied(cfg)),
                "{ctx}: the path never occupies {}",
                forbidden.name()
            );
        }
        Spec::CoverNever {
            trigger, forbidden, ..
        } => {
            assert!(
                path.visits(|cfg| trigger.is_occupied(cfg))
                    && path.visits(|cfg| forbidden.is_occupied(cfg)),
                "{ctx}: the path must occupy both {} and {}",
                trigger.name(),
                forbidden.name()
            );
        }
        Spec::ExistsAvoidOneOf { forbidden_sets, .. } => {
            for set in forbidden_sets {
                assert!(
                    path.visits(|cfg| set.is_occupied(cfg)),
                    "{ctx}: the strategy path never occupies {}",
                    set.name()
                );
            }
        }
        Spec::NonBlocking { .. } => {
            let last = path.last();
            assert!(
                sys.is_terminal(last),
                "{ctx}: a blocking path must end terminal"
            );
            let model = sys.model();
            assert!(
                model
                    .loc_ids()
                    .any(|l| last.counter(l, 0) > 0
                        && model.location(l).class() != LocClass::BorderCopy),
                "{ctx}: the terminal configuration must strand an automaton"
            );
        }
    }
}

#[test]
fn random_systems_cached_catalogue_matches_uncached() {
    let mut cached_violations = 0usize;
    for i in 0..SYSTEMS {
        let seed = 0xD1F_F0000 + i as u64;
        let (sys, mids) = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
        let specs = random_specs(&mut rng, sys.model(), &mids);
        let uncached_checker =
            ExplicitChecker::with_options(&sys, CheckerOptions::default().with_graph_cache(false));
        let uncached = uncached_checker.check_all(&specs);
        for workers in [1, 2, 4] {
            // wave size 1 lowers the parallel-entry threshold so pooled
            // runs genuinely exercise the parallel cache build
            let options = CheckerOptions {
                workers,
                wave_size: if workers > 1 { 1 } else { 0 },
                ..CheckerOptions::default().with_graph_cache(true)
            };
            let checker = ExplicitChecker::with_options(&sys, options);
            let (cached, stats) = checker.check_all_with_stats(&specs);
            assert!(
                stats.graphs_built() > 0 && stats.uncached_specs == 0,
                "seed {seed}: the cached axis must actually exercise the cache"
            );
            for ((spec, c), u) in specs.iter().zip(&cached).zip(&uncached) {
                let ctx = format!("seed {seed}, {} at {workers} workers", spec.name());
                assert_eq!(c.status, u.status, "cached verdict differs: {ctx}");
                if c.status == CheckStatus::Violated {
                    let ce = c.counterexample.as_ref().expect("cached counterexample");
                    assert_genuine_violation(&sys, spec, ce, &ctx);
                    cached_violations += 1;
                }
            }
        }
    }
    assert!(
        cached_violations > 0,
        "degenerate corpus: no cached violation was replayed"
    );
}

#[test]
fn random_systems_incremental_sweep_matches_fresh() {
    // Random guard-adjacent valuation steps: raising t with n fixed keeps
    // the system size (n - f processes) and lowers the n - t - f quorum
    // bounds, so the sweep [t=1, t=2, t=2, t=1] walks a relax step, an
    // identical step and a tighten step through every random system.  The
    // incremental sweep must be bit-identical to the from-scratch sweep —
    // verdicts, state counts, transition counts and counterexample
    // schedules — at 1, 2 and 4 in-check workers.
    let (mut reused, mut extended, mut rebuilt, mut pruned) = (0usize, 0usize, 0usize, 0usize);
    let mut memo_hits = 0usize;
    let mut replayed = 0usize;
    // the CI reruns exercise this suite with the levers forced off through
    // the environment, which legitimately shifts the lineage distribution
    let prune_on = std::env::var("CC_TIGHTEN_PRUNE").map_or(true, |v| v != "0");
    let memo_on = std::env::var("CC_VERDICT_MEMO").map_or(true, |v| v != "0");
    for i in 0..SYSTEMS {
        let seed = 0xD1F_F0000 + i as u64;
        let (sys, mids) = random_system(seed);
        let model = sys.model().clone();
        // the resilience-3 environment needs n = 7 for two admissible t
        // values, which makes 6-process sweeps too heavy for this corpus:
        // keep the guard-adjacent axis to the resilience-2 systems (n = 5,
        // 4 processes), which are roughly half the seeds
        let env = model.env();
        let pair = [
            ParamValuation::new(vec![5, 1, 1, 1]),
            ParamValuation::new(vec![5, 2, 1, 1]),
        ];
        if !pair.iter().all(|v| env.is_admissible(v)) {
            continue;
        }
        let valuations = vec![
            pair[0].clone(), // built
            pair[1].clone(), // quorum drops: relax-only extension
            pair[1].clone(), // identical bounds: pure reuse
            pair[0].clone(), // quorum rises: tighten, rebuild
        ];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
        let specs = random_specs(&mut rng, &model, &mids);
        for workers in [1, 2, 4] {
            // wave size 1 lowers the parallel-entry threshold so pooled
            // runs genuinely exercise the parallel extension path
            let options = CheckerOptions {
                workers,
                wave_size: if workers > 1 { 1 } else { 0 },
                ..CheckerOptions::default()
            };
            let (incremental, stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                options.with_graph_cache(true).with_incremental_sweep(true),
                1,
            );
            let (fresh, _) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                options.with_graph_cache(true).with_incremental_sweep(false),
                1,
            );
            if workers == 1 {
                reused += stats.reused_groups();
                extended += stats.extended_groups();
                rebuilt += stats.rebuilt_groups();
                pruned += stats.pruned_groups();
                memo_hits += stats.memo_hits();
            }
            for (ri, rf) in incremental.iter().zip(&fresh) {
                let ctx = format!("seed {seed}, {} at {workers} workers", ri.spec_name);
                assert_eq!(ri.status(), rf.status(), "sweep status differs: {ctx}");
                assert_eq!(ri.outcomes.len(), rf.outcomes.len(), "{ctx}");
                for (oi, of) in ri.outcomes.iter().zip(&rf.outcomes) {
                    let cell = format!("{ctx} at {}", oi.params);
                    assert_eq!(oi.params, of.params, "{cell}");
                    assert_eq!(oi.skipped, of.skipped, "{cell}");
                    assert_eq!(oi.outcome.status, of.outcome.status, "{cell}");
                    assert_eq!(
                        oi.outcome.states_explored, of.outcome.states_explored,
                        "state count differs: {cell}"
                    );
                    assert_eq!(
                        oi.outcome.transitions_explored, of.outcome.transitions_explored,
                        "transition count differs: {cell}"
                    );
                    match (&oi.outcome.counterexample, &of.outcome.counterexample) {
                        (None, None) => {}
                        (Some(ci), Some(cf)) => {
                            assert_eq!(ci.initial, cf.initial, "initial differs: {cell}");
                            assert_eq!(
                                ci.schedule.steps(),
                                cf.schedule.steps(),
                                "schedule differs: {cell}"
                            );
                            // the incremental counterexample is a genuine
                            // execution violating its spec
                            let spec = specs
                                .iter()
                                .find(|s| s.name() == ri.spec_name)
                                .expect("report spec");
                            let cell_sys = CounterSystem::new(model.clone(), ci.params.clone())
                                .expect("admissible");
                            assert_genuine_violation(&cell_sys, spec, ci, &cell);
                            replayed += 1;
                        }
                        _ => panic!("counterexample presence differs: {cell}"),
                    }
                }
            }
        }
    }
    // the corpus must actually walk every lineage classification and
    // replay at least one incremental counterexample
    assert!(reused > 0, "no identical step was reused");
    assert!(extended > 0, "no relax-only step was extended");
    if prune_on {
        // the n-fixed grid never changes the system size, so every tighten
        // step must take the in-place prune, never a rebuild
        assert!(pruned > 0, "no tighten step was pruned in place");
        assert_eq!(
            rebuilt, 0,
            "a guard-adjacent tighten step fell back to a rebuild"
        );
    } else {
        assert!(rebuilt > 0, "no tighten step was rebuilt");
    }
    if memo_on {
        assert!(memo_hits > 0, "no identical step ever hit the verdict memo");
    }
    assert!(replayed > 0, "no incremental counterexample was replayed");
}

#[test]
fn random_systems_sweep_levers_are_verdict_invariant() {
    // The memoization/compaction levers are pure performance knobs: over
    // the same guard-adjacent grid as the incremental≡fresh axis, a sweep
    // with verdict memoization disabled and a sweep with the tighten-only
    // prune disabled must each be bit-identical — verdicts, state counts,
    // transition counts and counterexample schedules — to the sweep with
    // both levers on, at 1, 2 and 4 in-check workers.  The lever-on runs
    // must genuinely exercise both levers (≥1 pruned step, ≥1 memo hit),
    // and every counterexample minted from a pruned or memoized graph must
    // replay strictly.
    let (mut pruned, mut memo_hits) = (0usize, 0usize);
    let mut replayed = 0usize;
    for i in 0..SYSTEMS {
        let seed = 0xD1F_F0000 + i as u64;
        let (sys, mids) = random_system(seed);
        let model = sys.model().clone();
        let env = model.env();
        let pair = [
            ParamValuation::new(vec![5, 1, 1, 1]),
            ParamValuation::new(vec![5, 2, 1, 1]),
        ];
        if !pair.iter().all(|v| env.is_admissible(v)) {
            continue;
        }
        let valuations = vec![
            pair[0].clone(), // built
            pair[1].clone(), // relax-only extension
            pair[1].clone(), // identical: reuse + memo hits
            pair[0].clone(), // tighten: in-place prune
        ];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
        let specs = random_specs(&mut rng, &model, &mids);
        for workers in [1, 2, 4] {
            let base_options = CheckerOptions {
                workers,
                wave_size: if workers > 1 { 1 } else { 0 },
                ..CheckerOptions::default()
            }
            .with_graph_cache(true)
            .with_incremental_sweep(true);
            let (levered, stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                base_options
                    .with_verdict_memo(true)
                    .with_tighten_prune(true),
                1,
            );
            if workers == 1 {
                pruned += stats.pruned_groups();
                memo_hits += stats.memo_hits();
            }
            for (label, variant) in [
                (
                    "memo off",
                    base_options
                        .with_verdict_memo(false)
                        .with_tighten_prune(true),
                ),
                (
                    "prune off",
                    base_options
                        .with_verdict_memo(true)
                        .with_tighten_prune(false),
                ),
            ] {
                let (plain, _) =
                    check_over_sweep_with_stats(&model, &specs, &valuations, variant, 1);
                for (rl, rp) in levered.iter().zip(&plain) {
                    let ctx = format!(
                        "seed {seed}, {} at {workers} workers, {label}",
                        rl.spec_name
                    );
                    assert_eq!(rl.status(), rp.status(), "sweep status differs: {ctx}");
                    assert_eq!(rl.outcomes.len(), rp.outcomes.len(), "{ctx}");
                    for (ol, op) in rl.outcomes.iter().zip(&rp.outcomes) {
                        let cell = format!("{ctx} at {}", ol.params);
                        assert_eq!(ol.params, op.params, "{cell}");
                        assert_eq!(ol.skipped, op.skipped, "{cell}");
                        assert_eq!(ol.outcome.status, op.outcome.status, "{cell}");
                        assert_eq!(
                            ol.outcome.states_explored, op.outcome.states_explored,
                            "state count differs: {cell}"
                        );
                        assert_eq!(
                            ol.outcome.transitions_explored, op.outcome.transitions_explored,
                            "transition count differs: {cell}"
                        );
                        match (&ol.outcome.counterexample, &op.outcome.counterexample) {
                            (None, None) => {}
                            (Some(cl), Some(cp)) => {
                                assert_eq!(cl.initial, cp.initial, "initial differs: {cell}");
                                assert_eq!(
                                    cl.schedule.steps(),
                                    cp.schedule.steps(),
                                    "schedule differs: {cell}"
                                );
                                // a counterexample minted from a pruned or
                                // memoized graph is a genuine execution
                                let spec = specs
                                    .iter()
                                    .find(|s| s.name() == rl.spec_name)
                                    .expect("report spec");
                                let cell_sys = CounterSystem::new(model.clone(), cl.params.clone())
                                    .expect("admissible");
                                assert_genuine_violation(&cell_sys, spec, cl, &cell);
                                replayed += 1;
                            }
                            _ => panic!("counterexample presence differs: {cell}"),
                        }
                    }
                }
            }
        }
    }
    assert!(pruned > 0, "no tighten step was pruned in place");
    assert!(memo_hits > 0, "no identical step ever hit the verdict memo");
    assert!(replayed > 0, "no lever-axis counterexample was replayed");
}

#[test]
fn random_systems_are_worker_and_wave_independent() {
    for i in 0..SYSTEMS {
        let seed = 0xD1F_F0000 + i as u64;
        let (sys, mids) = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
        for spec in random_specs(&mut rng, sys.model(), &mids) {
            let sequential =
                ExplicitChecker::with_options(&sys, CheckerOptions::sequential()).check(&spec);
            for workers in [1, 2, 4] {
                for wave_size in [1, 7, usize::MAX] {
                    let options = CheckerOptions {
                        workers,
                        wave_size,
                        ..CheckerOptions::default()
                    };
                    let pooled = ExplicitChecker::with_options(&sys, options).check(&spec);
                    let ctx = format!(
                        "seed {seed}, {} at {workers} workers, wave {wave_size}",
                        spec.name()
                    );
                    assert_eq!(pooled.status, sequential.status, "verdict differs: {ctx}");
                    assert_eq!(
                        pooled.states_explored, sequential.states_explored,
                        "state count differs: {ctx}"
                    );
                    assert_eq!(
                        pooled.transitions_explored, sequential.transitions_explored,
                        "transition count differs: {ctx}"
                    );
                    match (&sequential.counterexample, &pooled.counterexample) {
                        (None, None) => {}
                        (Some(s), Some(p)) => {
                            assert_eq!(s.initial, p.initial, "initial differs: {ctx}");
                            assert_eq!(
                                s.schedule.steps(),
                                p.schedule.steps(),
                                "schedule differs: {ctx}"
                            );
                        }
                        _ => panic!("counterexample presence differs: {ctx}"),
                    }
                }
            }
        }
    }
}

#[test]
fn random_systems_interrupt_resume_is_bit_identical() {
    // The random-interrupt axis of the job lifecycle: every system's
    // catalogue is run once uninterrupted (the reference), once as an
    // uninterrupted `CheckJob`, and once tripped by a state budget at a
    // random cap drawn from the seed.  Each trip surrenders a checkpoint;
    // resuming with a doubled cap walks the job through repeated
    // deterministic interrupts until it completes.  Both job runs must be
    // bit-identical to the reference — verdicts, state counts, transition
    // counts and counterexample schedules — at 1, 2 and 4 workers, with
    // the graph cache on and (at one worker) off.
    let mut trips = 0usize;
    let mut suspended_builds = 0usize;
    for i in 0..SYSTEMS {
        let seed = 0xD1F_F0000 + i as u64;
        let (sys, mids) = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
        let specs = random_specs(&mut rng, sys.model(), &mids);
        for workers in [1, 2, 4] {
            for graph_cache in [true, false] {
                if !graph_cache && workers != 1 {
                    continue;
                }
                let options = CheckerOptions {
                    workers,
                    wave_size: if workers > 1 { 1 } else { 0 },
                    ..CheckerOptions::default()
                }
                .with_graph_cache(graph_cache);
                let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);

                let (direct, _) = CheckJob::new(&sys, &specs, options)
                    .run()
                    .completed()
                    .expect("an unbudgeted job must complete");

                let mut cap = rng.gen_range(2..=24usize);
                let mut outcome = CheckJob::new(&sys, &specs, options)
                    .with_budget(JobBudget::unlimited().with_max_states(cap))
                    .run();
                let resumed = loop {
                    match outcome {
                        JobOutcome::Completed { outcomes, .. } => break outcomes,
                        JobOutcome::BudgetExceeded {
                            reason, checkpoint, ..
                        } => {
                            assert!(reason.is_budget(), "seed {seed}: {reason}");
                            trips += 1;
                            if checkpoint.has_build_in_flight() {
                                suspended_builds += 1;
                            }
                            cap *= 2;
                            outcome = CheckJob::new(&sys, &specs, options)
                                .with_budget(JobBudget::unlimited().with_max_states(cap))
                                .resume(checkpoint);
                        }
                        JobOutcome::Interrupted { .. } => {
                            panic!("seed {seed}: no cancel token was tripped")
                        }
                    }
                };

                for (spec, (a, b)) in specs.iter().zip(direct.iter().zip(&reference)) {
                    let ctx = format!(
                        "seed {seed}, {} at {workers} workers, cache {graph_cache}, direct job",
                        spec.name()
                    );
                    assert_job_outcome_identical(a, b, &ctx);
                }
                for (spec, (a, b)) in specs.iter().zip(resumed.iter().zip(&reference)) {
                    let ctx = format!(
                        "seed {seed}, {} at {workers} workers, cache {graph_cache}, resumed job",
                        spec.name()
                    );
                    assert_job_outcome_identical(a, b, &ctx);
                }
            }
        }
    }
    // the corpus must genuinely interrupt, and at least one checkpoint must
    // carry a suspended mid-build store (a wave-boundary trip, not just an
    // obligation-boundary trip)
    assert!(trips > 0, "no state cap ever tripped across the corpus");
    assert!(
        suspended_builds > 0,
        "no checkpoint ever carried a build in flight"
    );
}

/// Bit-identity of a job outcome against its uninterrupted reference.
fn assert_job_outcome_identical(
    a: &ccchecker::CheckOutcome,
    b: &ccchecker::CheckOutcome,
    ctx: &str,
) {
    assert_eq!(a.status, b.status, "verdict differs: {ctx}");
    assert_eq!(
        a.states_explored, b.states_explored,
        "state count differs: {ctx}"
    );
    assert_eq!(
        a.transitions_explored, b.transitions_explored,
        "transition count differs: {ctx}"
    );
    assert_eq!(a.detail, b.detail, "detail differs: {ctx}");
    match (&a.counterexample, &b.counterexample) {
        (None, None) => {}
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.initial, cb.initial, "initial differs: {ctx}");
            assert_eq!(
                ca.schedule.steps(),
                cb.schedule.steps(),
                "schedule differs: {ctx}"
            );
        }
        _ => panic!("counterexample presence differs: {ctx}"),
    }
}
