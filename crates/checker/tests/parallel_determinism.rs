//! Sequential-vs-parallel determinism of the in-check exploration.
//!
//! The explorer's contract (see `ccchecker::explorer`) is that the worker
//! and shard counts *never* change results: verdicts, state counts,
//! transition counts and counterexample schedules must be bit-identical to
//! the sequential run at 1, 2 and 4 workers, with any shard layout, and
//! under resource bounds.  These tests pin that contract on the fixtures
//! and on real benchmark protocols whose BFS levels are wide enough to
//! actually enter the parallel three-phase path.

use ccchecker::fixtures;
use ccchecker::{
    CheckOutcome, CheckStatus, CheckerOptions, ExplicitChecker, LocSet, Spec, StartRestriction,
};
use cccounter::CounterSystem;
use ccta::{BinValue, Owner, ParamValuation, SystemModel};

/// The catalogue of query shapes used for the determinism comparison.
fn spec_catalogue(model: &SystemModel) -> Vec<Spec> {
    let finals0 = LocSet::new(
        "F0",
        model.final_locations(Owner::Process, Some(BinValue::Zero)),
    );
    let finals1 = LocSet::new(
        "F1",
        model.final_locations(Owner::Process, Some(BinValue::One)),
    );
    vec![
        Spec::NeverFrom {
            name: "validity-style".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: finals1.clone(),
        },
        Spec::NeverFrom {
            name: "reachable-finals".into(),
            start: StartRestriction::RoundStart,
            forbidden: finals0.clone(),
        },
        Spec::CoverNever {
            name: "cover".into(),
            start: StartRestriction::RoundStart,
            trigger: finals0.clone(),
            forbidden: finals1.clone(),
        },
        Spec::ExistsAvoidOneOf {
            name: "C1-style".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![finals0.clone(), finals1.clone()],
        },
        Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        },
    ]
}

/// Asserts that two outcomes are observably identical: same verdict, same
/// cost counters, same counterexample (step for step).
fn assert_outcomes_identical(spec: &Spec, workers: usize, seq: &CheckOutcome, par: &CheckOutcome) {
    assert_eq!(
        par.status,
        seq.status,
        "verdict differs at {workers} workers on {}",
        spec.name()
    );
    assert_eq!(
        par.states_explored,
        seq.states_explored,
        "state count differs at {workers} workers on {}",
        spec.name()
    );
    assert_eq!(
        par.transitions_explored,
        seq.transitions_explored,
        "transition count differs at {workers} workers on {}",
        spec.name()
    );
    assert_eq!(
        par.detail,
        seq.detail,
        "detail differs at {workers} workers on {}",
        spec.name()
    );
    match (&seq.counterexample, &par.counterexample) {
        (None, None) => {}
        (Some(s), Some(p)) => {
            assert_eq!(
                s.initial,
                p.initial,
                "counterexample initial differs at {workers} workers on {}",
                spec.name()
            );
            assert_eq!(
                s.schedule.steps(),
                p.schedule.steps(),
                "counterexample schedule differs at {workers} workers on {}",
                spec.name()
            );
        }
        _ => panic!(
            "counterexample presence differs at {workers} workers on {}",
            spec.name()
        ),
    }
}

/// Checks the whole catalogue sequentially and at 1, 2 and 4 pooled
/// workers — with both derived and skewed shard counts, and across wave
/// sizes {1, 7, unbounded} — and requires identical outcomes.
fn assert_deterministic_over_workers(sys: &CounterSystem, options: CheckerOptions) {
    let model = sys.model();
    for spec in spec_catalogue(model) {
        let sequential = ExplicitChecker::with_options(sys, options.with_workers(1)).check(&spec);
        for workers in [2, 4] {
            for shards in [0, 2, 8] {
                let parallel = ExplicitChecker::with_options(
                    sys,
                    CheckerOptions {
                        workers,
                        shards,
                        ..options
                    },
                )
                .check(&spec);
                assert_outcomes_identical(&spec, workers, &sequential, &parallel);
            }
        }
        // the wave size bounds a parallel level's candidate buffers; like
        // the worker count it must never change results (a wave of 1 or 7
        // also lowers the parallel-entry threshold, so even narrow levels
        // exercise the pooled wave machinery)
        for workers in [1, 2, 4] {
            for wave_size in [1, 7, usize::MAX] {
                let waved = ExplicitChecker::with_options(
                    sys,
                    CheckerOptions {
                        workers,
                        wave_size,
                        ..options
                    },
                )
                .check(&spec);
                assert_outcomes_identical(&spec, workers, &sequential, &waved);
            }
        }
        // a replayable counterexample stays replayable in parallel mode
        if sequential.status == CheckStatus::Violated {
            let ce = sequential.counterexample.as_ref().unwrap();
            let path = ce.schedule.apply(sys, &ce.initial).expect("must replay");
            assert_eq!(path.len(), ce.schedule.len());
        }
    }
}

fn benchmark_system(name: &str) -> CounterSystem {
    let protocol = ccprotocols::protocol_by_name(name).expect("benchmark protocol");
    let model = protocol.single_round();
    let valuation = fixtures::benchmark_valuation(&model);
    CounterSystem::new(model, valuation).unwrap()
}

#[test]
fn fixture_checks_are_worker_count_independent() {
    let model = fixtures::voting_model().single_round().unwrap();
    let sys = CounterSystem::new(model, fixtures::small_params()).unwrap();
    assert_deterministic_over_workers(&sys, CheckerOptions::default());
}

#[test]
fn blocking_fixture_counterexample_is_worker_count_independent() {
    let model = fixtures::blocking_model().single_round().unwrap();
    let sys = CounterSystem::new(model, ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
    assert_deterministic_over_workers(&sys, CheckerOptions::default());
}

#[test]
fn rabin83_checks_are_worker_count_independent() {
    assert_deterministic_over_workers(&benchmark_system("Rabin83"), CheckerOptions::default());
}

#[test]
fn ks16_checks_are_worker_count_independent() {
    // KS16's levels are wide enough to drive the three-phase parallel path
    assert_deterministic_over_workers(&benchmark_system("KS16"), CheckerOptions::default());
}

#[test]
fn bounded_checks_are_worker_count_independent() {
    // budget bounds must trip at exactly the same replayed candidate at any
    // worker count, so even the Unknown cost counters have to match
    let sys = benchmark_system("Rabin83");
    for (max_states, max_transitions) in [(50, usize::MAX >> 1), (usize::MAX >> 1, 500), (200, 900)]
    {
        let options = CheckerOptions {
            max_states,
            max_transitions,
            ..CheckerOptions::default()
        };
        assert_deterministic_over_workers(&sys, options);
    }
}
