//! Engine equivalence: the packed-state engine must explore exactly the
//! state space that the pre-refactor reference engine explored.
//!
//! For every query shape, on the `voting_model`/`blocking_model` fixtures
//! and on *all eight* Table II benchmark protocols, both engines must agree
//! on
//!
//! * the verdict,
//! * the number of distinct states visited,
//! * the number of transitions explored, and
//! * (for violations) a counterexample that replays on the counter system
//!   via [`cccounter::Schedule::apply`].
//!
//! Because both engines run the same BFS in the same action order, the
//! counterexample schedules are required to be identical step for step.
//! The engine side runs with default options, so on a multi-core machine
//! this suite also exercises the parallel exploration path against the
//! strictly sequential reference.

use ccchecker::fixtures;
use ccchecker::reference::reference_check;
use ccchecker::{CheckStatus, CheckerOptions, ExplicitChecker, LocSet, Spec, StartRestriction};
use cccounter::CounterSystem;
use ccta::{BinValue, Owner, ParamValuation, SystemModel};

/// Checks one spec with both engines and asserts exact agreement.
fn assert_engines_agree(sys: &CounterSystem, spec: &Spec, options: CheckerOptions) -> CheckStatus {
    let engine = ExplicitChecker::with_options(sys, options).check(spec);
    let reference = reference_check(sys, spec, &options);

    assert_eq!(
        engine.status,
        reference.status,
        "verdicts differ on {}",
        spec.name()
    );
    assert_eq!(
        engine.states_explored,
        reference.states_explored,
        "state counts differ on {}",
        spec.name()
    );
    assert_eq!(
        engine.transitions_explored,
        reference.transitions_explored,
        "transition counts differ on {}",
        spec.name()
    );

    if engine.status == CheckStatus::Violated {
        let e = engine.counterexample.expect("engine counterexample");
        let r = reference.counterexample.expect("reference counterexample");
        assert_eq!(
            e.initial,
            r.initial,
            "initial configs differ on {}",
            spec.name()
        );
        assert_eq!(
            e.schedule.steps(),
            r.schedule.steps(),
            "counterexample schedules differ on {}",
            spec.name()
        );
        // the counterexample is a real execution of the counter system
        let path = e
            .schedule
            .apply(sys, &e.initial)
            .expect("counterexample must replay");
        assert_eq!(path.len(), e.schedule.len());
    }
    engine.status
}

/// The full catalogue of query shapes over a single-round model whose final
/// locations carry values.
fn spec_catalogue(model: &SystemModel) -> Vec<Spec> {
    let finals0 = LocSet::new(
        "F0",
        model.final_locations(Owner::Process, Some(BinValue::Zero)),
    );
    let finals1 = LocSet::new(
        "F1",
        model.final_locations(Owner::Process, Some(BinValue::One)),
    );
    vec![
        Spec::NeverFrom {
            name: "validity-style".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: finals1.clone(),
        },
        Spec::NeverFrom {
            name: "reachable-finals".into(),
            start: StartRestriction::RoundStart,
            forbidden: finals0.clone(),
        },
        Spec::CoverNever {
            name: "cover".into(),
            start: StartRestriction::RoundStart,
            trigger: finals0.clone(),
            forbidden: finals1.clone(),
        },
        Spec::ExistsAvoidOneOf {
            name: "C1-style".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![finals0.clone(), finals1.clone()],
        },
        Spec::ExistsAvoidOneOf {
            name: "avoid-one".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![finals0],
        },
        Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        },
    ]
}

#[test]
fn engines_agree_on_the_voting_fixture() {
    let model = fixtures::voting_model().single_round().unwrap();
    let sys = CounterSystem::new(model.clone(), fixtures::small_params()).unwrap();
    let mut statuses = Vec::new();
    for spec in spec_catalogue(&model) {
        statuses.push(assert_engines_agree(&sys, &spec, CheckerOptions::default()));
    }
    // the catalogue exercises both verdicts
    assert!(statuses.contains(&CheckStatus::Holds));
    assert!(statuses.contains(&CheckStatus::Violated));
}

#[test]
fn engines_agree_on_the_blocking_fixture() {
    let model = fixtures::blocking_model().single_round().unwrap();
    let sys = CounterSystem::new(model.clone(), ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
    let spec = Spec::NonBlocking {
        name: "termination".into(),
        start: StartRestriction::RoundStart,
    };
    assert_eq!(
        assert_engines_agree(&sys, &spec, CheckerOptions::default()),
        CheckStatus::Violated
    );
}

/// Runs the whole query catalogue on one benchmark protocol with both
/// engines, at the default (never-tripped) resource budgets.
fn assert_protocol_equivalence(name: &str) {
    let protocol = ccprotocols::protocol_by_name(name).expect("benchmark protocol");
    let model = protocol.single_round();
    let sys = CounterSystem::new(model.clone(), fixtures::benchmark_valuation(&model)).unwrap();
    let mut checked = 0;
    for spec in spec_catalogue(&model) {
        assert_engines_agree(&sys, &spec, CheckerOptions::default());
        checked += 1;
    }
    assert_eq!(checked, 6);
}

#[test]
fn engines_agree_on_rabin83() {
    assert_protocol_equivalence("Rabin83");
}

#[test]
fn engines_agree_on_cc85a() {
    assert_protocol_equivalence("CC85(a)");
}

#[test]
fn engines_agree_on_cc85b() {
    assert_protocol_equivalence("CC85(b)");
}

#[test]
fn engines_agree_on_fmr05() {
    assert_protocol_equivalence("FMR05");
}

#[test]
fn engines_agree_on_ks16() {
    assert_protocol_equivalence("KS16");
}

#[test]
fn engines_agree_on_mmr14() {
    assert_protocol_equivalence("MMR14");
}

#[test]
fn engines_agree_on_miller18() {
    assert_protocol_equivalence("Miller18");
}

#[test]
fn engines_agree_on_aby22() {
    assert_protocol_equivalence("ABY22");
}

#[test]
fn engines_agree_on_bounded_searches() {
    // resource-bounded runs must produce Unknown on both engines
    let model = fixtures::voting_model().single_round().unwrap();
    let sys = CounterSystem::new(model.clone(), fixtures::small_params()).unwrap();
    let options = CheckerOptions {
        max_states: 50,
        max_transitions: 10_000,
        ..CheckerOptions::default()
    };
    let spec = Spec::NeverFrom {
        name: "bounded".into(),
        start: StartRestriction::Unanimous(BinValue::Zero),
        forbidden: LocSet::from_names(&model, "I1", &["I1"]),
    };
    let engine = ExplicitChecker::with_options(&sys, options).check(&spec);
    let reference = reference_check(&sys, &spec, &options);
    assert_eq!(engine.status, CheckStatus::Unknown);
    assert_eq!(reference.status, CheckStatus::Unknown);
    // the engines agree on the reported exploration size even at the bound
    assert_eq!(engine.states_explored, reference.states_explored);
    assert_eq!(engine.transitions_explored, reference.transitions_explored);
}
