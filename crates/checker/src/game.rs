//! Qualitative game solving for the probabilistic sufficient conditions.
//!
//! Lemma 2 of the paper reduces a positive-probability lower bound over all
//! round-rigid adversaries to the non-probabilistic statement
//! `∀ adversary ∃ path. φ` on the single-round system.  For the safety-shaped
//! `φ` used by conditions `C1` and `C2'` (`⋁ᵢ G ¬EX{Sᵢ}`), this is a
//! two-player reachability game:
//!
//! * the **adversary** chooses which applicable action fires next and tries
//!   to drive *every* probabilistic resolution into occupying all the sets
//!   `Sᵢ` (thereby refuting `φ` on all paths);
//! * the **coin** resolves the branches of non-Dirac rules and tries to keep
//!   at least one set unoccupied forever.
//!
//! The condition holds iff the adversary has no winning strategy from any
//! start configuration.  On the finite single-round graph this is decided by
//! a standard attractor computation.
//!
//! The forward game-graph construction is a [`Visitor`] over the generic
//! [`crate::explorer::Explorer`] driver — the same engine (and the same
//! deterministic in-check parallelism) as the explicit checker —
//! accumulating the game graph in flat CSR arenas as the driver replays
//! edges in discovery order.  The backward attractor pass then runs an
//! O(edges) worklist over those arenas.

use crate::counterexample::Counterexample;
use crate::explorer::{resolved_workers, row_occupancy_bits, Exploration, Explorer, Visitor};
use crate::job::{InterruptKind, JobSignals};
use crate::pool::WorkerPool;
use crate::result::CheckOutcome;
use crate::spec::LocSet;
use crate::store::StoreStats;
use crate::CheckerOptions;
use cccounter::{Action, Configuration, CounterSystem, Schedule, ScheduledStep};

/// An explored game (or reachability) graph in flat CSR form: every node
/// owns a span of actions, every action owns a span of edges
/// (`(scheduled step, successor)` per branch).  Nodes are expanded in
/// discovery order, so all three arenas are append-only — no per-node or
/// per-action `Vec` allocation.
///
/// `node_spans` is indexed by the store's node ids; with a sharded store
/// those interleave the shard tag, so the array is grown on demand (ids stay
/// near-dense as long as the shards stay balanced) and unexpanded nodes
/// read back an empty span.  The graph-cache evaluation passes
/// ([`crate::graph`]) reuse the same arenas, both for the cached
/// reachability graph itself and for the product game graphs derived from
/// it.
#[derive(Default)]
pub(crate) struct GameGraph {
    /// Per node: `(start, end)` span into `action_nodes`/`action_spans`.
    pub(crate) node_spans: Vec<(u32, u32)>,
    /// Per action: the node it belongs to.
    pub(crate) action_nodes: Vec<u32>,
    /// Per action: `(start, end)` span into `edge_list`.
    pub(crate) action_spans: Vec<(u32, u32)>,
    /// All edges, back to back.
    pub(crate) edge_list: Vec<(ScheduledStep, u32)>,
}

impl GameGraph {
    /// The actions of a node, as indices into the action arenas.
    pub(crate) fn actions_of(&self, node: u32) -> std::ops::Range<usize> {
        let (start, end) = self
            .node_spans
            .get(node as usize)
            .copied()
            .unwrap_or((0, 0));
        start as usize..end as usize
    }

    /// The edges of an action.
    pub(crate) fn edges_of(&self, action: usize) -> &[(ScheduledStep, u32)] {
        let (start, end) = self.action_spans[action];
        &self.edge_list[start as usize..end as usize]
    }

    /// Resident bytes of the CSR arenas (node spans, action table, edges).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.node_spans.len() * std::mem::size_of::<(u32, u32)>()
            + self.action_nodes.len() * std::mem::size_of::<u32>()
            + self.action_spans.len() * std::mem::size_of::<(u32, u32)>()
            + self.edge_list.len() * std::mem::size_of::<(ScheduledStep, u32)>()
    }
}

/// Appends explorer callbacks to a [`GameGraph`]'s CSR arenas in discovery
/// order.  Shared by [`GameVisitor`] and the graph-cache build visitor of
/// [`crate::graph`], which record exactly the same shape.
///
/// The arenas are append-only, but a *node's* span may be re-recorded: a
/// later `begin_node … end_node` bracket for an already-recorded node
/// appends the fresh action/edge runs and repoints the node's span at them,
/// leaving the old runs as unreferenced garbage.  This is the CSR append
/// mode of the incremental sweep ([`CsrRecorder::resume`]): re-expanding a
/// node whose guard set grew replaces its span with the full new action
/// list, so readers never see a half-updated node.
#[derive(Default)]
pub(crate) struct CsrRecorder {
    pub(crate) graph: GameGraph,
    actions_start: u32,
    edges_start: u32,
}

impl CsrRecorder {
    /// A recorder appending to an existing graph (the incremental sweep's
    /// extension pass); a `Default` recorder starts a fresh graph.
    pub(crate) fn resume(graph: GameGraph) -> Self {
        CsrRecorder {
            actions_start: graph.action_spans.len() as u32,
            edges_start: graph.edge_list.len() as u32,
            graph,
        }
    }

    pub(crate) fn begin_node(&mut self) {
        self.actions_start = self.graph.action_spans.len() as u32;
    }

    pub(crate) fn begin_action(&mut self) {
        self.edges_start = self.graph.edge_list.len() as u32;
    }

    pub(crate) fn edge(&mut self, step: ScheduledStep, to: u32) {
        self.graph.edge_list.push((step, to));
    }

    pub(crate) fn end_action(&mut self, node: u32) {
        self.graph.action_nodes.push(node);
        self.graph
            .action_spans
            .push((self.edges_start, self.graph.edge_list.len() as u32));
    }

    pub(crate) fn end_node(&mut self, node: u32) {
        if self.graph.node_spans.len() <= node as usize {
            self.graph.node_spans.resize(node as usize + 1, (0, 0));
        }
        self.graph.node_spans[node as usize] =
            (self.actions_start, self.graph.action_spans.len() as u32);
    }
}

/// The game-graph construction visitor: records every explored edge in CSR
/// form and stops expanding nodes that are already losing for the coin.
struct GameVisitor<'s> {
    sets: &'s [LocSet],
    all_bits: u8,
    csr: CsrRecorder,
    start_ids: Vec<u32>,
}

impl Visitor for GameVisitor<'_> {
    fn successor_bits(&self, parent_bits: u8, row: &[u8]) -> u8 {
        parent_bits | row_occupancy_bits(self.sets, row)
    }

    fn should_expand(&self, bits: u8) -> bool {
        // already losing for the coin; no need to expand further
        bits != self.all_bits
    }

    fn start_node(&mut self, node: u32, _bits: u8, _fresh: bool) -> bool {
        self.start_ids.push(node);
        false
    }

    fn begin_node(&mut self, _node: u32) {
        self.csr.begin_node();
    }

    fn begin_action(&mut self, _node: u32, _action: Action) {
        self.csr.begin_action();
    }

    fn edge(
        &mut self,
        _from: u32,
        step: ScheduledStep,
        to: u32,
        _to_bits: u8,
        _fresh: bool,
    ) -> bool {
        self.csr.edge(step, to);
        false
    }

    fn end_action(&mut self, node: u32, _action: Action) {
        self.csr.end_action(node);
    }

    fn end_node(&mut self, node: u32) {
        self.csr.end_node(node);
    }
}

/// Checks `∀ adversary ∃ path. ⋁ᵢ G ¬EX{setsᵢ}` from the given start
/// configurations.
pub fn check_exists_avoid(
    sys: &CounterSystem,
    spec_name: &str,
    starts: &[Configuration],
    sets: &[LocSet],
    options: &CheckerOptions,
) -> CheckOutcome {
    let pool = WorkerPool::new(resolved_workers(options));
    check_exists_avoid_impl(
        sys,
        spec_name,
        starts,
        sets,
        options,
        &pool,
        false,
        None,
        (0, 0, 0),
    )
    .0
}

/// [`check_exists_avoid`] with a caller-owned worker pool, optional store
/// occupancy statistics, and optional job signals (polled by the forward
/// exploration like every other search; `base` is the job's counter
/// baseline).
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_exists_avoid_impl(
    sys: &CounterSystem,
    spec_name: &str,
    starts: &[Configuration],
    sets: &[LocSet],
    options: &CheckerOptions,
    pool: &WorkerPool,
    want_stats: bool,
    signals: Option<&JobSignals>,
    base: (usize, usize, usize),
) -> (CheckOutcome, StoreStats) {
    assert!(
        !sets.is_empty() && sets.len() <= 8,
        "between 1 and 8 tracked location sets are supported"
    );
    let all_bits: u8 = ((1u16 << sets.len()) - 1) as u8;

    // ---------------- forward exploration of the game graph ----------------
    let mut explorer = Explorer::new(sys, options, pool).with_signals(signals, base);
    let mut visitor = GameVisitor {
        sets,
        all_bits,
        csr: CsrRecorder::default(),
        start_ids: Vec::new(),
    };
    let exploration = explorer.run(starts, &mut visitor);
    let stats = if want_stats {
        explorer.store().stats()
    } else {
        StoreStats::default()
    };
    match exploration {
        Exploration::Complete => {}
        Exploration::TransitionBound => {
            return (
                CheckOutcome::unknown(
                    explorer.states(),
                    explorer.transitions(),
                    "transition bound exhausted",
                ),
                stats,
            )
        }
        // match the reference, which stops before storing the over-budget
        // state
        Exploration::StateBound => {
            return (
                CheckOutcome::unknown(
                    explorer.states() - 1,
                    explorer.transitions(),
                    "state bound exhausted",
                ),
                stats,
            )
        }
        // a per-spec game search is not checkpointed: the suspended
        // frontier is dropped and the search redone from scratch on resume
        Exploration::Interrupted => {
            let kind = explorer
                .take_suspended()
                .map(|s| s.kind)
                .unwrap_or(InterruptKind::Cancelled);
            return (
                CheckOutcome::interrupted(explorer.states(), explorer.transitions(), kind),
                stats,
            );
        }
        Exploration::Violation(_) => unreachable!("the game visitor never reports violations"),
    }

    let store = explorer.store();
    let graph = &visitor.csr.graph;
    let (states, transitions) = (explorer.states(), explorer.transitions());

    // backward attractor: seed with the nodes already losing for the coin
    let id_bound = store.id_bound();
    let seeds: Vec<u32> = store
        .ids()
        .filter(|&id| store.bits(id) == all_bits)
        .collect();
    let winning = adversary_winning(graph, id_bound, seeds);

    let outcome = match visitor.start_ids.iter().find(|&&s| winning[s as usize]) {
        None => CheckOutcome::holds(states, transitions),
        Some(&bad_start) => {
            let schedule = extract_strategy_path(
                graph,
                &winning,
                bad_start,
                all_bits,
                |id| store.bits(id),
                store.len(),
            );
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: sys.params().clone(),
                initial: store.decode(bad_start),
                schedule,
                explanation: format!(
                    "an adversary can force every coin resolution to occupy all of: {}",
                    sets.iter()
                        .map(|s| s.name().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            CheckOutcome::violated(states, transitions, ce)
        }
    };
    (outcome, stats)
}

/// The adversary attractor over a game graph in CSR form.
///
/// `winning[i] = true` iff the adversary can force all probabilistic
/// resolutions from node `i` into a node of `seeds` (the states already
/// losing for the coin).  Computed with a worklist in O(edges):
/// `pending[a]` counts the not-yet-winning successors of action `a`; an
/// action whose count reaches zero forces its node.  `id_bound` is an
/// exclusive upper bound on the node ids appearing in the graph and the
/// seeds.  Shared by the direct game search above and the graph-cache
/// product game of [`crate::graph`].
pub(crate) fn adversary_winning(graph: &GameGraph, id_bound: usize, seeds: Vec<u32>) -> Vec<bool> {
    let mut winning: Vec<bool> = vec![false; id_bound];
    let mut worklist = seeds;
    for &s in &worklist {
        winning[s as usize] = true;
    }
    // flat predecessor arena, one entry per edge (duplicates intended: an
    // action with two branches into the same successor must decrement
    // twice), built with a two-pass counting sort
    let mut pred_offsets: Vec<u32> = vec![0; id_bound + 1];
    for &(_, succ) in &graph.edge_list {
        pred_offsets[succ as usize + 1] += 1;
    }
    for i in 0..id_bound {
        pred_offsets[i + 1] += pred_offsets[i];
    }
    let mut pred_actions: Vec<u32> = vec![0; graph.edge_list.len()];
    let mut fill = pred_offsets.clone();
    let mut pending: Vec<u32> = Vec::with_capacity(graph.action_spans.len());
    for (a, &(start, end)) in graph.action_spans.iter().enumerate() {
        pending.push(end - start);
        for &(_, succ) in &graph.edge_list[start as usize..end as usize] {
            let slot = &mut fill[succ as usize];
            pred_actions[*slot as usize] = a as u32;
            *slot += 1;
        }
    }
    while let Some(w) = worklist.pop() {
        let span = pred_offsets[w as usize] as usize..pred_offsets[w as usize + 1] as usize;
        for &action in &pred_actions[span] {
            let count = &mut pending[action as usize];
            *count -= 1;
            // an action with no branches never forces (empty spans start at
            // zero and are never decremented)
            if *count == 0 {
                let node = graph.action_nodes[action as usize] as usize;
                if !winning[node] {
                    winning[node] = true;
                    worklist.push(node as u32);
                }
            }
        }
    }
    winning
}

/// Follows the adversary's winning strategy (taking the first branch at every
/// probabilistic choice) until every tracked set has been occupied, returning
/// the corresponding schedule as a sample violating execution.  `bits_of`
/// reads a node's cumulative monitor bits and `node_count` bounds the walk;
/// the graph-cache product game reuses this with product-node bits.
pub(crate) fn extract_strategy_path(
    graph: &GameGraph,
    winning: &[bool],
    start: u32,
    all_bits: u8,
    bits_of: impl Fn(u32) -> u8,
    node_count: usize,
) -> Schedule {
    let mut steps = Vec::new();
    let mut current = start;
    let mut guard = 0usize;
    while bits_of(current) != all_bits && guard < node_count + 1 {
        guard += 1;
        let Some(edges) = graph
            .actions_of(current)
            .map(|a| graph.edges_of(a))
            .find(|e| !e.is_empty() && e.iter().all(|&(_, succ)| winning[succ as usize]))
        else {
            break;
        };
        let (step, succ) = edges[0];
        steps.push(step);
        current = succ;
    }
    Schedule::from_steps(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{Spec, StartRestriction};
    use crate::ExplicitChecker;
    use ccta::BinValue;

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    #[test]
    fn c1_style_condition_holds_for_the_voting_fixture() {
        // C1: under every adversary there is a coin resolution after which
        // all correct processes end the round with the same value, i.e. at
        // least one of E0 / E1 stays unoccupied.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::ExistsAvoidOneOf {
            name: "C1".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![
                LocSet::from_names(sys.model(), "F0", &["E0"]),
                LocSet::from_names(sys.model(), "F1", &["E1"]),
            ],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
        assert!(outcome.states_explored > 10);
    }

    #[test]
    fn c2_style_condition_holds_from_unanimous_starts() {
        // From a unanimous-0 start there is always a resolution avoiding E1.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::ExistsAvoidOneOf {
            name: "C2'".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![LocSet::from_names(sys.model(), "F1", &["E1"])],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn impossible_avoidance_is_refuted_with_a_strategy() {
        // Requiring that the border copies are never occupied is hopeless:
        // every fair execution parks processes there, so the adversary wins.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::ExistsAvoidOneOf {
            name: "impossible".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![LocSet::from_names(
                sys.model(),
                "copies",
                &["J0'", "J1'", "JC'"],
            )],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        // the extracted strategy path indeed reaches an occupied border copy
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let j0c = sys.model().location_id("J0'").unwrap();
        let j1c = sys.model().location_id("J1'").unwrap();
        let jcc = sys.model().location_id("JC'").unwrap();
        assert!(path.visits(|c| {
            c.counter(j0c, 0) > 0 || c.counter(j1c, 0) > 0 || c.counter(jcc, 0) > 0
        }));
    }

    #[test]
    fn avoidance_violated_when_adversary_controls_split_rounds() {
        // With a 2/1 split the adversary can drive two processes into E0 via
        // the majority rule and the remaining process into E1 once the coin
        // lands 1 — but if the coin lands 0 the third process can only reach
        // E0.  Hence the adversary cannot force both E0 and E1 on *all*
        // resolutions and C1 still holds; this test documents that the game
        // result depends on the coin's freedom by removing one of the sets.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        // Forcing occupation of E0 alone is easy for the adversary from a
        // unanimous-0 start (majority of 0s), so avoidance of {E0} fails.
        let spec = Spec::ExistsAvoidOneOf {
            name: "avoid-E0".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![LocSet::from_names(sys.model(), "F0", &["E0"])],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
    }

    #[test]
    #[should_panic(expected = "between 1 and 8")]
    fn empty_set_family_is_rejected() {
        let sys = sys();
        let starts = sys.round_start_configurations();
        let _ = check_exists_avoid(&sys, "bad", &starts, &[], &CheckerOptions::default());
    }
}
