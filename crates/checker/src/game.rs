//! Qualitative game solving for the probabilistic sufficient conditions.
//!
//! Lemma 2 of the paper reduces a positive-probability lower bound over all
//! round-rigid adversaries to the non-probabilistic statement
//! `∀ adversary ∃ path. φ` on the single-round system.  For the safety-shaped
//! `φ` used by conditions `C1` and `C2'` (`⋁ᵢ G ¬EX{Sᵢ}`), this is a
//! two-player reachability game:
//!
//! * the **adversary** chooses which applicable action fires next and tries
//!   to drive *every* probabilistic resolution into occupying all the sets
//!   `Sᵢ` (thereby refuting `φ` on all paths);
//! * the **coin** resolves the branches of non-Dirac rules and tries to keep
//!   at least one set unoccupied forever.
//!
//! The condition holds iff the adversary has no winning strategy from any
//! start configuration.  On the finite single-round graph this is decided by
//! a standard attractor computation.

use crate::counterexample::Counterexample;
use crate::result::CheckOutcome;
use crate::spec::LocSet;
use crate::CheckerOptions;
use cccounter::{Configuration, CounterSystem, Schedule, ScheduledStep};
use std::collections::HashMap;

struct GameNode {
    config: Configuration,
    bits: u8,
    /// For each applicable progress action: the outgoing edges
    /// (scheduled step, successor node index), one per branch.
    actions: Vec<Vec<(ScheduledStep, usize)>>,
}

/// Checks `∀ adversary ∃ path. ⋁ᵢ G ¬EX{setsᵢ}` from the given start
/// configurations.
pub fn check_exists_avoid(
    sys: &CounterSystem,
    spec_name: &str,
    starts: &[Configuration],
    sets: &[LocSet],
    options: &CheckerOptions,
) -> CheckOutcome {
    assert!(
        !sets.is_empty() && sets.len() <= 8,
        "between 1 and 8 tracked location sets are supported"
    );
    let all_bits: u8 = ((1u16 << sets.len()) - 1) as u8;

    // ---------------- forward exploration of the game graph ----------------
    let mut index: HashMap<(Vec<u8>, u8), usize> = HashMap::new();
    let mut nodes: Vec<GameNode> = Vec::new();
    let mut start_ids = Vec::new();
    let mut transitions = 0usize;

    let occupancy = |cfg: &Configuration| -> u8 {
        let mut bits = 0u8;
        for (i, set) in sets.iter().enumerate() {
            if set.is_occupied(cfg) {
                bits |= 1 << i;
            }
        }
        bits
    };

    let mut queue: Vec<usize> = Vec::new();
    for cfg in starts {
        let bits = occupancy(cfg);
        let key = (cfg.fingerprint_bytes(), bits);
        let id = *index.entry(key).or_insert_with(|| {
            nodes.push(GameNode {
                config: cfg.clone(),
                bits,
                actions: Vec::new(),
            });
            queue.push(nodes.len() - 1);
            nodes.len() - 1
        });
        start_ids.push(id);
    }

    let mut head = 0usize;
    while head < queue.len() {
        let current = queue[head];
        head += 1;
        let cfg = nodes[current].config.clone();
        let bits = nodes[current].bits;
        if bits == all_bits {
            // already losing for the coin; no need to expand further
            continue;
        }
        let mut action_edges = Vec::new();
        for action in sys.progress_actions(&cfg) {
            let outcomes = sys
                .outcomes(&cfg, action)
                .expect("progress actions are applicable");
            let mut edges = Vec::with_capacity(outcomes.len());
            for outcome in outcomes {
                transitions += 1;
                if transitions > options.max_transitions {
                    return CheckOutcome::unknown(
                        nodes.len(),
                        transitions,
                        "transition bound exhausted",
                    );
                }
                let new_bits = bits | occupancy(&outcome.config);
                let key = (outcome.config.fingerprint_bytes(), new_bits);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        if nodes.len() >= options.max_states {
                            return CheckOutcome::unknown(
                                nodes.len(),
                                transitions,
                                "state bound exhausted",
                            );
                        }
                        nodes.push(GameNode {
                            config: outcome.config.clone(),
                            bits: new_bits,
                            actions: Vec::new(),
                        });
                        index.insert(key, nodes.len() - 1);
                        queue.push(nodes.len() - 1);
                        nodes.len() - 1
                    }
                };
                edges.push((ScheduledStep::with_branch(action, outcome.branch), id));
            }
            action_edges.push(edges);
        }
        nodes[current].actions = action_edges;
    }

    // ---------------- backward attractor for the adversary ----------------
    // winning[i] = the adversary can force all resolutions from node i to a
    // node whose bits cover every tracked set.
    let mut winning: Vec<bool> = nodes.iter().map(|n| n.bits == all_bits).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..nodes.len() {
            if winning[i] {
                continue;
            }
            let can_force = nodes[i]
                .actions
                .iter()
                .any(|edges| !edges.is_empty() && edges.iter().all(|&(_, succ)| winning[succ]));
            if can_force {
                winning[i] = true;
                changed = true;
            }
        }
    }

    match start_ids.iter().find(|&&s| winning[s]) {
        None => CheckOutcome::holds(nodes.len(), transitions),
        Some(&bad_start) => {
            let schedule = extract_strategy_path(&nodes, &winning, bad_start, all_bits);
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: sys.params().clone(),
                initial: nodes[bad_start].config.clone(),
                schedule,
                explanation: format!(
                    "an adversary can force every coin resolution to occupy all of: {}",
                    sets.iter()
                        .map(|s| s.name().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            CheckOutcome::violated(nodes.len(), transitions, ce)
        }
    }
}

/// Follows the adversary's winning strategy (taking the first branch at every
/// probabilistic choice) until every tracked set has been occupied, returning
/// the corresponding schedule as a sample violating execution.
fn extract_strategy_path(
    nodes: &[GameNode],
    winning: &[bool],
    start: usize,
    all_bits: u8,
) -> Schedule {
    let mut steps = Vec::new();
    let mut current = start;
    let mut guard = 0usize;
    while nodes[current].bits != all_bits && guard < nodes.len() + 1 {
        guard += 1;
        let Some(edges) = nodes[current]
            .actions
            .iter()
            .find(|edges| !edges.is_empty() && edges.iter().all(|&(_, succ)| winning[succ]))
        else {
            break;
        };
        let (step, succ) = edges[0];
        steps.push(step);
        current = succ;
    }
    Schedule::from_steps(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{Spec, StartRestriction};
    use crate::ExplicitChecker;
    use ccta::BinValue;

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    #[test]
    fn c1_style_condition_holds_for_the_voting_fixture() {
        // C1: under every adversary there is a coin resolution after which
        // all correct processes end the round with the same value, i.e. at
        // least one of E0 / E1 stays unoccupied.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::ExistsAvoidOneOf {
            name: "C1".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![
                LocSet::from_names(sys.model(), "F0", &["E0"]),
                LocSet::from_names(sys.model(), "F1", &["E1"]),
            ],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
        assert!(outcome.states_explored > 10);
    }

    #[test]
    fn c2_style_condition_holds_from_unanimous_starts() {
        // From a unanimous-0 start there is always a resolution avoiding E1.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::ExistsAvoidOneOf {
            name: "C2'".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![LocSet::from_names(sys.model(), "F1", &["E1"])],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn impossible_avoidance_is_refuted_with_a_strategy() {
        // Requiring that the border copies are never occupied is hopeless:
        // every fair execution parks processes there, so the adversary wins.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::ExistsAvoidOneOf {
            name: "impossible".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![LocSet::from_names(
                sys.model(),
                "copies",
                &["J0'", "J1'", "JC'"],
            )],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        // the extracted strategy path indeed reaches an occupied border copy
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let j0c = sys.model().location_id("J0'").unwrap();
        let j1c = sys.model().location_id("J1'").unwrap();
        let jcc = sys.model().location_id("JC'").unwrap();
        assert!(path.visits(|c| {
            c.counter(j0c, 0) > 0 || c.counter(j1c, 0) > 0 || c.counter(jcc, 0) > 0
        }));
    }

    #[test]
    fn avoidance_violated_when_adversary_controls_split_rounds() {
        // With a 2/1 split the adversary can drive two processes into E0 via
        // the majority rule and the remaining process into E1 once the coin
        // lands 1 — but if the coin lands 0 the third process can only reach
        // E0.  Hence the adversary cannot force both E0 and E1 on *all*
        // resolutions and C1 still holds; this test documents that the game
        // result depends on the coin's freedom by removing one of the sets.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        // Forcing occupation of E0 alone is easy for the adversary from a
        // unanimous-0 start (majority of 0s), so avoidance of {E0} fails.
        let spec = Spec::ExistsAvoidOneOf {
            name: "avoid-E0".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden_sets: vec![LocSet::from_names(sys.model(), "F0", &["E0"])],
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
    }

    #[test]
    #[should_panic(expected = "between 1 and 8")]
    fn empty_set_family_is_rejected() {
        let sys = sys();
        let starts = sys.round_start_configurations();
        let _ = check_exists_avoid(
            &sys,
            "bad",
            &starts,
            &[],
            &CheckerOptions::default(),
        );
    }
}
