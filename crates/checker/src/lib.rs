//! Checking the single-round queries of the verification approach.
//!
//! The paper reduces Agreement, Validity and Almost-sure Termination of a
//! randomized consensus protocol with a common coin to a catalogue of
//! single-round queries on the non-probabilistic threshold automaton
//! (`Inv1`, `Inv2`, `C1`, `C2`, `C2'`, `CB0`–`CB4`) and discharges them with
//! ByMC.  This crate is the ByMC substitute of the reproduction:
//!
//! * [`spec`] — the query catalogue (Table III of the paper) expressed over
//!   location sets.
//! * [`explicit`] — an explicit-state checker that verifies the universal
//!   (safety-shaped) queries on the single-round counter system for a
//!   concrete admissible parameter valuation, with counterexample extraction.
//! * [`game`] — a qualitative game solver for the probabilistic conditions
//!   `C1` and `C2'`, which by Lemma 2 reduce to `∀ adversary ∃ path`
//!   queries; the adversary controls scheduling, the coin controls
//!   probabilistic branching.
//! * [`schema`] — milestone extraction and the schema-count cost metric
//!   (the `nschemas` columns of Tables II and IV).
//! * [`sweep`] — checking a query across a sweep of admissible parameter
//!   valuations, which is the bounded-parameter substitute for ByMC's fully
//!   parameterized reasoning.

pub mod counterexample;
pub mod explicit;
pub mod game;
pub mod result;
pub mod schema;
pub mod spec;
pub mod sweep;

#[cfg(test)]
pub(crate) mod fixtures;

pub use counterexample::Counterexample;
pub use explicit::{CheckerOptions, ExplicitChecker};
pub use result::{CheckOutcome, CheckStatus};
pub use schema::{
    count_linear_extensions, max_schema_count, milestone_precedence, milestones, schema_count,
    Milestone,
};
pub use spec::{LocSet, Spec, StartRestriction};
pub use sweep::{check_over_sweep, SweepOutcome, SweepReport};
