//! Checking the single-round queries of the verification approach.
//!
//! The paper reduces Agreement, Validity and Almost-sure Termination of a
//! randomized consensus protocol with a common coin to a catalogue of
//! single-round queries on the non-probabilistic threshold automaton
//! (`Inv1`, `Inv2`, `C1`, `C2`, `C2'`, `CB0`–`CB4`) and discharges them with
//! ByMC.  This crate is the ByMC substitute of the reproduction:
//!
//! * [`spec`] — the query catalogue (Table III of the paper) expressed over
//!   location sets.
//! * [`explicit`] — an explicit-state checker that verifies the universal
//!   (safety-shaped) queries on the single-round counter system for a
//!   concrete admissible parameter valuation, with counterexample
//!   extraction.
//! * [`game`] — a qualitative game solver for the probabilistic conditions
//!   `C1` and `C2'`, which by Lemma 2 reduce to `∀ adversary ∃ path`
//!   queries; the adversary controls scheduling, the coin controls
//!   probabilistic branching.
//! * [`schema`] — milestone extraction and the schema-count cost metric
//!   (the `nschemas` columns of Tables II and IV).
//! * [`sweep`] — checking a query across a sweep of admissible parameter
//!   valuations, which is the bounded-parameter substitute for ByMC's fully
//!   parameterized reasoning.
//!
//! # Engine architecture: one driver, three visitors
//!
//! The paper's headline results are wall-clock checking times, so this crate
//! treats exploration throughput as part of the reproduced artifact.  All
//! three searches — the monitored BFS and the non-blocking check of
//! [`explicit`], and the game-graph construction of [`game`] — are *visitors*
//! over a single generic driver, [`explorer::Explorer`], which owns the
//! expand → intern → frontier cycle:
//!
//! * **Packed state rows** ([`store::StateStore`]) — a single-round state
//!   is one fixed-stride byte row (`locations ++ variables`,
//!   [`cccounter::RowEngine`]); visited rows live back to back in
//!   contiguous arenas, deduplicated through flat open-addressing indexes
//!   keyed by an incrementally-maintained Zobrist hash.  A duplicate
//!   lookup is one probe plus a `memcmp` — no allocation, no re-hashing;
//!   full configurations are decoded back only for counterexample
//!   reconstruction.
//! * **Delta expansion** ([`cccounter::RowEngine::for_each_successor`]) —
//!   successors are produced by applying and undoing per-rule byte deltas
//!   in place on a scratch row, updating the state hash in O(1) per delta;
//!   guards evaluate straight off the row with their parameter bounds
//!   pre-evaluated at system construction.
//! * **Deterministic in-check parallelism** ([`explorer`]) — the store is
//!   sharded by hash prefix and the driver explores level-synchronously in
//!   bounded waves: worker threads expand wave chunks and intern into
//!   disjoint shards lock-free, and a cheap sequential replay in the
//!   deterministic global candidate order re-applies budgets and visitor
//!   hooks.  Verdicts, state counts, transition counts and counterexample
//!   schedules are bit-identical at every worker count, shard count and
//!   wave size.
//! * **Two-level parallel sweep** ([`sweep::check_over_sweep`]) — the
//!   `query × valuation` grid fans out over a scoped worker pool, and the
//!   thread budget left over after covering the grid is handed to the
//!   in-check workers of each cell.  Reports are deterministic; cells
//!   cancelled after an earlier violation appear as explicit skipped
//!   outcomes.
//!
//! # Graph cache: explore once, evaluate many
//!
//! The Table II catalogue runs ~10 obligations per valuation, and each
//! obligation's search walks substantially the same reachable configuration
//! graph — only the observation differs.  Batched entry points
//! ([`ExplicitChecker::check_all`], the sweep, and `cccore`'s
//! `verify_protocol`) therefore share a **reachability-graph cache**
//! ([`graph`]):
//!
//! * **Grouping key.**  One cached graph per
//!   `(start restriction, valuation)` group.  A checker is bound to one
//!   counter system (one valuation), so its per-checker memo is keyed by
//!   the [`StartRestriction`] alone; the sweep builds one checker per
//!   valuation and runs its whole spec slice through it.  The enumerated
//!   start configurations are memoised the same way (and shared with the
//!   per-spec path).
//! * **Build.**  The first obligation of a group pays one monitor-free
//!   exploration: the generic [`explorer::Explorer`] run (with the same
//!   deterministic in-check parallelism) interns every reachable
//!   configuration and records the full transition relation in flat CSR
//!   arenas — the same machinery the game solver uses.  Every further
//!   obligation of the group is an `O(states + edges)` analysis pass:
//!   a sticky monitor-bit product BFS for `CoverNever`/`NeverFrom` (tracked
//!   location sets precompiled to per-row byte masks), the product game
//!   plus the shared worklist attractor for `ExistsAvoidOneOf`, and a
//!   terminal/blocking scan for `NonBlocking`.  Counterexamples are
//!   reconstructed from cached edges and remain genuinely replayable.
//! * **Memory model.**  A cached graph holds the deduplicated
//!   [`StateStore`] rows plus one CSR edge list of the group's full
//!   transition relation; graphs live as long as their checker (one
//!   `check_all` call, or one valuation batch of a sweep).  The monitored
//!   analysis passes allocate O(states × 2^sets) product bookkeeping
//!   transiently per obligation.
//! * **Derived counts.**  The cached graph is monitor-free, so the
//!   per-obligation state/transition counts reported under the cache are
//!   derived from the analysis pass (its product states and edges); for a
//!   holding `NonBlocking` they coincide exactly with the per-spec search.
//!   Verdicts never differ — a cache build that trips a resource budget
//!   falls back to the per-spec search rather than reporting the whole
//!   group `Unknown`, and `random_differential`'s cached axis pins
//!   cached ≡ uncached verdicts (and counterexample replay) across the
//!   random corpus at 1/2/4 workers.
//! * **Knob precedence.**  [`CheckerOptions::graph_cache`] (explicit
//!   `Some(true)`/`Some(false)`) over the `CC_GRAPH_CACHE` environment
//!   variable (`0` disables) over the default (enabled).
//!   [`ExplicitChecker::check`] always takes the per-spec path — that is
//!   the path `engine_equivalence` compares bit-for-bit against
//!   [`reference`].
//!
//! # Incremental sweeps: one sweep, one graph lineage
//!
//! A parameter sweep multiplies the catalogue by a grid of valuations, and
//! adjacent valuations of one model differ *only in compiled guard bounds*
//! — the rules, locations and row layout are fixed by the model, and
//! [`cccounter::CounterSystem`] pre-evaluates each guard's threshold at
//! construction.  Sweeps therefore carry each
//! `(start restriction, valuation)` group's reachability graph **across**
//! valuations as a [`GraphLineage`]:
//!
//! * **Classification.**  Advancing a group from valuation `v` to `v'`
//!   diffs the per-rule guard bounds ([`cccounter::CounterSystem::guard_bounds`]).
//!   If the system size changed, the start set changed and nothing
//!   carries over (*rebuilt*).  Otherwise the step is **identical** (every
//!   bound equal — the cached graph serves as-is, zero exploration),
//!   **relax-only** (every changed atom weakens: `>=` bounds only fell,
//!   `<` bounds only rose — the reachable set can only grow),
//!   **tighten-only** (every changed atom strengthens — the reachable set
//!   can only shrink, so the graph is *pruned* in place, see below), or
//!   **mixed** (re-explore from scratch; *rebuilt*).
//! * **Extension.**  A relax-only step seeds the explorer's frontier with
//!   exactly the stored rows on which a newly-enabled rule fires (old
//!   bounds re-evaluated on the row, new bounds from the new system); the
//!   seeds are re-expanded — their CSR spans are *replaced* with the full
//!   new action list — and fresh successors continue the ordinary
//!   level-synchronous BFS, appending to the [`StateStore`] and the CSR
//!   arenas in place.  A final *relink* pass replays a BFS over the final
//!   cached edges, re-deriving the discovery order, the first-discovery
//!   parent edges and the state/transition counts exactly as a
//!   from-scratch build at `v'` would have produced them — so verdicts,
//!   counts and counterexample schedules are **bit-identical** to a fresh
//!   sweep (pinned by `random_differential`'s incremental axis and the
//!   extended-graph half of `counterexample_replay`).
//! * **Lineage lifetime & memory.**  Each sweep worker owns one lineage
//!   spanning the contiguous, valuation-ordered block of grid cells it
//!   processes (the cached scheduler dispatches blocks, not strided cells,
//!   precisely so adjacent cells are guard-adjacent); at most one graph
//!   per start-restriction group survives at a time, dropped when
//!   classification discards it or the worker finishes its block.
//!   Resident bytes per cached graph (rows + side arrays + index + CSR)
//!   are reported in [`GroupCacheRecord::resident_bytes`] and printed by
//!   `profile_engine`.  Budget-tripped builds never enter the lineage, and
//!   a budget-tripped extension falls back to a from-scratch rebuild, so
//!   bounded-build semantics match the fresh path exactly.
//! * **Knob precedence.**  [`CheckerOptions::incremental_sweep`]
//!   (explicit `Some`) over the `CC_SWEEP_INCREMENTAL` environment
//!   variable (`0` disables) over the default (enabled).  The
//!   `sweep_amortization` axis of the `table2_checking` bench measures the
//!   whole-sweep speedup (incremental vs fresh over each protocol's full
//!   8-valuation grid).
//!
//! # Verdict memoization & lineage compaction
//!
//! The lineage above makes a sweep's steady state — long runs of identical
//! or guard-adjacent valuations — cheap; three levers make it nearly free:
//!
//! * **Verdict memoization.**  Each cached reachability graph carries a
//!   small memo of `(Spec, CheckOutcome)` pairs keyed by full [`Spec`]
//!   equality.  When an identical-classified lineage step re-serves a graph
//!   to the same catalogue, every obligation is answered from the memo with
//!   **zero analysis passes** — only the counterexample's parameter
//!   valuation is rewritten to the current cell's.  Only definite verdicts
//!   (`Holds` / `Violated`) are memoised; `Unknown` outcomes always
//!   re-evaluate.  The memo is invalidated by a generation bump whenever
//!   the graph mutates (extension or prune) and survives pure reuse, so a
//!   hit can never serve a stale verdict.  Hits and misses are counted per
//!   group in [`GroupCacheRecord::memo_hits`] / `memo_misses`.
//! * **Tighten-only prune.**  A tighten-only step's reachable set is a
//!   subset of the stored one (every changed bound strengthens, and counter
//!   systems are monotone in their guard bounds: a row's guard valuation
//!   depends only on the row).  Instead of a full rebuild, the stored graph
//!   is pruned *in place*: every stored edge whose rule had a bound change
//!   is re-validated against the tightened bounds on its source row, dead
//!   actions are compacted out of the CSR arenas, and the same *relink*
//!   BFS as the extension path re-derives discovery order, parent edges
//!   and counts — so a pruned graph is **bit-identical** to a fresh build
//!   at the tightened valuation (pinned by the `random_differential`
//!   lever axis).  The prune is infallible: no budget that admitted the
//!   old graph can trip on its subset.  Note what is *not* attempted:
//!   seeding future analysis passes from prior violation bitsets would
//!   change the reported product counts, breaking the lever-on/off
//!   differential contract, so passes always re-walk the pruned graph.
//! * **Delta-parked row arenas.**  When a sweep finishes a valuation, each
//!   surviving graph's [`StateStore`] is *parked*: row arenas are
//!   XOR-delta-encoded against their predecessor row (varint zero-run /
//!   literal-run pairs — BFS-adjacent rows differ in a handful of bytes)
//!   and the open-addressing indexes are dropped, shrinking the resident
//!   footprint between valuations; the CSR arenas are compacted if a prior
//!   prune left garbage.  The next lineage step that actually *uses* the
//!   graph unparks it — decoding is exact, and re-interning reproduces the
//!   original state ids, so parked ≡ never-parked bit-for-bit.  The
//!   before/after bytes are reported in
//!   [`GraphCacheStats::parked_full_bytes`] / `parked_compact_bytes` and
//!   summarised by [`GraphCacheStats::parked_compression`].
//! * **Knob precedence.**  [`CheckerOptions::verdict_memo`] over
//!   `CC_VERDICT_MEMO` (`0` disables) over the default (enabled), and
//!   [`CheckerOptions::tighten_prune`] over `CC_TIGHTEN_PRUNE` (`0`
//!   disables) over the default (enabled); `VerifierConfig` and the
//!   `table2` binary (`--no-verdict-memo` / `--no-tighten-prune`) expose
//!   the same toggles.  Parking has no knob — it is pure compression with
//!   exact reconstruction.  Neither lever ever changes a verdict, a count
//!   or a counterexample (pinned across the random corpus at 1/2/4 workers
//!   by `random_differential`); the `sweep_amortization` bench isolates
//!   each lever's wall-clock gain.
//!
//! # Memory model
//!
//! The engine's peak memory is *wave-bounded*, and its threads are
//! *pooled*:
//!
//! * **Wave-bounded candidate buffers.**  A parallel BFS level is processed
//!   in waves of at most [`CheckerOptions::wave_size`] frontier nodes.  A
//!   wave buffers its successor candidates (packed row bytes plus ~24 bytes
//!   of metadata each, duplicates included) only until its sequential
//!   replay, and every wave buffer — per-chunk candidate arenas, per-shard
//!   id lists, replay cursors — is recycled across waves and levels.  Peak
//!   transient memory is therefore O(`wave_size` × branching factor),
//!   independent of how wide a level grows; the persistent memory is the
//!   deduplicated [`StateStore`] itself (contiguous row arenas plus one
//!   open-addressing index per shard).  A budget bound that trips
//!   mid-replay over-expands at most the rest of the current wave.
//! * **Pool lifetime.**  The worker threads live in a persistent
//!   [`pool::WorkerPool`] spawned *once* per [`ExplicitChecker`] (not per
//!   level, not per check call) and joined when the checker is dropped.  A
//!   sweep creates one pool per grid worker and shares it across every
//!   cell that worker processes ([`ExplicitChecker::with_pool`]).  A
//!   resolved worker count of 1 spawns no threads at all — the sequential
//!   loop pays no synchronisation.
//!
//! # Thread and wave knob precedence
//!
//! From strongest to weakest, for each knob:
//!
//! 1. Explicit configuration: [`CheckerOptions::workers`] /
//!    [`CheckerOptions::shards`] / [`CheckerOptions::wave_size`] for one
//!    check, [`sweep::check_over_sweep_with_threads`]'s budget (fed by
//!    `VerifierConfig::threads` and the `--threads` flag of the `table2` /
//!    `profile_engine` binaries) for a sweep.
//! 2. Environment: `CC_CHECK_THREADS` (in-check workers when
//!    `CheckerOptions::workers == 0`), `CC_SWEEP_THREADS` (total sweep
//!    budget when none was configured), `CC_WAVE_SIZE` (parallel wave size
//!    when `CheckerOptions::wave_size == 0`).
//! 3. Auto: the available parallelism of the machine for the thread knobs,
//!    [`explorer::DEFAULT_WAVE_SIZE`] for the wave size.
//!
//! None of these knobs ever changes a verdict, a count or a counterexample
//! — only wall-clock time and peak memory.
//!
//! # Job lifecycle & fault model
//!
//! [`CheckJob`] wraps a batch check in an interruptible state machine, and
//! [`check_over_sweep_cancellable`] / [`resume_sweep`] extend the same
//! contract to the sweep grid:
//!
//! * **Checkpoint boundaries.**  A job suspends only at *wave boundaries*
//!   of an exploration (including level ends — a level is processed as a
//!   sequence of waves on both the sequential and the parallel path) and
//!   at *obligation boundaries* between specs.  At a wave boundary the
//!   unprocessed frontier plus the accumulated next level fully determine
//!   the rest of the search, so [`CheckJob::resume`] reproduces verdicts,
//!   state counts, transition counts and counterexample schedules
//!   bit-identically to an uninterrupted run (pinned by the
//!   `random_differential` interrupt axis at 1/2/4 workers).  An
//!   interrupted cache *build* keeps its partial store and CSR arenas in
//!   the [`JobCheckpoint`]; an interrupted analysis pass or per-spec
//!   search records nothing and is redone on resume (the passes are
//!   deterministic, so the results are unchanged).
//! * **Cancellation latency.**  [`CancelToken::cancel`] and the deadline
//!   are *fast* signals, polled at wave boundaries, at expand-phase chunk
//!   handouts inside a parallel wave, and every few thousand steps of an
//!   analysis pass — latency is O(one wave), not O(the check).  A mid-wave
//!   stop abandons the wave *before* the intern phase touched any shared
//!   state, so the whole wave stays pending and resume is unaffected.
//! * **Budget semantics.**  The [`JobBudget`] state/transition caps are
//!   evaluated only at wave and obligation boundaries against the
//!   deterministic replayed counters, so *where* they trip is identical at
//!   every worker count.  The deadline (re-anchored at each `run`/`resume`
//!   call) and the resident-byte cap are inherently timing/allocator
//!   dependent — their trip point varies, but resuming still reproduces
//!   the uninterrupted results exactly.  Analysis passes over a cached
//!   graph re-walk existing edges and are exempt from the job
//!   state/transition caps (they honour cancellation and the deadline).
//!   Resuming with the *same* exhausted cap re-trips at the next boundary
//!   without per-spec progress; resume with a larger budget.  In a sweep,
//!   cancellation and the deadline are global to the grid while the
//!   state/transition/resident caps apply per cell.
//! * **Panic isolation.**  A panic on a [`WorkerPool`] lane is captured
//!   (with a backtrace recorded by a process-wide panic hook), the
//!   remaining lanes drain their batch normally, and the pool stays
//!   reusable.  A sweep cell whose check panics is re-dispatched once on a
//!   fresh pool without the lineage (the fresh-rebuild path); a second
//!   panic marks that cell [`CellDisposition::Failed`] with the payload
//!   and backtrace in its detail while sibling cells keep running.  The
//!   re-dispatch runs through the shared [`retry`] supervisor
//!   ([`RetryPolicy`] + [`run_with_retry`], seeded-jitter exponential
//!   backoff), the same policy engine the `ccserve` daemon uses for its
//!   check jobs — the sweep's instance is simply `attempts(2)` with no
//!   backoff.  The `fault_injection` suite drives all of these paths with
//!   seeded injectors ([`fault`]), which also cover the daemon's
//!   admission/response-encode/socket-write sites.
//! * **Accounting.**  Every grid cell of a cancelled or budget-tripped
//!   sweep is accounted for: completed + skipped (after an earlier
//!   violation) + interrupted-with-checkpoint + failed-after-retry equals
//!   the full grid ([`SweepOutcome::disposition`]).
//! * **Knob precedence.**  As everywhere in this crate: explicit
//!   [`CheckerOptions`] / [`JobBudget`] fields over environment variables
//!   (`CC_CHECK_THREADS`, `CC_SWEEP_THREADS`, `CC_WAVE_SIZE`,
//!   `CC_GRAPH_CACHE`, `CC_SWEEP_INCREMENTAL`, `CC_VERDICT_MEMO`,
//!   `CC_TIGHTEN_PRUNE`) over built-in defaults.
//!   The `--deadline-ms` / `--max-resident-bytes` flags of the `table2`
//!   and `profile_engine` binaries feed [`JobBudget`] directly.
//!
//! [`reference`] preserves the original clone-per-transition engine
//! (`HashMap<(Vec<u8>, u8), usize>` keys, per-branch `Configuration`
//! clones); the `engine_equivalence` integration tests assert that the
//! engine visits the same number of states and transitions and returns the
//! same verdicts on all eight Table II protocols, the `parallel_determinism`
//! tests pin sequential-vs-parallel equality, and the `table2_checking` /
//! `scaling` benches measure the speedup and the worker scaling.

pub mod ckpt;
pub mod counterexample;
pub mod explicit;
pub mod explorer;
pub mod game;
pub mod graph;
pub mod job;
pub mod pool;
pub mod reference;
pub mod result;
pub mod retry;
pub mod schema;
pub mod spec;
pub mod store;
pub mod sweep;

/// Small models shared by this crate's unit tests and the
/// `engine_equivalence` integration tests.  Not part of the public API
/// surface.
#[doc(hidden)]
pub mod fixtures;

/// Seeded fault-injection hooks for the `fault_injection` integration
/// tests.  Not part of the public API surface.
#[doc(hidden)]
pub mod fault;

pub use ckpt::CkptError;
pub use counterexample::Counterexample;
pub use explicit::{CheckerOptions, ExplicitChecker};
pub use graph::GraphLineage;
pub use job::{
    CancelToken, CheckJob, InterruptKind, JobBudget, JobCheckpoint, JobOutcome, ProgressFn,
};
pub use pool::WorkerPool;
pub use result::{CheckOutcome, CheckStatus, GraphCacheStats, GraphOrigin, GroupCacheRecord};
pub use retry::{run_with_retry, RetryPolicy};
pub use schema::{
    count_linear_extensions, max_schema_count, milestone_precedence, milestones, schema_count,
    Milestone,
};
pub use spec::{LocSet, Spec, StartRestriction};
pub use store::{StateStore, StoreStats};
pub use sweep::{
    check_over_sweep, check_over_sweep_cancellable, check_over_sweep_with_stats,
    check_over_sweep_with_threads, resume_sweep, sweep_thread_budget, CellDisposition,
    SweepOutcome, SweepReport,
};
