//! Milestones and schema counting.
//!
//! ByMC checks a single-round query by enumerating *schemas*: sequences of
//! contexts delimited by *milestone* events (a rising threshold guard
//! becoming unlocked or a falling guard becoming locked).  The number of
//! schemas (`nschemas` in Tables II and IV of the paper) is the dominant cost
//! of the check and grows steeply with the number of milestones.
//!
//! This module re-implements the cost metric: milestones are the distinct
//! threshold atoms of the model, partially ordered by implication on the same
//! left-hand side, and the schema count is the number of linear extensions of
//! this partial order multiplied by a small factor accounting for the
//! temporal cut points of the query.

use crate::spec::Spec;
use ccta::{AtomicGuard, SystemModel};

/// A milestone: a threshold atom whose truth value changes at most once along
/// a run (rising `>=` guards unlock, falling `<` guards lock).
#[derive(Debug, Clone, PartialEq)]
pub struct Milestone {
    /// The guard atom.
    pub atom: AtomicGuard,
    /// Whether the atom is rising (unlocks) rather than falling (locks).
    pub rising: bool,
}

impl Milestone {
    /// Renders the milestone with model names.
    pub fn display_with(&self, model: &SystemModel) -> String {
        let dir = if self.rising { "unlock" } else { "lock" };
        format!(
            "{dir}: {}",
            self.atom
                .display_with(model.vars(), model.env().param_names())
        )
    }
}

/// Extracts the milestones of a model: the distinct non-trivial threshold
/// atoms appearing in any rule guard.
pub fn milestones(model: &SystemModel) -> Vec<Milestone> {
    let mut out: Vec<Milestone> = Vec::new();
    for rule in model.rules() {
        for atom in rule.guard().atoms() {
            if out.iter().any(|m| &m.atom == atom) {
                continue;
            }
            out.push(Milestone {
                atom: atom.clone(),
                rising: atom.is_rising(),
            });
        }
    }
    out
}

/// Whether milestone `a` must occur before milestone `b`: both compare the
/// same left-hand side and `a`'s bound is component-wise at most `b`'s bound
/// (so the smaller threshold is crossed first).
fn precedes(a: &Milestone, b: &Milestone) -> bool {
    if a == b {
        return false;
    }
    if a.atom.terms != b.atom.terms {
        return false;
    }
    let k = a.atom.bound.num_params().max(b.atom.bound.num_params());
    let mut le = true;
    let mut strict = false;
    for i in 0..k {
        let ca = a.atom.bound.coeff(ccta::ParamId(i));
        let cb = b.atom.bound.coeff(ccta::ParamId(i));
        if ca > cb {
            le = false;
        }
        if ca < cb {
            strict = true;
        }
    }
    let ca = a.atom.bound.constant_term();
    let cb = b.atom.bound.constant_term();
    if ca > cb {
        le = false;
    }
    if ca < cb {
        strict = true;
    }
    le && strict
}

/// The precedence relation over milestones as index pairs `(before, after)`.
pub fn milestone_precedence(milestones: &[Milestone]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, a) in milestones.iter().enumerate() {
        for (j, b) in milestones.iter().enumerate() {
            if i != j && precedes(a, b) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Counts the linear extensions of a partial order over `n` elements given as
/// precedence pairs, by dynamic programming over subsets.
///
/// # Panics
///
/// Panics if `n > 24` (the subset DP would not fit in memory); the benchmark
/// automata stay well below this.
pub fn count_linear_extensions(n: usize, precedence: &[(usize, usize)]) -> u128 {
    assert!(n <= 24, "too many milestones for exact schema counting");
    if n == 0 {
        return 1;
    }
    // predecessors bitmask per element
    let mut preds = vec![0u32; n];
    for &(before, after) in precedence {
        preds[after] |= 1 << before;
    }
    let full = (1u32 << n) - 1;
    let mut dp = vec![0u128; (full as usize) + 1];
    dp[0] = 1;
    for mask in 0..=full {
        if dp[mask as usize] == 0 {
            continue;
        }
        #[allow(clippy::needless_range_loop)]
        for next in 0..n {
            let bit = 1u32 << next;
            if mask & bit != 0 {
                continue;
            }
            if preds[next] & !mask != 0 {
                continue; // some predecessor not placed yet
            }
            dp[(mask | bit) as usize] += dp[mask as usize];
        }
    }
    dp[full as usize]
}

/// The number of temporal cut points contributed by a query shape, following
/// the schema construction: one cut point per "eventually" obligation.
fn cut_points(spec: &Spec) -> u32 {
    match spec {
        Spec::CoverNever { .. } => 2,
        Spec::NeverFrom { .. } => 1,
        Spec::ExistsAvoidOneOf { forbidden_sets, .. } => 1 + forbidden_sets.len() as u32,
        Spec::NonBlocking { .. } => 1,
    }
}

/// The schema-count cost metric for checking `spec` on `model`
/// (the `nschemas` columns of Tables II and IV).
///
/// The count is the number of admissible milestone orderings (linear
/// extensions of the precedence order) multiplied by the number of ways to
/// interleave the query's temporal cut points among the milestone events.
pub fn schema_count(model: &SystemModel, spec: &Spec) -> u128 {
    let ms = milestones(model);
    let prec = milestone_precedence(&ms);
    let orderings = count_linear_extensions(ms.len(), &prec);
    let m = ms.len() as u128;
    let cuts = cut_points(spec) as u128;
    // number of multisets of size `cuts` over `m + 1` gaps:
    // C(m + cuts, cuts), computed iteratively
    let mut factor: u128 = 1;
    for i in 1..=cuts {
        factor = factor * (m + i) / i;
    }
    orderings.saturating_mul(factor)
}

/// The maximum schema count over a family of queries (used for the
/// `max-nschemas` column of Table IV).
pub fn max_schema_count<'a>(
    model: &SystemModel,
    specs: impl IntoIterator<Item = &'a Spec>,
) -> u128 {
    specs
        .into_iter()
        .map(|s| schema_count(model, s))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{LocSet, StartRestriction};
    use ccta::BinValue;

    #[test]
    fn milestones_are_deduplicated() {
        let model = fixtures::voting_model();
        let ms = milestones(&model);
        // maj0, maj1, coin0, coin1 guards: 4 distinct atoms
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.rising));
        assert!(ms[0].display_with(&model).starts_with("unlock"));
    }

    #[test]
    fn precedence_orders_thresholds_on_the_same_lhs() {
        let model = fixtures::voting_model();
        let k = model.env().num_params();
        let v0 = model.var_id("v0").unwrap();
        let low = Milestone {
            atom: AtomicGuard::ge(v0, ccta::LinearExpr::constant(k, 1)),
            rising: true,
        };
        let high = Milestone {
            atom: AtomicGuard::ge(v0, ccta::LinearExpr::constant(k, 3)),
            rising: true,
        };
        let ms = vec![low, high];
        let prec = milestone_precedence(&ms);
        assert_eq!(prec, vec![(0, 1)]);
    }

    #[test]
    fn linear_extension_counts() {
        // no constraints: n! orderings
        assert_eq!(count_linear_extensions(0, &[]), 1);
        assert_eq!(count_linear_extensions(3, &[]), 6);
        assert_eq!(count_linear_extensions(4, &[]), 24);
        // a chain: exactly one ordering
        assert_eq!(count_linear_extensions(3, &[(0, 1), (1, 2)]), 1);
        // one constraint halves the count
        assert_eq!(count_linear_extensions(3, &[(0, 1)]), 3);
    }

    #[test]
    fn schema_count_grows_with_milestones_and_cut_points() {
        let model = fixtures::voting_model();
        let e0 = LocSet::from_names(&model, "E0", &["E0"]);
        let e1 = LocSet::from_names(&model, "E1", &["E1"]);
        let cover = Spec::CoverNever {
            name: "Inv1".into(),
            start: StartRestriction::RoundStart,
            trigger: e0.clone(),
            forbidden: e1.clone(),
        };
        let never = Spec::NeverFrom {
            name: "Inv2".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: e1.clone(),
        };
        let c_cover = schema_count(&model, &cover);
        let c_never = schema_count(&model, &never);
        assert!(c_cover > c_never, "{c_cover} vs {c_never}");
        assert!(c_never >= count_linear_extensions(4, &[]));
        let max = max_schema_count(&model, [&cover, &never]);
        assert_eq!(max, c_cover);
    }

    #[test]
    fn blocking_model_has_fewer_milestones() {
        let a = milestones(&fixtures::voting_model()).len();
        let b = milestones(&fixtures::blocking_model()).len();
        assert!(b < a);
    }

    #[test]
    #[should_panic(expected = "too many milestones")]
    fn exact_counting_is_bounded() {
        let _ = count_linear_extensions(30, &[]);
    }
}
