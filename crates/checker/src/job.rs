//! Check jobs: interruptible, checkpointable, budgeted batch checks.
//!
//! [`CheckJob`] wraps the batch check of [`crate::ExplicitChecker::check_all`]
//! in an explicit lifecycle: the job can be **cancelled** cooperatively
//! through a [`CancelToken`], **bounded** by explicit [`JobBudget`]s
//! (deadline, state/transition caps, resident bytes), and — when a signal
//! stops it — it surrenders a [`JobCheckpoint`] from which
//! [`CheckJob::resume`] continues the work.  A resumed job produces
//! verdicts, state counts, transition counts and counterexample schedules
//! *bit-identical* to an uninterrupted run, at any worker count (the
//! `random_differential` interrupt axis pins this).
//!
//! The mechanics live in three layers:
//!
//! * [`JobSignals`] is the shared, `Sync` signal block threaded through the
//!   [`crate::explorer::Explorer`]: polled at every wave boundary (all
//!   signals) and at expand-phase chunk handouts and analysis-pass strides
//!   (the fast cancel/deadline signals only).
//! * An interrupted *exploration* suspends with its frontier captured
//!   ([`crate::explorer::SuspendedFrontier`]); an interrupted cache *build*
//!   additionally keeps its partially populated store and CSR arenas
//!   ([`crate::graph::BuildInFlight`]) inside the checkpoint, so no
//!   exploration work is lost across a suspend/resume cycle.
//! * The job loop walks the obligation catalogue in spec order, carrying
//!   completed outcomes, retained group graphs and the in-flight build in
//!   the checkpoint.
//!
//! See the "Job lifecycle & fault model" section of the crate docs for the
//! checkpoint-boundary, latency and budget-semantics contract.

use crate::explicit::{CheckerOptions, ExplicitChecker};
use crate::explorer::{resolved_graph_cache, resolved_workers};
use crate::graph::{BuildInFlight, BuildStep, ReachGraph};
use crate::pool::WorkerPool;
use crate::result::{CheckOutcome, GraphCacheStats, GraphOrigin, GroupCacheRecord};
use crate::spec::{Spec, StartRestriction};
use cccounter::CounterSystem;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle: cloned freely, flipped once.
///
/// Cancellation is *cooperative*: the running job observes the token at
/// wave boundaries, expand-phase chunk handouts and analysis-pass strides,
/// so the latency between [`CancelToken::cancel`] and the job suspending is
/// O(one wave), not O(the whole check).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.  Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Explicit resource budgets of a job, all unlimited by default.
///
/// The state and transition caps are evaluated only against the
/// *deterministic replayed counters* at wave boundaries, so a budget trip
/// lands at the same point of the search at every worker count.  The
/// deadline and the resident-byte cap depend on wall time and allocator
/// layout respectively, so *where* they trip is not worker-independent —
/// but resuming from the resulting checkpoint still reproduces the
/// uninterrupted results exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobBudget {
    /// Wall-clock deadline, measured from each `run`/`resume` call.
    pub deadline: Option<Duration>,
    /// Cap on cumulative distinct states across the job's explorations.
    pub max_states: Option<usize>,
    /// Cap on cumulative explored transitions across the job's explorations.
    pub max_transitions: Option<usize>,
    /// Cap on resident bytes of the job's live stores and CSR arenas.
    pub max_resident_bytes: Option<usize>,
}

impl JobBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        JobBudget::default()
    }

    /// Whether no budget is set at all.
    pub fn is_unlimited(&self) -> bool {
        *self == JobBudget::default()
    }

    /// This budget with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This budget with a cumulative state cap.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = Some(max_states);
        self
    }

    /// This budget with a cumulative transition cap.
    pub fn with_max_transitions(mut self, max_transitions: usize) -> Self {
        self.max_transitions = Some(max_transitions);
        self
    }

    /// This budget with a resident-byte cap.
    pub fn with_max_resident_bytes(mut self, bytes: usize) -> Self {
        self.max_resident_bytes = Some(bytes);
        self
    }
}

/// Which signal stopped a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// The job's [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline of the [`JobBudget`] passed.
    Deadline,
    /// The cumulative state cap of the [`JobBudget`] was reached.
    StateBudget,
    /// The cumulative transition cap of the [`JobBudget`] was reached.
    TransitionBudget,
    /// The resident-byte cap of the [`JobBudget`] was reached.
    ResidentBudget,
}

impl InterruptKind {
    /// Whether this interrupt is a *budget* trip (as opposed to an external
    /// cancellation): budget trips report
    /// [`JobOutcome::BudgetExceeded`], cancellations report
    /// [`JobOutcome::Interrupted`].
    pub fn is_budget(&self) -> bool {
        !matches!(self, InterruptKind::Cancelled)
    }

    /// A stable human-readable description (also embedded in the `detail`
    /// of interrupted [`CheckOutcome`]s).
    pub fn describe(&self) -> &'static str {
        match self {
            InterruptKind::Cancelled => "cancelled",
            InterruptKind::Deadline => "deadline exceeded",
            InterruptKind::StateBudget => "job state budget exhausted",
            InterruptKind::TransitionBudget => "job transition budget exhausted",
            InterruptKind::ResidentBudget => "job resident-byte budget exhausted",
        }
    }
}

impl std::fmt::Display for InterruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// The shared signal block of one job run: the cancel token plus the
/// budget, with the deadline anchored to an [`Instant`] at construction —
/// i.e. at each `run`/`resume` call, so a resumed job gets a fresh deadline
/// window rather than instantly re-tripping.
///
/// The block is stateless beyond the token (`Sync`), so one instance is
/// shared by every worker lane and — in sweeps — every grid cell.
pub(crate) struct JobSignals {
    cancel: CancelToken,
    deadline: Option<Instant>,
    max_states: usize,
    max_transitions: usize,
    max_resident_bytes: usize,
    /// Observer invoked with the cumulative `(states, transitions)`
    /// counters at every wave/obligation boundary.  Purely informational:
    /// it cannot stop the job, so it cannot perturb determinism.
    progress: Option<ProgressFn>,
}

impl std::fmt::Debug for JobSignals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSignals")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("max_states", &self.max_states)
            .field("max_transitions", &self.max_transitions)
            .field("max_resident_bytes", &self.max_resident_bytes)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// A progress observer: called at wave and obligation boundaries with the
/// cumulative (deterministic) state and transition counters.  Must be cheap
/// and must not panic; the daemon uses it to emit throttled `Progress`
/// frames.
pub type ProgressFn = Arc<dyn Fn(usize, usize) + Send + Sync>;

impl JobSignals {
    /// Signals for one run of a job with the given budget.  The deadline
    /// countdown starts *now*.
    pub(crate) fn new(cancel: CancelToken, budget: JobBudget) -> Self {
        JobSignals {
            cancel,
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_states: budget.max_states.unwrap_or(usize::MAX),
            max_transitions: budget.max_transitions.unwrap_or(usize::MAX),
            max_resident_bytes: budget.max_resident_bytes.unwrap_or(usize::MAX),
            progress: None,
        }
    }

    /// The fast signals — cancellation and deadline — safe to poll from any
    /// thread at any point (they carry no exploration-counter semantics, so
    /// honouring them mid-wave cannot perturb determinism: the abandoned
    /// wave stays pending and is re-expanded on resume).
    pub(crate) fn fast_stop(&self) -> Option<InterruptKind> {
        if self.cancel.is_cancelled() {
            return Some(InterruptKind::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(InterruptKind::Deadline);
            }
        }
        None
    }

    /// All signals, for wave/obligation boundaries: the fast signals first,
    /// then the cumulative caps against the deterministic replayed
    /// counters.  `resident` is a closure because computing resident bytes
    /// walks the store shards — it only runs when a cap is actually set.
    pub(crate) fn boundary_stop(
        &self,
        states: usize,
        transitions: usize,
        resident: impl FnOnce() -> usize,
    ) -> Option<InterruptKind> {
        if let Some(cb) = &self.progress {
            cb(states, transitions);
        }
        if let Some(kind) = self.fast_stop() {
            return Some(kind);
        }
        if states >= self.max_states {
            return Some(InterruptKind::StateBudget);
        }
        if transitions >= self.max_transitions {
            return Some(InterruptKind::TransitionBudget);
        }
        if self.max_resident_bytes != usize::MAX && resident() >= self.max_resident_bytes {
            return Some(InterruptKind::ResidentBudget);
        }
        None
    }
}

/// The resumable state of an interrupted job: completed outcomes, retained
/// group graphs, the in-flight cache build (if the interrupt landed inside
/// one) and the cumulative exploration counters.
///
/// The checkpoint holds `Rc`-shared graphs, so it is **not** `Send`: resume
/// on the thread that produced it (or hand the whole job to a thread to
/// begin with).  Nothing in it refers to the interrupted job's pool or
/// stack, so the originating [`CheckJob`] may be dropped and re-created
/// with the same system, specs and options before resuming.
pub struct JobCheckpoint {
    /// Per spec (in spec order): the completed outcome, or `None` if still
    /// owed.
    pub(crate) outcomes: Vec<Option<CheckOutcome>>,
    /// Retained group graphs, aligned index-for-index with `stats.groups`.
    pub(crate) groups: Vec<(StartRestriction, Rc<ReachGraph>)>,
    /// A cache build the interrupt landed inside, frontier captured.
    pub(crate) building: Option<(StartRestriction, Box<BuildInFlight>)>,
    /// Cache accounting mirroring [`crate::ExplicitChecker::cache_stats`].
    pub(crate) stats: GraphCacheStats,
    /// Cumulative distinct states across the job's completed explorations.
    pub(crate) states_done: usize,
    /// Cumulative transitions across the job's completed explorations.
    pub(crate) transitions_done: usize,
}

impl JobCheckpoint {
    pub(crate) fn fresh(num_specs: usize) -> Self {
        JobCheckpoint {
            outcomes: vec![None; num_specs],
            groups: Vec::new(),
            building: None,
            stats: GraphCacheStats::default(),
            states_done: 0,
            transitions_done: 0,
        }
    }

    /// How many obligations already have their final outcome.
    pub fn completed_obligations(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_some()).count()
    }

    /// Total obligations of the job.
    pub fn total_obligations(&self) -> usize {
        self.outcomes.len()
    }

    /// Consumes the checkpoint, yielding the per-spec outcomes in spec
    /// order — `None` for obligations still owed at the interrupt.  Callers
    /// that choose to degrade instead of resume (e.g. a serving deadline)
    /// keep the completed verdicts and map the owed slots to interrupted
    /// `Unknown` outcomes.
    pub fn into_outcomes(self) -> Vec<Option<CheckOutcome>> {
        self.outcomes
    }

    /// Cumulative distinct states explored before the interrupt (completed
    /// explorations plus the in-flight build's progress).
    pub fn states_explored(&self) -> usize {
        self.states_done + self.building.as_ref().map_or(0, |(_, b)| b.states())
    }

    /// Cumulative transitions explored by completed explorations.
    pub fn transitions_explored(&self) -> usize {
        self.transitions_done
    }

    /// Whether the interrupt landed inside a cache build (whose partial
    /// store and CSR arenas the checkpoint retains).
    pub fn has_build_in_flight(&self) -> bool {
        self.building.is_some()
    }

    /// Resident bytes retained by the checkpoint: the group graphs plus the
    /// in-flight build.
    fn resident_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|(_, g)| g.resident_bytes())
            .sum::<usize>()
            + self
                .building
                .as_ref()
                .map_or(0, |(_, b)| b.resident_bytes())
    }
}

/// How a job run ended.
pub enum JobOutcome {
    /// Every obligation has its outcome (in spec order), verdicts identical
    /// to [`crate::ExplicitChecker::check_all`] under the same options.
    Completed {
        /// Per-spec outcomes, in spec order.
        outcomes: Vec<CheckOutcome>,
        /// The graph-cache accounting of the whole job.
        stats: GraphCacheStats,
    },
    /// The job's [`CancelToken`] stopped it; resume via
    /// [`CheckJob::resume`].
    Interrupted {
        /// The resumable state at the point of cancellation.
        checkpoint: JobCheckpoint,
    },
    /// A [`JobBudget`] cap stopped it; resume with a larger budget (the
    /// same exhausted budget re-trips at the next boundary).
    BudgetExceeded {
        /// Which cap tripped.
        reason: InterruptKind,
        /// The resumable state at the trip point.
        checkpoint: JobCheckpoint,
        /// Cache accounting accumulated up to the trip.
        partial_stats: GraphCacheStats,
    },
}

impl JobOutcome {
    /// The completed outcomes, if the job finished.
    pub fn completed(self) -> Option<(Vec<CheckOutcome>, GraphCacheStats)> {
        match self {
            JobOutcome::Completed { outcomes, stats } => Some((outcomes, stats)),
            _ => None,
        }
    }

    /// The checkpoint of an interrupted or budget-exceeded job.
    pub fn into_checkpoint(self) -> Option<JobCheckpoint> {
        match self {
            JobOutcome::Completed { .. } => None,
            JobOutcome::Interrupted { checkpoint } => Some(checkpoint),
            JobOutcome::BudgetExceeded { checkpoint, .. } => Some(checkpoint),
        }
    }
}

/// A batch check with an explicit lifecycle: run, suspend at a wave or
/// obligation boundary on cancellation or a budget trip, resume from the
/// surrendered [`JobCheckpoint`] bit-identically.
pub struct CheckJob<'a> {
    sys: &'a CounterSystem,
    specs: &'a [Spec],
    options: CheckerOptions,
    budget: JobBudget,
    cancel: CancelToken,
    progress: Option<ProgressFn>,
}

impl<'a> CheckJob<'a> {
    /// A job checking `specs` over `sys` with unlimited budget.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model (the
    /// same contract as [`crate::ExplicitChecker`]).
    pub fn new(sys: &'a CounterSystem, specs: &'a [Spec], options: CheckerOptions) -> Self {
        CheckJob {
            sys,
            specs,
            options,
            budget: JobBudget::default(),
            cancel: CancelToken::new(),
            progress: None,
        }
    }

    /// This job with explicit resource budgets.
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// This job with a progress observer, invoked with the cumulative
    /// `(states, transitions)` counters at every wave and obligation
    /// boundary.  Observation only — it cannot stop the job and does not
    /// perturb verdicts or determinism.
    pub fn with_progress(mut self, progress: ProgressFn) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The job's cancellation handle (clone it into whatever thread or
    /// signal handler should be able to stop the job).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs the job from scratch.
    pub fn run(&self) -> JobOutcome {
        self.execute(JobCheckpoint::fresh(self.specs.len()))
    }

    /// Resumes an interrupted job from its checkpoint.  The system, specs
    /// and options must be the ones the checkpoint was taken under; the
    /// deadline budget (if any) restarts from now.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's obligation count does not match this
    /// job's spec count.
    pub fn resume(&self, checkpoint: JobCheckpoint) -> JobOutcome {
        assert_eq!(
            checkpoint.outcomes.len(),
            self.specs.len(),
            "the checkpoint belongs to a job with a different obligation catalogue"
        );
        self.execute(checkpoint)
    }

    /// The job loop: walk the obligations in spec order, mirroring the
    /// routing of [`crate::ExplicitChecker::check_all`] exactly (so an
    /// uninterrupted job is verdict- and stats-identical to it), suspending
    /// into the checkpoint whenever a signal fires.
    fn execute(&self, mut cp: JobCheckpoint) -> JobOutcome {
        let mut signals = JobSignals::new(self.cancel.clone(), self.budget);
        signals.progress = self.progress.clone();
        let pool = WorkerPool::new(resolved_workers(&self.options));
        let use_cache = resolved_graph_cache(&self.options);
        let mut checker = ExplicitChecker::with_pool(self.sys, self.options, &pool);
        checker.set_signals(Some(&signals));

        for (i, spec) in self.specs.iter().enumerate() {
            if cp.outcomes[i].is_some() {
                continue;
            }
            // the deterministic inter-obligation trip point: cumulative
            // replayed counters only, identical at every worker count
            if let Some(kind) =
                signals.boundary_stop(cp.states_done, cp.transitions_done, || cp.resident_bytes())
            {
                return Self::suspend(cp, kind);
            }
            // mirror ExplicitChecker::check_cached's product-width routing
            let cacheable = match spec {
                Spec::ExistsAvoidOneOf { forbidden_sets, .. } => forbidden_sets.len() <= 3,
                _ => true,
            };
            let outcome = if use_cache && cacheable {
                match self.cached_obligation(&mut cp, spec, &signals, &pool, &checker) {
                    Ok(outcome) => outcome,
                    Err(kind) => return Self::suspend(cp, kind),
                }
            } else {
                checker.set_signal_base((cp.states_done, cp.transitions_done, cp.resident_bytes()));
                let outcome = checker.check(spec);
                if outcome.is_interrupted() {
                    // a per-spec search carries no checkpointable store; it
                    // is redone from scratch on resume (deterministic, so
                    // still bit-identical)
                    let kind = Self::interrupt_kind_of(&outcome);
                    return Self::suspend(cp, kind);
                }
                cp.stats.uncached_specs += 1;
                cp.states_done += outcome.states_explored;
                cp.transitions_done += outcome.transitions_explored;
                outcome
            };
            cp.outcomes[i] = Some(outcome);
        }

        JobOutcome::Completed {
            outcomes: cp.outcomes.into_iter().map(Option::unwrap).collect(),
            stats: cp.stats,
        }
    }

    /// One obligation on the graph-cache path: serve it from a retained
    /// group graph, resuming or starting the group's build as needed.
    /// `Err` means a signal fired; the checkpoint already holds whatever
    /// build progress existed.
    fn cached_obligation(
        &self,
        cp: &mut JobCheckpoint,
        spec: &Spec,
        signals: &JobSignals,
        pool: &WorkerPool,
        checker: &ExplicitChecker<'_>,
    ) -> Result<CheckOutcome, InterruptKind> {
        let start = spec.start();
        let group = match cp.groups.iter().position(|(s, _)| *s == start) {
            Some(found) => found,
            None => self.build_group(cp, start, signals, pool)?,
        };
        let graph = Rc::clone(&cp.groups[group].1);
        if graph.is_bounded() {
            // the pruned per-spec search can still produce a definite
            // verdict within the same per-exploration budget (see
            // ExplicitChecker::check_cached)
            checker.set_signal_base((cp.states_done, cp.transitions_done, cp.resident_bytes()));
            let outcome = checker.check(spec);
            if outcome.is_interrupted() {
                return Err(Self::interrupt_kind_of(&outcome));
            }
            cp.stats.uncached_specs += 1;
            cp.states_done += outcome.states_explored;
            cp.transitions_done += outcome.transitions_explored;
            return Ok(outcome);
        }
        let (outcome, memo_hit) = graph.evaluate_memo(self.sys, spec, &self.options, Some(signals));
        if outcome.is_interrupted() {
            // analysis passes are deterministic and cheap relative to the
            // build: an interrupted pass is simply redone on resume
            return Err(Self::interrupt_kind_of(&outcome));
        }
        let record = &mut cp.stats.groups[group];
        record.specs += 1;
        if memo_hit {
            record.memo_hits += 1;
        } else {
            record.memo_misses += 1;
        }
        Ok(outcome)
    }

    /// Builds (or resumes building) the group graph for `start`, retaining
    /// it in the checkpoint.  Returns the new group index, or the interrupt
    /// that suspended the build (with its partial store captured in
    /// `cp.building`).
    fn build_group(
        &self,
        cp: &mut JobCheckpoint,
        start: StartRestriction,
        signals: &JobSignals,
        pool: &WorkerPool,
    ) -> Result<usize, InterruptKind> {
        let base = (cp.states_done, cp.transitions_done, cp.resident_bytes());
        let step = match cp.building.take() {
            Some((built_start, in_flight)) if built_start == start => ReachGraph::resume_build(
                in_flight,
                self.sys,
                &self.options,
                pool,
                Some(signals),
                base,
            ),
            other => {
                // a stale in-flight build for a different group can only
                // mean the checkpoint was produced under different options;
                // drop it and build what this obligation needs
                drop(other);
                let starts = start.configurations(self.sys);
                ReachGraph::build_with_signals(
                    self.sys,
                    &starts,
                    &self.options,
                    pool,
                    Some(signals),
                    base,
                )
            }
        };
        match step {
            BuildStep::Done(graph) => {
                let graph = Rc::new(graph);
                cp.states_done += graph.states();
                cp.transitions_done += graph.transitions();
                cp.stats.groups.push(GroupCacheRecord {
                    start: start.label(),
                    specs: 0,
                    states: graph.states(),
                    transitions: graph.transitions(),
                    origin: GraphOrigin::Built,
                    seed_frontier: 0,
                    pruned_actions: 0,
                    memo_hits: 0,
                    memo_misses: 0,
                    resident_bytes: graph.resident_bytes(),
                });
                cp.groups.push((start, graph));
                Ok(cp.groups.len() - 1)
            }
            BuildStep::Suspended(in_flight, kind) => {
                cp.building = Some((start, in_flight));
                Err(kind)
            }
        }
    }

    /// Recovers the interrupt kind from an interrupted [`CheckOutcome`]'s
    /// detail string.
    fn interrupt_kind_of(outcome: &CheckOutcome) -> InterruptKind {
        for kind in [
            InterruptKind::Deadline,
            InterruptKind::StateBudget,
            InterruptKind::TransitionBudget,
            InterruptKind::ResidentBudget,
        ] {
            if outcome.detail.ends_with(kind.describe()) {
                return kind;
            }
        }
        InterruptKind::Cancelled
    }

    fn suspend(cp: JobCheckpoint, kind: InterruptKind) -> JobOutcome {
        if kind.is_budget() {
            let partial_stats = cp.stats.clone();
            JobOutcome::BudgetExceeded {
                reason: kind,
                checkpoint: cp,
                partial_stats,
            }
        } else {
            JobOutcome::Interrupted { checkpoint: cp }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{LocSet, StartRestriction};
    use ccta::BinValue;

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    fn specs(sys: &CounterSystem) -> Vec<Spec> {
        let model = sys.model();
        vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(model, "E0", &["E0"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ]
    }

    fn assert_same(a: &CheckOutcome, b: &CheckOutcome) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.transitions_explored, b.transitions_explored);
        match (&a.counterexample, &b.counterexample) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.initial, y.initial);
                assert_eq!(x.schedule.steps(), y.schedule.steps());
            }
            _ => panic!("counterexample presence differs"),
        }
    }

    #[test]
    fn uninterrupted_job_matches_check_all() {
        let sys = sys();
        let specs = specs(&sys);
        let options = CheckerOptions::default().with_graph_cache(true);
        let job = CheckJob::new(&sys, &specs, options);
        let (outcomes, stats) = job.run().completed().expect("unlimited job completes");
        let (reference, ref_stats) =
            ExplicitChecker::with_options(&sys, options).check_all_with_stats(&specs);
        for (o, r) in outcomes.iter().zip(&reference) {
            assert_same(o, r);
        }
        assert_eq!(stats.graphs_built(), ref_stats.graphs_built());
        assert_eq!(stats.specs_served(), ref_stats.specs_served());
        assert_eq!(stats.uncached_specs, ref_stats.uncached_specs);
    }

    #[test]
    fn state_budget_trips_then_resume_is_bit_identical() {
        let sys = sys();
        let specs = specs(&sys);
        let options = CheckerOptions::default().with_graph_cache(true);
        let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);

        let tripped = CheckJob::new(&sys, &specs, options)
            .with_budget(JobBudget::unlimited().with_max_states(5))
            .run();
        let JobOutcome::BudgetExceeded {
            reason, checkpoint, ..
        } = tripped
        else {
            panic!("a 5-state budget must trip on this fixture");
        };
        assert_eq!(reason, InterruptKind::StateBudget);
        assert!(checkpoint.completed_obligations() < specs.len());

        let resumed = CheckJob::new(&sys, &specs, options).resume(checkpoint);
        let (outcomes, _) = resumed.completed().expect("unlimited resume completes");
        for (o, r) in outcomes.iter().zip(&reference) {
            assert_same(o, r);
        }
    }

    #[test]
    fn pre_cancelled_job_suspends_before_any_work() {
        let sys = sys();
        let specs = specs(&sys);
        let job = CheckJob::new(&sys, &specs, CheckerOptions::default());
        job.cancel_token().cancel();
        let JobOutcome::Interrupted { checkpoint } = job.run() else {
            panic!("a pre-cancelled job must suspend");
        };
        assert_eq!(checkpoint.completed_obligations(), 0);
        assert_eq!(checkpoint.states_explored(), 0);

        // a fresh job (new token) resumes the checkpoint to completion
        let resumed = CheckJob::new(&sys, &specs, CheckerOptions::default()).resume(checkpoint);
        assert!(resumed.completed().is_some());
    }

    #[test]
    fn boundary_stop_orders_fast_signals_before_budgets() {
        let cancel = CancelToken::new();
        let signals = JobSignals::new(
            cancel.clone(),
            JobBudget::unlimited()
                .with_max_states(10)
                .with_max_transitions(20),
        );
        assert_eq!(signals.fast_stop(), None);
        assert_eq!(signals.boundary_stop(9, 19, || 0), None);
        assert_eq!(
            signals.boundary_stop(10, 0, || 0),
            Some(InterruptKind::StateBudget)
        );
        assert_eq!(
            signals.boundary_stop(0, 20, || 0),
            Some(InterruptKind::TransitionBudget)
        );
        cancel.cancel();
        assert_eq!(
            signals.boundary_stop(10, 20, || 0),
            Some(InterruptKind::Cancelled),
            "cancellation outranks budget trips"
        );
    }

    #[test]
    fn resident_budget_closure_only_runs_when_capped() {
        let signals = JobSignals::new(CancelToken::new(), JobBudget::unlimited());
        assert_eq!(
            signals.boundary_stop(0, 0, || panic!(
                "uncapped resident bytes must not be computed"
            )),
            None
        );
        let capped = JobSignals::new(
            CancelToken::new(),
            JobBudget::unlimited().with_max_resident_bytes(100),
        );
        assert_eq!(
            capped.boundary_stop(0, 0, || 100),
            Some(InterruptKind::ResidentBudget)
        );
    }
}
