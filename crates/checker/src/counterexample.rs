//! Counterexamples reported by the checker.

use cccounter::{Configuration, CounterSystem, Schedule};
use ccta::ParamValuation;
use std::fmt;

/// A counterexample to a single-round query: the system settings, an initial
/// configuration and a schedule leading to the violation (the same data ByMC
/// reports, cf. Sect. VI of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Name of the violated query.
    pub spec: String,
    /// The parameter valuation (system settings such as `n = 193, t = 64`).
    pub params: ParamValuation,
    /// The initial configuration of the violating execution.
    pub initial: Configuration,
    /// The schedule from the initial configuration to the violation.
    pub schedule: Schedule,
    /// Human-readable explanation of what was violated.
    pub explanation: String,
}

impl Counterexample {
    /// Renders the counterexample with rule names resolved, for reports.
    pub fn describe(&self, sys: &CounterSystem) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "counterexample to {} with parameters {}\n",
            self.spec, self.params
        ));
        out.push_str(&format!("  {}\n", self.explanation));
        out.push_str("  schedule:\n");
        for step in self.schedule.steps() {
            let rule = sys.model().rule(step.action.rule);
            out.push_str(&format!(
                "    {} (round {}, branch {})\n",
                rule.name(),
                step.action.round,
                step.branch
            ));
        }
        out
    }

    /// Length of the violating schedule.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the violation occurs already in the initial configuration.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counterexample to {} ({} steps, parameters {})",
            self.spec,
            self.schedule.len(),
            self.params
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_spec_and_params() {
        let ce = Counterexample {
            spec: "CB2".to_string(),
            params: ParamValuation::new(vec![4, 1, 1, 1]),
            initial: Configuration::zero(3, 2),
            schedule: Schedule::new(),
            explanation: "a correct process entered M1 after N0".to_string(),
        };
        let s = format!("{ce}");
        assert!(s.contains("CB2"));
        assert!(s.contains("(4, 1, 1, 1)"));
        assert!(ce.is_empty());
        assert_eq!(ce.len(), 0);
    }
}
