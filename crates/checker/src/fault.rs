//! Seeded fault injection hooks for the robustness test suite.
//!
//! The `fault_injection` integration tests arm these hooks to make a chosen
//! worker lane panic at a chosen expansion (or a chosen sweep cell), so the
//! panic-isolation and retry paths in [`crate::sweep`] and
//! [`crate::WorkerPool`] can be driven deterministically.  The module is
//! always compiled — integration tests cannot see `cfg(test)`-gated items —
//! but the disarmed fast path is a single relaxed atomic load, so it costs
//! nothing on the hot path.
//!
//! Injected "OOM" and deadline faults need no hook at all: they are realised
//! by handing a job a tiny resident-byte or deadline budget, which trips the
//! same structured-degradation path a real overrun would.
//!
//! Beyond the in-check sites, the `ccserve` daemon instruments its
//! admission, response-serialization and socket-write paths with the same
//! hooks ([`SITE_ADMISSION`], [`SITE_RESPONSE_ENCODE`],
//! [`SITE_SOCKET_WRITE`]), so every daemon failure path is drivable from
//! its `protocol_robustness` suite without serve-private test shims.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Injection site: the parallel expand phase, inside a worker lane.
pub const SITE_EXPAND: usize = 1;
/// Injection site: the start of a sweep grid cell.
pub const SITE_SWEEP_CELL: usize = 2;
/// Injection site: the `ccserve` daemon's admission path, after a request
/// frame was decoded but before it is enqueued.  Drives the
/// degrade-to-typed-error path of admission.
pub const SITE_ADMISSION: usize = 3;
/// Injection site: the `ccserve` daemon's response serialization.  Drives
/// the fallback minimal-error-response path.
pub const SITE_RESPONSE_ENCODE: usize = 4;
/// Injection site: the `ccserve` daemon's socket write.  Drives the
/// treat-connection-as-dead path (cancel in-flight jobs, release slots).
pub const SITE_SOCKET_WRITE: usize = 5;
/// Injection site: the verdict log's record append, *after* the bytes were
/// handed to the OS but before the append is considered complete.  Under
/// abort mode this simulates a crash with a possibly-torn record tail.
pub const SITE_LOG_APPEND: usize = 6;
/// Injection site: the verdict log's fsync.  Under abort mode this
/// simulates a crash after writing but before durability was promised.
pub const SITE_LOG_FSYNC: usize = 7;
/// Injection site: the compaction's atomic rename swap, after the staged
/// generation was written and fsync'd but before the rename.  Under abort
/// mode this simulates a crash mid-compaction (the old generation must
/// survive intact).
pub const SITE_COMPACT_SWAP: usize = 8;

static ARMED: AtomicBool = AtomicBool::new(false);
static SITE: AtomicUsize = AtomicUsize::new(0);
/// Hits at the armed site to let pass before firing.
static SKIP: AtomicUsize = AtomicUsize::new(0);
/// Panics still to fire once the skip countdown is exhausted.
static SHOTS: AtomicUsize = AtomicUsize::new(0);
/// Total times the armed site was reached (diagnostics for tests).
static HITS: AtomicUsize = AtomicUsize::new(0);
/// Whether a firing shot aborts the process instead of panicking (crash
/// campaigns want kill--9 semantics: no unwinding, no destructors, no
/// flushes).
static ABORT: AtomicBool = AtomicBool::new(false);

/// Arms the injector: after `skip` hits at `site`, the next `shots` hits
/// panic.  Tests serialise access with a mutex; the injector itself only
/// promises that *some* interleaving of concurrent hits fires `shots` times.
pub fn arm_panic(site: usize, skip: usize, shots: usize) {
    ABORT.store(false, Ordering::SeqCst);
    SITE.store(site, Ordering::SeqCst);
    SKIP.store(skip, Ordering::SeqCst);
    SHOTS.store(shots, Ordering::SeqCst);
    HITS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Arms the injector in **abort** mode: a firing shot calls
/// [`std::process::abort`] instead of panicking, so no unwinding, no `Drop`
/// and no buffered flush runs — the closest safe stand-in for `kill -9` at
/// the instrumented site.  Used by the `crash_recovery` campaign through
/// [`arm_from_env`].
pub fn arm_abort(site: usize, skip: usize, shots: usize) {
    arm_panic(site, skip, shots);
    ABORT.store(true, Ordering::SeqCst);
}

/// Arms the injector from the `CC_FAULT_CRASH` environment variable, in the
/// form `site:skip[:shots]` (shots defaults to 1), e.g. `CC_FAULT_CRASH=6:2`
/// aborts the process at the third hit of [`SITE_LOG_APPEND`].  Child
/// processes spawned by the crash campaign call this at startup; with the
/// variable unset or malformed, nothing is armed.
pub fn arm_from_env() {
    let Ok(spec) = std::env::var("CC_FAULT_CRASH") else {
        return;
    };
    let mut parts = spec.split(':');
    let (Some(Ok(site)), Some(Ok(skip))) = (
        parts.next().map(str::parse::<usize>),
        parts.next().map(str::parse::<usize>),
    ) else {
        return;
    };
    let shots = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);
    arm_abort(site, skip, shots);
}

/// Disarms the injector and returns how many times the armed site was hit.
pub fn disarm() -> usize {
    ARMED.store(false, Ordering::SeqCst);
    HITS.load(Ordering::SeqCst)
}

/// Called from the instrumented sites; panics if the injector is armed for
/// this site and the skip/shot counters say it is this hit's turn.
#[inline]
pub fn maybe_fire(site: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    fire_slow(site);
}

#[cold]
fn fire_slow(site: usize) {
    if SITE.load(Ordering::SeqCst) != site {
        return;
    }
    let hit = HITS.fetch_add(1, Ordering::SeqCst);
    // let the first `skip` hits through untouched
    if SKIP
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
        .is_ok()
    {
        return;
    }
    if SHOTS
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
        .is_ok()
    {
        if ABORT.load(Ordering::SeqCst) {
            // kill -9 semantics: no unwinding, no destructors, no flushes
            std::process::abort();
        }
        panic!("injected fault at site {site} (hit {hit})");
    }
}
