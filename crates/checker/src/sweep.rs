//! Checking queries over a sweep of admissible parameter valuations.
//!
//! ByMC establishes each query for *all* admissible parameters.  The
//! reproduction instead checks every query on a family of small admissible
//! valuations (the sweep); a query "holds" if it holds on every member of the
//! sweep and is "violated" as soon as one member yields a counterexample.
//!
//! # Two-level parallelism
//!
//! The `query × valuation` grid is embarrassingly parallel, and each cell's
//! exploration can itself run on multiple workers (see [`crate::explorer`]).
//! [`check_over_sweep`] therefore splits one *thread budget* across both
//! levels: enough outer workers to cover the grid, and the remaining factor
//! handed to each cell as in-check workers.  A 16-thread budget over a
//! 4-cell grid runs 4 cells concurrently with 4 workers each; a single huge
//! cell gets all 16 workers.  The budget comes from
//! [`check_over_sweep_with_threads`]'s argument, or (for
//! [`check_over_sweep`]) from the `CC_SWEEP_THREADS` environment variable,
//! falling back to the available parallelism; an explicit
//! [`CheckerOptions::workers`] setting always wins over the derived
//! per-cell worker count.
//!
//! Reports keep the deterministic sequential semantics regardless of any of
//! these knobs: outcomes are assembled in valuation order, and every grid
//! cell that a sequential sweep would never have reached (because an earlier
//! valuation of the same query violated) is reported as an explicit
//! *skipped* outcome — so each report accounts for every cell of the grid,
//! and cancelled work is visible instead of silently dropped.
//!
//! # Graph-cache batching
//!
//! With the reachability-graph cache enabled (the default, see the "Graph
//! cache" section of the crate docs), the unit of scheduled work is a whole
//! *valuation* rather than a single `(query, valuation)` cell: one
//! [`ExplicitChecker`] per valuation runs the full spec slice through
//! cached checks, so every query sharing a start restriction reuses one
//! exploration of that valuation's reachable graph.  Per-cell outcomes,
//! durations, skipped records and the deterministic assembly are unchanged;
//! [`check_over_sweep_with_stats`] additionally returns the aggregated
//! cache accounting in valuation order.
//!
//! # Job lifecycle
//!
//! [`check_over_sweep_cancellable`] runs the same grid under a
//! [`CancelToken`] and a [`JobBudget`]: the cancel token and the budget's
//! deadline are polled between cells (and at wave boundaries inside each
//! cell), and the budget's state/transition/resident caps apply to each
//! cell individually.  Every cell then carries a [`CellDisposition`]:
//! `Completed` cells ran to a verdict, `Skipped` cells were cancelled by an
//! earlier violation of the same query, `Interrupted` cells were stopped by
//! a job signal (mid-cell or before they were ever reached), and `Failed`
//! cells panicked twice — once on the shared pool and once more after being
//! re-dispatched on a fresh pool without any lineage — without disturbing
//! their siblings.  The four dispositions partition the grid, so
//! `completed + skipped + interrupted + failed` always equals the grid
//! size.  [`resume_sweep`] continues an interrupted sweep from its reports,
//! carrying completed cells over verbatim and recomputing the rest; a
//! resumed sweep that runs to completion is bit-identical to an
//! uninterrupted run.

use crate::explicit::{CheckerOptions, ExplicitChecker};
use crate::explorer::{resolved_graph_cache, resolved_workers};
use crate::graph::GraphLineage;
use crate::job::{CancelToken, InterruptKind, JobBudget, JobSignals};
use crate::pool::WorkerPool;
use crate::result::{CheckOutcome, CheckStatus, GraphCacheStats};
use crate::retry::{run_with_retry, RetryPolicy};
use crate::spec::Spec;
use cccounter::CounterSystem;
use ccta::{ParamValuation, SystemModel};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How one grid cell of a sweep ended up in its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellDisposition {
    /// The check ran to a verdict (or an in-check exploration bound).
    Completed,
    /// Cancelled because an earlier valuation of the same query violated.
    Skipped,
    /// Stopped by a job signal — a tripped [`CancelToken`], deadline or
    /// budget cap — either mid-cell (the outcome then carries the partial
    /// state/transition counts) or before the cell was ever dispatched.
    /// Interrupted cells are recomputed by [`resume_sweep`].
    Interrupted,
    /// The cell panicked on the shared pool *and* once more after being
    /// re-dispatched on a fresh pool without a lineage; its outcome detail
    /// carries the panic message and lane backtrace.  Sibling cells are
    /// unaffected.
    Failed,
}

/// The outcome of one query on one parameter valuation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The parameter valuation checked.
    pub params: ParamValuation,
    /// The outcome of the check.
    pub outcome: CheckOutcome,
    /// Wall-clock time of the check.
    pub duration: Duration,
    /// Whether this cell was skipped (cancelled because an earlier
    /// valuation of the same query already violated); skipped cells carry
    /// an empty `Unknown` outcome and a zero duration.
    pub skipped: bool,
    /// How the cell ended up in the report; `skipped` is `true` exactly
    /// when this is [`CellDisposition::Skipped`].
    pub disposition: CellDisposition,
}

impl SweepOutcome {
    /// A cell that was actually checked; an interrupted check outcome
    /// (cancel, deadline or budget tripped mid-cell) is recorded as an
    /// [`CellDisposition::Interrupted`] cell with its partial counts.
    fn completed(params: ParamValuation, outcome: CheckOutcome, duration: Duration) -> Self {
        let disposition = if outcome.is_interrupted() {
            CellDisposition::Interrupted
        } else {
            CellDisposition::Completed
        };
        SweepOutcome {
            params,
            outcome,
            duration,
            skipped: false,
            disposition,
        }
    }

    /// The explicit record of a cancelled grid cell.
    fn skipped(params: ParamValuation) -> Self {
        SweepOutcome {
            params,
            outcome: CheckOutcome::unknown(0, 0, "skipped: an earlier valuation violated"),
            duration: Duration::ZERO,
            skipped: true,
            disposition: CellDisposition::Skipped,
        }
    }

    /// The explicit record of a cell a job signal stopped the sweep from
    /// ever dispatching.
    fn interrupted(params: ParamValuation, kind: InterruptKind) -> Self {
        SweepOutcome {
            params,
            outcome: CheckOutcome::interrupted(0, 0, kind),
            duration: Duration::ZERO,
            skipped: false,
            disposition: CellDisposition::Interrupted,
        }
    }

    /// The explicit record of a cell that panicked twice.
    fn failed(params: ParamValuation, detail: String, duration: Duration) -> Self {
        SweepOutcome {
            params,
            outcome: CheckOutcome::unknown(0, 0, format!("failed: {detail}")),
            duration,
            skipped: false,
            disposition: CellDisposition::Failed,
        }
    }
}

/// The aggregated result of one query over the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Name of the query.
    pub spec_name: String,
    /// The query rendered in Table-III notation.
    pub formula: String,
    /// Per-valuation outcomes, one per admissible valuation of the sweep;
    /// cells after a query's first violation are explicit skipped records.
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepReport {
    /// The overall status: `Violated` if any valuation produced a
    /// counterexample, `Unknown` if some check was inconclusive and none was
    /// violated, `Holds` otherwise.  Skipped cells never influence the
    /// status.
    pub fn status(&self) -> CheckStatus {
        if self
            .outcomes
            .iter()
            .any(|o| o.outcome.status == CheckStatus::Violated)
        {
            CheckStatus::Violated
        } else if self
            .outcomes
            .iter()
            .any(|o| !o.skipped && o.outcome.status == CheckStatus::Unknown)
        {
            CheckStatus::Unknown
        } else {
            CheckStatus::Holds
        }
    }

    /// Whether the query holds on every member of the sweep.
    pub fn holds(&self) -> bool {
        self.status() == CheckStatus::Holds
    }

    /// The first violating outcome, if any.
    pub fn first_violation(&self) -> Option<&SweepOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.outcome.status == CheckStatus::Violated)
    }

    /// Number of grid cells that were skipped after an earlier violation.
    pub fn skipped_cells(&self) -> usize {
        self.outcomes.iter().filter(|o| o.skipped).count()
    }

    /// Number of grid cells a job signal interrupted (mid-cell or before
    /// dispatch); these are the cells [`resume_sweep`] recomputes.
    pub fn interrupted_cells(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == CellDisposition::Interrupted)
            .count()
    }

    /// Number of grid cells that panicked twice and were given up on.
    pub fn failed_cells(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == CellDisposition::Failed)
            .count()
    }

    /// Total number of explored states across the sweep (skipped cells
    /// contribute nothing).
    pub fn total_states(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.outcome.states_explored)
            .sum()
    }

    /// Total wall-clock time across the sweep.
    pub fn total_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.duration).sum()
    }
}

/// Resolves a sweep thread budget: an explicit non-zero request wins,
/// otherwise `CC_SWEEP_THREADS`, otherwise the available parallelism,
/// cached process-wide like the other auto knobs.
pub fn sweep_thread_budget(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    crate::explorer::cached_env_usize(&AUTO, "CC_SWEEP_THREADS", || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Renders a panic payload for a failed-cell record.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one cell attempt under `catch_unwind`, recovering the panic message
/// plus the deepest available backtrace on failure — the poisoned pool
/// lane's if the panic unwound out of a worker, the sweep thread's own
/// otherwise.
fn catch_cell(
    pool: &WorkerPool,
    attempt: impl FnOnce() -> CheckOutcome,
) -> Result<CheckOutcome, String> {
    match catch_unwind(AssertUnwindSafe(attempt)) {
        Ok(outcome) => Ok(outcome),
        Err(payload) => {
            let message = payload_message(payload.as_ref());
            let backtrace = pool
                .take_panic_backtrace()
                .or_else(crate::pool::take_thread_backtrace);
            Err(match backtrace {
                Some(bt) => format!("{message}\n{bt}"),
                None => message,
            })
        }
    }
}

/// The sweep-cell retry policy: PR 6's one-shot fresh-pool retry expressed
/// through the shared [`crate::retry`] supervisor — two attempts, no
/// backoff (a panic is not a transient overload; sleeping would only delay
/// the sibling cells' worker).
fn cell_retry_policy() -> RetryPolicy {
    RetryPolicy::attempts(2)
}

/// One cell of the `query × valuation` grid, run on the sweep worker's
/// shared pool (one pool per worker, reused across all its cells).  A
/// panicking cell fails alone: the shared [`crate::retry`] supervisor
/// re-dispatches it exactly once on a fresh pool and a fresh checker, and
/// only a second panic produces a [`CellDisposition::Failed`] record.
fn run_one(
    sys: &CounterSystem,
    spec: &Spec,
    options: CheckerOptions,
    pool: &WorkerPool,
    job: Option<&JobSignals>,
) -> SweepOutcome {
    let started = Instant::now();
    let result = run_with_retry(&cell_retry_policy(), 0, |attempt| {
        let fresh;
        let attempt_pool = if attempt == 0 {
            pool
        } else {
            fresh = WorkerPool::new(resolved_workers(&options));
            &fresh
        };
        catch_cell(attempt_pool, || {
            crate::fault::maybe_fire(crate::fault::SITE_SWEEP_CELL);
            let mut checker = ExplicitChecker::with_pool(sys, options, attempt_pool);
            checker.set_signals(job);
            checker.check(spec)
        })
    });
    match result {
        Ok(outcome) => SweepOutcome::completed(sys.params().clone(), outcome, started.elapsed()),
        Err(detail) => SweepOutcome::failed(sys.params().clone(), detail, started.elapsed()),
    }
}

/// One cached-path cell: served by the valuation's shared checker (and its
/// graph memo) on the happy path; a panicking cell is re-dispatched once on
/// a fresh pool and a fresh lineage-free checker — the fresh-rebuild path —
/// before being reported failed.
fn run_cached_cell(
    checker: &ExplicitChecker,
    pool: &WorkerPool,
    sys: &CounterSystem,
    spec: &Spec,
    options: CheckerOptions,
    job: Option<&JobSignals>,
) -> SweepOutcome {
    let started = Instant::now();
    let result = run_with_retry(&cell_retry_policy(), 0, |attempt| {
        if attempt == 0 {
            catch_cell(pool, || {
                crate::fault::maybe_fire(crate::fault::SITE_SWEEP_CELL);
                checker.check_cached(spec)
            })
        } else {
            let fresh = WorkerPool::new(resolved_workers(&options));
            catch_cell(&fresh, || {
                crate::fault::maybe_fire(crate::fault::SITE_SWEEP_CELL);
                let mut retry = ExplicitChecker::with_pool(sys, options, &fresh);
                retry.set_signals(job);
                retry.check_cached(spec)
            })
        }
    });
    match result {
        Ok(outcome) => SweepOutcome::completed(sys.params().clone(), outcome, started.elapsed()),
        Err(detail) => SweepOutcome::failed(sys.params().clone(), detail, started.elapsed()),
    }
}

/// Checks each query on every valuation of the sweep, in parallel.
///
/// The model must be a single-round model (Definition 3).  Valuations that
/// are not admissible for the model's environment are dropped before the
/// grid is formed.  The report for each query lists one outcome per grid
/// cell in valuation order; cells after the query's first violation are
/// explicit skipped records, exactly as a sequential sweep would have left
/// them unchecked.
pub fn check_over_sweep(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
) -> Vec<SweepReport> {
    check_over_sweep_with_threads(model, specs, valuations, options, sweep_thread_budget(0))
}

/// [`check_over_sweep`] with an explicit total thread budget, bypassing the
/// `CC_SWEEP_THREADS` environment lookup.  The budget is split between grid
/// cells and in-check workers (see the module docs); `1` forces the fully
/// sequential path.
pub fn check_over_sweep_with_threads(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
) -> Vec<SweepReport> {
    check_over_sweep_with_stats(model, specs, valuations, options, threads).0
}

/// [`check_over_sweep_with_threads`] plus the aggregated graph-cache
/// accounting of the sweep (merged in valuation order; empty when the cache
/// is disabled).
pub fn check_over_sweep_with_stats(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
) -> (Vec<SweepReport>, GraphCacheStats) {
    sweep_impl(model, specs, valuations, options, threads, None, None)
}

/// [`check_over_sweep_with_threads`] under a job lifecycle: the sweep polls
/// `cancel` and the budget's deadline before every cell (and the cell's own
/// exploration polls them at wave boundaries, so cancellation latency is
/// one wave), and applies the budget's state/transition/resident caps to
/// each cell individually.  Cells the sweep never reached are explicit
/// [`CellDisposition::Interrupted`] records; feed the reports to
/// [`resume_sweep`] to continue without redoing completed cells.  With a
/// never-cancelled token and an unlimited budget this is exactly
/// [`check_over_sweep_with_stats`].
pub fn check_over_sweep_cancellable(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
    cancel: &CancelToken,
    budget: JobBudget,
) -> (Vec<SweepReport>, GraphCacheStats) {
    let signals = JobSignals::new(cancel.clone(), budget);
    sweep_impl(
        model,
        specs,
        valuations,
        options,
        threads,
        Some(&signals),
        None,
    )
}

/// Resumes an interrupted sweep from its reports: completed cells of
/// `prior` are carried over verbatim (outcome, duration and all), their
/// violations keep cancelling later cells of the same query, and only
/// interrupted, failed and skipped-by-violation cells are recomputed or
/// re-derived.  Cells are deterministic and recomputed whole, so a resumed
/// sweep that runs to completion is bit-identical to an uninterrupted
/// [`check_over_sweep_cancellable`] run; the returned cache stats account
/// only the resumed work.  `prior` must come from a sweep of the same
/// model, specs and valuations (the grid shapes are asserted).
#[allow(clippy::too_many_arguments)]
pub fn resume_sweep(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
    cancel: &CancelToken,
    budget: JobBudget,
    prior: &[SweepReport],
) -> (Vec<SweepReport>, GraphCacheStats) {
    let signals = JobSignals::new(cancel.clone(), budget);
    sweep_impl(
        model,
        specs,
        valuations,
        options,
        threads,
        Some(&signals),
        Some(prior),
    )
}

/// The shared sweep driver behind the plain, cancellable and resuming entry
/// points: forms the grid, prefills it from a resumed run, dispatches the
/// schedulers and assembles the deterministic reports.
fn sweep_impl(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
    job: Option<&JobSignals>,
    prior: Option<&[SweepReport]>,
) -> (Vec<SweepReport>, GraphCacheStats) {
    let systems: Vec<CounterSystem> = valuations
        .iter()
        .filter_map(|v| CounterSystem::new(model.clone(), v.clone()).ok())
        .collect();
    let width = systems.len();
    let total = specs.len() * width;
    let budget = threads.max(1);
    let use_cache = resolved_graph_cache(&options);
    // with the graph cache the scheduled unit is a whole valuation (its
    // spec slice shares cached graphs), otherwise a single grid cell
    let items = if use_cache { width } else { total };
    let outer = budget.min(items.max(1));
    // the budget left over after covering the work items goes into each
    // cell, unless the caller pinned an in-check worker count explicitly
    let cell_options = if options.workers == 0 {
        options.with_workers((budget / outer.max(1)).max(1))
    } else {
        options
    };

    // one slot per (spec, valuation) cell, filled by the workers, plus one
    // cache-accounting slot per valuation
    let mut slots: Vec<Option<SweepOutcome>> = Vec::new();
    slots.resize_with(total, || None);
    let mut stats_slots: Vec<Option<GraphCacheStats>> = Vec::new();
    stats_slots.resize_with(width, || None);

    // resume: completed cells of the prior run are carried over verbatim;
    // interrupted, failed and skipped cells stay empty and are recomputed
    // (or re-derived by the assembly below)
    if let Some(prior) = prior {
        assert_eq!(
            prior.len(),
            specs.len(),
            "resume_sweep: prior reports do not match the spec slice"
        );
        for (s, report) in prior.iter().enumerate() {
            assert_eq!(
                report.outcomes.len(),
                width,
                "resume_sweep: prior grid width does not match the valuations"
            );
            for (v, cell) in report.outcomes.iter().enumerate() {
                if cell.disposition == CellDisposition::Completed {
                    slots[s * width + v] = Some(cell.clone());
                }
            }
        }
    }
    // violations carried over from a resumed run keep cancelling the rest
    // of their row, exactly as if this run had produced them
    let violated_seed: Vec<usize> = (0..specs.len())
        .map(|s| {
            slots[s * width..(s + 1) * width]
                .iter()
                .position(|slot| {
                    slot.as_ref()
                        .is_some_and(|c| c.outcome.status == CheckStatus::Violated)
                })
                .unwrap_or(usize::MAX)
        })
        .collect();

    if use_cache {
        run_cached_batches(
            specs,
            &systems,
            cell_options,
            outer,
            job,
            &violated_seed,
            &mut slots,
            &mut stats_slots,
        );
    } else if outer <= 1 || total <= 1 {
        // sequential fast path: one pool for the whole grid, skip a query's
        // remaining valuations after a violation, like the parallel
        // scheduler below
        let pool = WorkerPool::new(resolved_workers(&cell_options));
        let mut violated_at = violated_seed.clone();
        'grid: for (s, spec) in specs.iter().enumerate() {
            for (v, sys) in systems.iter().enumerate() {
                if violated_at[s] < v || slots[s * width + v].is_some() {
                    continue; // an earlier valuation violated, or resumed
                }
                if job.is_some_and(|j| j.fast_stop().is_some()) {
                    break 'grid;
                }
                let cell = run_one(sys, spec, cell_options, &pool, job);
                if cell.outcome.status == CheckStatus::Violated {
                    violated_at[s] = violated_at[s].min(v);
                }
                slots[s * width + v] = Some(cell);
            }
        }
    } else {
        // a lock-free work queue over the grid; `violated_at[s]` records the
        // smallest violating valuation index of query `s` so far, letting
        // workers cancel cells that a sequential sweep would never reach.
        // Each sweep worker owns one persistent in-check pool, shared
        // across every grid cell it processes.
        let next = AtomicUsize::new(0);
        let cell_workers = resolved_workers(&cell_options);
        let violated_at: Vec<AtomicUsize> =
            violated_seed.iter().map(|&v| AtomicUsize::new(v)).collect();
        let slot_refs: Vec<Mutex<&mut Option<SweepOutcome>>> =
            slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| {
                    let pool = WorkerPool::new(cell_workers);
                    loop {
                        if job.is_some_and(|j| j.fast_stop().is_some()) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let (s, v) = (i / width, i % width);
                        if v > violated_at[s].load(Ordering::Acquire) {
                            continue; // cancelled: an earlier valuation violated
                        }
                        if slot_refs[i].lock().unwrap().is_some() {
                            continue; // carried over from the resumed run
                        }
                        let cell = run_one(&systems[v], &specs[s], cell_options, &pool, job);
                        if cell.outcome.status == CheckStatus::Violated {
                            violated_at[s].fetch_min(v, Ordering::AcqRel);
                        }
                        **slot_refs[i].lock().unwrap() = Some(cell);
                    }
                });
            }
        });
    }

    // cache accounting, merged in valuation order regardless of which
    // worker processed which valuation
    let mut stats = GraphCacheStats::default();
    for s in stats_slots.into_iter().flatten() {
        stats.merge(&s);
    }

    // deterministic assembly: valuation order; every cell past the query's
    // first violation becomes an explicit skipped record, even if a parallel
    // worker happened to compute it before the cancellation landed, and
    // every cell a job signal stopped the schedulers from reaching becomes
    // an explicit interrupted record
    let trip = job.and_then(|j| j.fast_stop());
    let reports = specs
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let row = &mut slots[s * width..(s + 1) * width];
            let first_violation = row.iter().position(|slot| {
                slot.as_ref()
                    .is_some_and(|c| c.outcome.status == CheckStatus::Violated)
            });
            let outcomes = row
                .iter_mut()
                .enumerate()
                .map(|(v, slot)| {
                    let past_violation = first_violation.is_some_and(|fv| v > fv);
                    match slot.take() {
                        Some(cell) if !past_violation => cell,
                        _ if past_violation => SweepOutcome::skipped(systems[v].params().clone()),
                        _ => match trip {
                            Some(kind) => {
                                SweepOutcome::interrupted(systems[v].params().clone(), kind)
                            }
                            // unreachable without a live trip signal; account
                            // the cell as skipped rather than dropping it
                            None => SweepOutcome::skipped(systems[v].params().clone()),
                        },
                    }
                })
                .collect();
            SweepReport {
                spec_name: spec.name().to_string(),
                formula: spec.formula(model),
                outcomes,
            }
        })
        .collect();
    (reports, stats)
}

/// The graph-cached scheduler: each work item is one valuation, whose whole
/// spec slice runs on one [`ExplicitChecker`] so the obligations of a start
/// restriction share one cached reachability graph.  Specs already violated
/// at an earlier valuation are left unchecked (the assembly marks them
/// skipped), exactly like the per-cell scheduler.
///
/// Valuations are dispatched in *valuation order*: a parallel budget splits
/// the grid into contiguous valuation blocks (one sweep worker, one
/// in-check pool and one [`GraphLineage`] per block) instead of striding a
/// shared queue, so the cells of every start-restriction group that one
/// worker processes are guard-adjacent — the precondition for the
/// incremental sweep's reuse/extend classification — and the set of cells a
/// cancellation can race with is a stable function of the budget, not of
/// thread timing.
#[allow(clippy::too_many_arguments)]
fn run_cached_batches(
    specs: &[Spec],
    systems: &[CounterSystem],
    cell_options: CheckerOptions,
    outer: usize,
    job: Option<&JobSignals>,
    violated_seed: &[usize],
    slots: &mut [Option<SweepOutcome>],
    stats_slots: &mut [Option<GraphCacheStats>],
) {
    let width = systems.len();
    if outer <= 1 || width <= 1 {
        let pool = WorkerPool::new(resolved_workers(&cell_options));
        let lineage = GraphLineage::new();
        let mut violated_at = violated_seed.to_vec();
        'grid: for (v, sys) in systems.iter().enumerate() {
            if job.is_some_and(|j| j.fast_stop().is_some()) {
                break 'grid;
            }
            let mut checker =
                ExplicitChecker::with_pool_and_lineage(sys, cell_options, &pool, &lineage);
            checker.set_signals(job);
            for (s, spec) in specs.iter().enumerate() {
                if violated_at[s] < v || slots[s * width + v].is_some() {
                    continue; // an earlier valuation violated, or resumed
                }
                if job.is_some_and(|j| j.fast_stop().is_some()) {
                    stats_slots[v] = Some(checker.cache_stats());
                    break 'grid;
                }
                let cell = run_cached_cell(&checker, &pool, sys, spec, cell_options, job);
                if cell.outcome.status == CheckStatus::Violated {
                    violated_at[s] = violated_at[s].min(v);
                }
                slots[s * width + v] = Some(cell);
            }
            let mut stats = checker.cache_stats();
            // the checker's group memo pins the lineage graphs via Rc;
            // parking requires sole ownership, so drop it first
            drop(checker);
            let (full, compact) = lineage.park_all();
            stats.parked_full_bytes += full;
            stats.parked_compact_bytes += compact;
            stats_slots[v] = Some(stats);
        }
    } else {
        let cell_workers = resolved_workers(&cell_options);
        let violated_at: Vec<AtomicUsize> =
            violated_seed.iter().map(|&v| AtomicUsize::new(v)).collect();
        let block = width.div_ceil(outer);
        let slot_refs: Vec<Mutex<&mut Option<SweepOutcome>>> =
            slots.iter_mut().map(Mutex::new).collect();
        let stats_refs: Vec<Mutex<&mut Option<GraphCacheStats>>> =
            stats_slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for worker in 0..outer {
                let range = worker * block..((worker + 1) * block).min(width);
                if range.is_empty() {
                    break;
                }
                let (violated_at, slot_refs, stats_refs) = (&violated_at, &slot_refs, &stats_refs);
                scope.spawn(move || {
                    let pool = WorkerPool::new(cell_workers);
                    let lineage = GraphLineage::new();
                    'block: for v in range {
                        if job.is_some_and(|j| j.fast_stop().is_some()) {
                            break 'block;
                        }
                        let sys = &systems[v];
                        let mut checker = ExplicitChecker::with_pool_and_lineage(
                            sys,
                            cell_options,
                            &pool,
                            &lineage,
                        );
                        checker.set_signals(job);
                        for (s, spec) in specs.iter().enumerate() {
                            if violated_at[s].load(Ordering::Acquire) < v
                                || slot_refs[s * width + v].lock().unwrap().is_some()
                            {
                                continue; // violated earlier, or resumed
                            }
                            if job.is_some_and(|j| j.fast_stop().is_some()) {
                                **stats_refs[v].lock().unwrap() = Some(checker.cache_stats());
                                break 'block;
                            }
                            let cell =
                                run_cached_cell(&checker, &pool, sys, spec, cell_options, job);
                            if cell.outcome.status == CheckStatus::Violated {
                                violated_at[s].fetch_min(v, Ordering::AcqRel);
                            }
                            **slot_refs[s * width + v].lock().unwrap() = Some(cell);
                        }
                        let mut stats = checker.cache_stats();
                        // see the sequential path: the checker must release
                        // its Rc pins before the lineage can park
                        drop(checker);
                        let (full, compact) = lineage.park_all();
                        stats.parked_full_bytes += full;
                        stats.parked_compact_bytes += compact;
                        **stats_refs[v].lock().unwrap() = Some(stats);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{LocSet, StartRestriction};
    use ccta::BinValue;

    fn sweep_valuations() -> Vec<ParamValuation> {
        vec![
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![5, 1, 1, 1]),
            // inadmissible, must be skipped
            ParamValuation::new(vec![3, 1, 1, 1]),
        ]
    }

    #[test]
    fn sweep_aggregates_multiple_valuations() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
        ];
        let reports = check_over_sweep(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
        );
        assert_eq!(reports.len(), 2);

        let holds = &reports[0];
        assert!(holds.holds());
        assert_eq!(holds.status(), CheckStatus::Holds);
        // two admissible valuations were checked
        assert_eq!(holds.outcomes.len(), 2);
        assert_eq!(holds.skipped_cells(), 0);
        assert_eq!(holds.interrupted_cells(), 0);
        assert_eq!(holds.failed_cells(), 0);
        assert!(holds.total_states() > 0);
        assert!(holds.first_violation().is_none());
        assert!(!holds.formula.is_empty());

        let violated = &reports[1];
        assert_eq!(violated.status(), CheckStatus::Violated);
        // stops at the first violating valuation; the cancelled second cell
        // is reported explicitly instead of dropped
        assert_eq!(violated.outcomes.len(), 2);
        assert_eq!(violated.skipped_cells(), 1);
        assert!(violated.outcomes[0].outcome.is_violated());
        assert_eq!(violated.outcomes[0].disposition, CellDisposition::Completed);
        assert!(violated.outcomes[1].skipped);
        assert_eq!(violated.outcomes[1].disposition, CellDisposition::Skipped);
        assert_eq!(violated.outcomes[1].outcome.states_explored, 0);
        assert!(violated.first_violation().is_some());
        assert!(violated.total_time() >= Duration::ZERO);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        let parallel = check_over_sweep_with_threads(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
            4,
        );
        let sequential = check_over_sweep_with_threads(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
            1,
        );
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.spec_name, s.spec_name);
            assert_eq!(p.status(), s.status());
            assert_eq!(p.outcomes.len(), s.outcomes.len());
            for (po, so) in p.outcomes.iter().zip(&s.outcomes) {
                assert_eq!(po.params, so.params);
                assert_eq!(po.skipped, so.skipped);
                assert_eq!(po.disposition, so.disposition);
                assert_eq!(po.outcome.status, so.outcome.status);
                assert_eq!(po.outcome.states_explored, so.outcome.states_explored);
                assert_eq!(
                    po.outcome.transitions_explored,
                    so.outcome.transitions_explored
                );
            }
        }
    }

    #[test]
    fn thread_budget_feeds_in_check_workers() {
        // a 1-cell grid with a budget of 4 hands all four threads to the
        // single check; the result must match the sequential run exactly
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&model, "I1", &["I1"]),
        }];
        let valuations = [ParamValuation::new(vec![5, 1, 1, 1])];
        let wide = check_over_sweep_with_threads(
            &model,
            &specs,
            &valuations,
            CheckerOptions::default(),
            4,
        );
        let sequential = check_over_sweep_with_threads(
            &model,
            &specs,
            &valuations,
            CheckerOptions::sequential(),
            1,
        );
        assert_eq!(wide[0].status(), sequential[0].status());
        assert_eq!(wide[0].total_states(), sequential[0].total_states());
    }

    #[test]
    fn cancelled_sweep_accounts_every_grid_cell() {
        // A 2-query × 3-valuation grid where one query violates on its very
        // first valuation: whatever the thread budget — and whether the
        // cells run the plain or the wave-pooled in-check path — every grid
        // cell must be accounted for, as either a completed or an explicit
        // skipped outcome.
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
        ];
        let valuations = [
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![5, 1, 1, 1]),
            ParamValuation::new(vec![6, 1, 1, 1]),
        ];
        let grid_width = valuations.len();
        let option_sets = [
            CheckerOptions::default(),
            // wave-pooled path: pooled workers with single-node waves
            CheckerOptions::default().with_workers(2).with_wave_size(1),
            // both sides of the incremental-sweep knob: the lineage must
            // never change which cells are completed vs skipped
            CheckerOptions::default().with_incremental_sweep(true),
            CheckerOptions::default().with_incremental_sweep(false),
        ];
        for options in option_sets {
            for threads in [1, 2, 8] {
                let reports =
                    check_over_sweep_with_threads(&model, &specs, &valuations, options, threads);
                assert_eq!(reports.len(), specs.len());
                for report in &reports {
                    let completed = report
                        .outcomes
                        .iter()
                        .filter(|o| o.disposition == CellDisposition::Completed)
                        .count();
                    assert_eq!(
                        completed
                            + report.skipped_cells()
                            + report.interrupted_cells()
                            + report.failed_cells(),
                        grid_width,
                        "{} at budget {threads} lost a grid cell",
                        report.spec_name
                    );
                }
                // the violating query stops after its first valuation, so
                // exactly the remaining cells are skipped — at every budget
                assert_eq!(reports[0].status(), CheckStatus::Violated);
                assert_eq!(reports[0].skipped_cells(), grid_width - 1);
                assert!(reports[0].outcomes[0].outcome.is_violated());
                assert_eq!(reports[1].status(), CheckStatus::Holds);
                assert_eq!(reports[1].skipped_cells(), 0);
            }
        }

        // the job-lifecycle variant distinguishes *interrupted* cells (a
        // tripped cancel token stopped the sweep) from *skipped* ones (an
        // earlier violation of the same query): a pre-cancelled sweep must
        // interrupt every cell, and the four dispositions together must
        // still account for the whole grid
        let cancel = CancelToken::new();
        cancel.cancel();
        let (cancelled, _) = check_over_sweep_cancellable(
            &model,
            &specs,
            &valuations,
            CheckerOptions::default(),
            2,
            &cancel,
            JobBudget::unlimited(),
        );
        for report in &cancelled {
            assert_eq!(report.outcomes.len(), grid_width);
            assert_eq!(
                report.interrupted_cells(),
                grid_width,
                "{}: a pre-cancelled sweep must interrupt every cell",
                report.spec_name
            );
            assert_eq!(report.skipped_cells(), 0);
            assert_eq!(report.failed_cells(), 0);
            assert_eq!(report.status(), CheckStatus::Unknown);
            for cell in &report.outcomes {
                assert!(cell.outcome.is_interrupted());
                assert!(!cell.skipped);
            }
        }

        // resuming the fully-interrupted sweep completes it, bit-identical
        // to an uninterrupted cancellable run — which in turn matches the
        // plain sweep
        let (resumed, _) = resume_sweep(
            &model,
            &specs,
            &valuations,
            CheckerOptions::default(),
            2,
            &CancelToken::new(),
            JobBudget::unlimited(),
            &cancelled,
        );
        let (reference, _) = check_over_sweep_cancellable(
            &model,
            &specs,
            &valuations,
            CheckerOptions::default(),
            1,
            &CancelToken::new(),
            JobBudget::unlimited(),
        );
        assert_reports_identical(&resumed, &reference, "resumed vs uninterrupted");
        let plain = check_over_sweep_with_threads(
            &model,
            &specs,
            &valuations,
            CheckerOptions::default(),
            1,
        );
        assert_reports_identical(&reference, &plain, "cancellable vs plain");
    }

    #[test]
    fn cached_and_uncached_sweeps_agree() {
        // the batched graph-cache scheduler and the per-cell scheduler must
        // produce reports of identical shape and verdict at every budget
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        for threads in [1, 4] {
            let (cached, stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &sweep_valuations(),
                CheckerOptions::default().with_graph_cache(true),
                threads,
            );
            let (uncached, no_stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &sweep_valuations(),
                CheckerOptions::default().with_graph_cache(false),
                threads,
            );
            assert!(stats.graphs_built() > 0);
            // 3 specs x 2 admissible valuations, minus the cell skipped
            // after the first violation — which a parallel worker may have
            // computed anyway before the cancellation landed
            let checked = stats.specs_served() + stats.uncached_specs;
            assert!((5..=6).contains(&checked), "{checked}");
            assert_eq!(no_stats.graphs_built(), 0);
            for (c, u) in cached.iter().zip(&uncached) {
                assert_eq!(c.spec_name, u.spec_name);
                assert_eq!(c.status(), u.status(), "{} at {threads}", c.spec_name);
                assert_eq!(c.outcomes.len(), u.outcomes.len());
                for (co, uo) in c.outcomes.iter().zip(&u.outcomes) {
                    assert_eq!(co.params, uo.params);
                    assert_eq!(co.skipped, uo.skipped, "{}", c.spec_name);
                    assert_eq!(co.disposition, uo.disposition, "{}", c.spec_name);
                    assert_eq!(co.outcome.status, uo.outcome.status, "{}", c.spec_name);
                }
            }
        }
    }

    /// Deep equality of two sweep reports: statuses, per-cell outcomes,
    /// dispositions, counts and counterexample schedules, step for step.
    fn assert_reports_identical(a: &[SweepReport], b: &[SweepReport], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}");
        for (ra, rb) in a.iter().zip(b) {
            assert_eq!(ra.spec_name, rb.spec_name, "{ctx}");
            assert_eq!(ra.status(), rb.status(), "{ctx}: {}", ra.spec_name);
            assert_eq!(ra.outcomes.len(), rb.outcomes.len(), "{ctx}");
            for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
                let cell = format!("{ctx}: {} at {}", ra.spec_name, oa.params);
                assert_eq!(oa.params, ob.params, "{cell}");
                assert_eq!(oa.skipped, ob.skipped, "{cell}");
                assert_eq!(oa.disposition, ob.disposition, "{cell}");
                assert_eq!(oa.outcome.status, ob.outcome.status, "{cell}");
                assert_eq!(
                    oa.outcome.states_explored, ob.outcome.states_explored,
                    "{cell}"
                );
                assert_eq!(
                    oa.outcome.transitions_explored, ob.outcome.transitions_explored,
                    "{cell}"
                );
                assert_eq!(oa.outcome.detail, ob.outcome.detail, "{cell}");
                match (&oa.outcome.counterexample, &ob.outcome.counterexample) {
                    (None, None) => {}
                    (Some(ca), Some(cb)) => {
                        assert_eq!(ca.initial, cb.initial, "{cell}");
                        assert_eq!(ca.schedule.steps(), cb.schedule.steps(), "{cell}");
                    }
                    _ => panic!("counterexample presence differs: {cell}"),
                }
            }
        }
    }

    #[test]
    fn incremental_and_fresh_sweeps_are_bit_identical() {
        // a guard-adjacent grid exercising every lineage classification:
        // [4,1,1,1] -> [7,1,1,1] changes the system size (rebuild),
        // -> [7,1,1,1] repeats the bounds (pure reuse),
        // -> [7,2,1,1] lowers the n-t-f quorum (relax-only extension),
        // -> [7,1,1,1] raises it back (tighten, in-place prune)
        let model = fixtures::voting_model().single_round().unwrap();
        let valuations = [
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![7, 1, 1, 1]),
            ParamValuation::new(vec![7, 1, 1, 1]),
            ParamValuation::new(vec![7, 2, 1, 1]),
            ParamValuation::new(vec![7, 1, 1, 1]),
        ];
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::CoverNever {
                name: "cover".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                trigger: LocSet::from_names(&model, "E0", &["E0"]),
                forbidden: LocSet::from_names(&model, "E1", &["E1"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        for threads in [1, 3] {
            let (incremental, inc_stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                CheckerOptions::default()
                    .with_graph_cache(true)
                    .with_incremental_sweep(true),
                threads,
            );
            let (fresh, fresh_stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                CheckerOptions::default()
                    .with_graph_cache(true)
                    .with_incremental_sweep(false),
                threads,
            );
            assert_reports_identical(&incremental, &fresh, &format!("threads {threads}"));
            assert_eq!(fresh_stats.reused_groups(), 0);
            assert_eq!(fresh_stats.extended_groups(), 0);
            if threads == 1 {
                // one worker walks the whole grid in valuation order, so
                // every classification fires at least once
                assert!(inc_stats.reused_groups() > 0, "{inc_stats}");
                assert!(inc_stats.extended_groups() > 0, "{inc_stats}");
                assert!(inc_stats.rebuilt_groups() > 0, "{inc_stats}");
                assert!(inc_stats.pruned_groups() > 0, "{inc_stats}");
                assert!(inc_stats.memo_hits() > 0, "{inc_stats}");
                assert!(inc_stats.seed_frontier_total() > 0, "{inc_stats}");
                assert!(inc_stats.resident_bytes() > 0, "{inc_stats}");
                // the end-of-valuation parking pass must have compacted at
                // least one resident graph
                assert!(inc_stats.parked_full_bytes > 0, "{inc_stats}");
                assert!(
                    inc_stats.parked_compact_bytes < inc_stats.parked_full_bytes,
                    "{inc_stats}"
                );
                assert!(format!("{inc_stats}").contains("lineage"));
            }
        }
    }

    #[test]
    fn unknown_status_propagates() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&model, "I1", &["I1"]),
        }];
        let reports = check_over_sweep(
            &model,
            &specs,
            &[ParamValuation::new(vec![4, 1, 1, 1])],
            CheckerOptions {
                max_states: 1,
                max_transitions: 10,
                ..CheckerOptions::default()
            },
        );
        assert_eq!(reports[0].status(), CheckStatus::Unknown);
        assert!(!reports[0].holds());
    }
}
