//! Checking queries over a sweep of admissible parameter valuations.
//!
//! ByMC establishes each query for *all* admissible parameters.  The
//! reproduction instead checks every query on a family of small admissible
//! valuations (the sweep); a query "holds" if it holds on every member of the
//! sweep and is "violated" as soon as one member yields a counterexample.

use crate::explicit::{CheckerOptions, ExplicitChecker};
use crate::result::{CheckOutcome, CheckStatus};
use crate::spec::Spec;
use ccta::{ParamValuation, SystemModel};
use cccounter::CounterSystem;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The outcome of one query on one parameter valuation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The parameter valuation checked.
    pub params: ParamValuation,
    /// The outcome of the check.
    pub outcome: CheckOutcome,
    /// Wall-clock time of the check.
    pub duration: Duration,
}

/// The aggregated result of one query over the whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Name of the query.
    pub spec_name: String,
    /// The query rendered in Table-III notation.
    pub formula: String,
    /// Per-valuation outcomes (checking stops at the first violation).
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepReport {
    /// The overall status: `Violated` if any valuation produced a
    /// counterexample, `Unknown` if some check was inconclusive and none was
    /// violated, `Holds` otherwise.
    pub fn status(&self) -> CheckStatus {
        if self
            .outcomes
            .iter()
            .any(|o| o.outcome.status == CheckStatus::Violated)
        {
            CheckStatus::Violated
        } else if self
            .outcomes
            .iter()
            .any(|o| o.outcome.status == CheckStatus::Unknown)
        {
            CheckStatus::Unknown
        } else {
            CheckStatus::Holds
        }
    }

    /// Whether the query holds on every member of the sweep.
    pub fn holds(&self) -> bool {
        self.status() == CheckStatus::Holds
    }

    /// The first violating outcome, if any.
    pub fn first_violation(&self) -> Option<&SweepOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.outcome.status == CheckStatus::Violated)
    }

    /// Total number of explored states across the sweep.
    pub fn total_states(&self) -> usize {
        self.outcomes.iter().map(|o| o.outcome.states_explored).sum()
    }

    /// Total wall-clock time across the sweep.
    pub fn total_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.duration).sum()
    }
}

/// Checks each query on every valuation of the sweep.
///
/// The model must be a single-round model (Definition 3).  Valuations that
/// are not admissible for the model's environment are skipped.  Checking of a
/// query stops at its first violation.
pub fn check_over_sweep(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
) -> Vec<SweepReport> {
    let systems: Vec<CounterSystem> = valuations
        .iter()
        .filter_map(|v| CounterSystem::new(model.clone(), v.clone()).ok())
        .collect();
    specs
        .iter()
        .map(|spec| {
            let mut outcomes = Vec::new();
            for sys in &systems {
                let started = Instant::now();
                let checker = ExplicitChecker::with_options(sys, options);
                let outcome = checker.check(spec);
                let violated = outcome.status == CheckStatus::Violated;
                outcomes.push(SweepOutcome {
                    params: sys.params().clone(),
                    outcome,
                    duration: started.elapsed(),
                });
                if violated {
                    break;
                }
            }
            SweepReport {
                spec_name: spec.name().to_string(),
                formula: spec.formula(model),
                outcomes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{LocSet, StartRestriction};
    use ccta::BinValue;

    fn sweep_valuations() -> Vec<ParamValuation> {
        vec![
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![5, 1, 1, 1]),
            // inadmissible, must be skipped
            ParamValuation::new(vec![3, 1, 1, 1]),
        ]
    }

    #[test]
    fn sweep_aggregates_multiple_valuations() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
        ];
        let reports = check_over_sweep(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
        );
        assert_eq!(reports.len(), 2);

        let holds = &reports[0];
        assert!(holds.holds());
        assert_eq!(holds.status(), CheckStatus::Holds);
        // two admissible valuations were checked
        assert_eq!(holds.outcomes.len(), 2);
        assert!(holds.total_states() > 0);
        assert!(holds.first_violation().is_none());
        assert!(!holds.formula.is_empty());

        let violated = &reports[1];
        assert_eq!(violated.status(), CheckStatus::Violated);
        // stops at the first violating valuation
        assert_eq!(violated.outcomes.len(), 1);
        assert!(violated.first_violation().is_some());
        assert!(violated.total_time() >= Duration::ZERO);
    }

    #[test]
    fn unknown_status_propagates() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&model, "I1", &["I1"]),
        }];
        let reports = check_over_sweep(
            &model,
            &specs,
            &[ParamValuation::new(vec![4, 1, 1, 1])],
            CheckerOptions {
                max_states: 1,
                max_transitions: 10,
            },
        );
        assert_eq!(reports[0].status(), CheckStatus::Unknown);
        assert!(!reports[0].holds());
    }
}
