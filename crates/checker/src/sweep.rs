//! Checking queries over a sweep of admissible parameter valuations.
//!
//! ByMC establishes each query for *all* admissible parameters.  The
//! reproduction instead checks every query on a family of small admissible
//! valuations (the sweep); a query "holds" if it holds on every member of the
//! sweep and is "violated" as soon as one member yields a counterexample.
//!
//! # Parallelism
//!
//! The `query × valuation` grid is embarrassingly parallel, so
//! [`check_over_sweep`] fans the individual checks out over a scoped worker
//! pool (one worker per available core by default; override with the
//! `CC_SWEEP_THREADS` environment variable, `1` forces the sequential
//! path).  Reports keep the deterministic sequential semantics: outcomes are
//! assembled in valuation order and each query's outcome list is truncated
//! at its first violation, exactly as if the valuations had been checked one
//! by one.  A query's remaining valuations are cancelled (skipped) as soon
//! as an earlier valuation finds a violation.

use crate::explicit::{CheckerOptions, ExplicitChecker};
use crate::result::{CheckOutcome, CheckStatus};
use crate::spec::Spec;
use cccounter::CounterSystem;
use ccta::{ParamValuation, SystemModel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The outcome of one query on one parameter valuation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The parameter valuation checked.
    pub params: ParamValuation,
    /// The outcome of the check.
    pub outcome: CheckOutcome,
    /// Wall-clock time of the check.
    pub duration: Duration,
}

/// The aggregated result of one query over the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Name of the query.
    pub spec_name: String,
    /// The query rendered in Table-III notation.
    pub formula: String,
    /// Per-valuation outcomes (checking stops at the first violation).
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepReport {
    /// The overall status: `Violated` if any valuation produced a
    /// counterexample, `Unknown` if some check was inconclusive and none was
    /// violated, `Holds` otherwise.
    pub fn status(&self) -> CheckStatus {
        if self
            .outcomes
            .iter()
            .any(|o| o.outcome.status == CheckStatus::Violated)
        {
            CheckStatus::Violated
        } else if self
            .outcomes
            .iter()
            .any(|o| o.outcome.status == CheckStatus::Unknown)
        {
            CheckStatus::Unknown
        } else {
            CheckStatus::Holds
        }
    }

    /// Whether the query holds on every member of the sweep.
    pub fn holds(&self) -> bool {
        self.status() == CheckStatus::Holds
    }

    /// The first violating outcome, if any.
    pub fn first_violation(&self) -> Option<&SweepOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.outcome.status == CheckStatus::Violated)
    }

    /// Total number of explored states across the sweep.
    pub fn total_states(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.outcome.states_explored)
            .sum()
    }

    /// Total wall-clock time across the sweep.
    pub fn total_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.duration).sum()
    }
}

/// The number of sweep workers: `CC_SWEEP_THREADS` if set, otherwise the
/// available parallelism.
fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("CC_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One cell of the `query × valuation` grid.
fn run_one(sys: &CounterSystem, spec: &Spec, options: CheckerOptions) -> SweepOutcome {
    let started = Instant::now();
    let checker = ExplicitChecker::with_options(sys, options);
    let outcome = checker.check(spec);
    SweepOutcome {
        params: sys.params().clone(),
        outcome,
        duration: started.elapsed(),
    }
}

/// Checks each query on every valuation of the sweep, in parallel.
///
/// The model must be a single-round model (Definition 3).  Valuations that
/// are not admissible for the model's environment are skipped.  The report
/// for each query lists its outcomes in valuation order and stops at the
/// query's first violation, exactly like a sequential sweep.
pub fn check_over_sweep(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
) -> Vec<SweepReport> {
    check_over_sweep_with_threads(model, specs, valuations, options, sweep_threads())
}

/// [`check_over_sweep`] with an explicit worker count (`1` forces the
/// sequential path), bypassing the `CC_SWEEP_THREADS` environment lookup.
pub fn check_over_sweep_with_threads(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
) -> Vec<SweepReport> {
    let systems: Vec<CounterSystem> = valuations
        .iter()
        .filter_map(|v| CounterSystem::new(model.clone(), v.clone()).ok())
        .collect();
    let total = specs.len() * systems.len();
    let workers = threads.max(1).min(total.max(1));

    // one slot per (spec, valuation) cell, filled by the workers
    let mut slots: Vec<Option<SweepOutcome>> = Vec::new();
    slots.resize_with(total, || None);

    if workers <= 1 || total <= 1 {
        // sequential fast path: skip a query's remaining valuations after a
        // violation, like the parallel scheduler below
        for (s, spec) in specs.iter().enumerate() {
            for (v, sys) in systems.iter().enumerate() {
                let cell = run_one(sys, spec, options);
                let violated = cell.outcome.status == CheckStatus::Violated;
                slots[s * systems.len() + v] = Some(cell);
                if violated {
                    break;
                }
            }
        }
    } else {
        // a lock-free work queue over the grid; `violated_at[s]` records the
        // smallest violating valuation index of query `s` so far, letting
        // workers cancel cells that a sequential sweep would never reach
        let next = AtomicUsize::new(0);
        let violated_at: Vec<AtomicUsize> =
            specs.iter().map(|_| AtomicUsize::new(usize::MAX)).collect();
        let slot_refs: Vec<Mutex<&mut Option<SweepOutcome>>> =
            slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let (s, v) = (i / systems.len(), i % systems.len());
                    if v > violated_at[s].load(Ordering::Acquire) {
                        continue; // cancelled: an earlier valuation violated
                    }
                    let cell = run_one(&systems[v], &specs[s], options);
                    if cell.outcome.status == CheckStatus::Violated {
                        violated_at[s].fetch_min(v, Ordering::AcqRel);
                    }
                    **slot_refs[i].lock().unwrap() = Some(cell);
                });
            }
        });
    }

    // deterministic assembly: valuation order, truncated at first violation
    specs
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let mut outcomes = Vec::new();
            for v in 0..systems.len() {
                let Some(cell) = slots[s * systems.len() + v].take() else {
                    break;
                };
                let violated = cell.outcome.status == CheckStatus::Violated;
                outcomes.push(cell);
                if violated {
                    break;
                }
            }
            SweepReport {
                spec_name: spec.name().to_string(),
                formula: spec.formula(model),
                outcomes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{LocSet, StartRestriction};
    use ccta::BinValue;

    fn sweep_valuations() -> Vec<ParamValuation> {
        vec![
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![5, 1, 1, 1]),
            // inadmissible, must be skipped
            ParamValuation::new(vec![3, 1, 1, 1]),
        ]
    }

    #[test]
    fn sweep_aggregates_multiple_valuations() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
        ];
        let reports = check_over_sweep(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
        );
        assert_eq!(reports.len(), 2);

        let holds = &reports[0];
        assert!(holds.holds());
        assert_eq!(holds.status(), CheckStatus::Holds);
        // two admissible valuations were checked
        assert_eq!(holds.outcomes.len(), 2);
        assert!(holds.total_states() > 0);
        assert!(holds.first_violation().is_none());
        assert!(!holds.formula.is_empty());

        let violated = &reports[1];
        assert_eq!(violated.status(), CheckStatus::Violated);
        // stops at the first violating valuation
        assert_eq!(violated.outcomes.len(), 1);
        assert!(violated.first_violation().is_some());
        assert!(violated.total_time() >= Duration::ZERO);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        let parallel = check_over_sweep_with_threads(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
            4,
        );
        let sequential = check_over_sweep_with_threads(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
            1,
        );
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.spec_name, s.spec_name);
            assert_eq!(p.status(), s.status());
            assert_eq!(p.outcomes.len(), s.outcomes.len());
            for (po, so) in p.outcomes.iter().zip(&s.outcomes) {
                assert_eq!(po.params, so.params);
                assert_eq!(po.outcome.status, so.outcome.status);
                assert_eq!(po.outcome.states_explored, so.outcome.states_explored);
                assert_eq!(
                    po.outcome.transitions_explored,
                    so.outcome.transitions_explored
                );
            }
        }
    }

    #[test]
    fn unknown_status_propagates() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&model, "I1", &["I1"]),
        }];
        let reports = check_over_sweep(
            &model,
            &specs,
            &[ParamValuation::new(vec![4, 1, 1, 1])],
            CheckerOptions {
                max_states: 1,
                max_transitions: 10,
            },
        );
        assert_eq!(reports[0].status(), CheckStatus::Unknown);
        assert!(!reports[0].holds());
    }
}
