//! Checking queries over a sweep of admissible parameter valuations.
//!
//! ByMC establishes each query for *all* admissible parameters.  The
//! reproduction instead checks every query on a family of small admissible
//! valuations (the sweep); a query "holds" if it holds on every member of the
//! sweep and is "violated" as soon as one member yields a counterexample.
//!
//! # Two-level parallelism
//!
//! The `query × valuation` grid is embarrassingly parallel, and each cell's
//! exploration can itself run on multiple workers (see [`crate::explorer`]).
//! [`check_over_sweep`] therefore splits one *thread budget* across both
//! levels: enough outer workers to cover the grid, and the remaining factor
//! handed to each cell as in-check workers.  A 16-thread budget over a
//! 4-cell grid runs 4 cells concurrently with 4 workers each; a single huge
//! cell gets all 16 workers.  The budget comes from
//! [`check_over_sweep_with_threads`]'s argument, or (for
//! [`check_over_sweep`]) from the `CC_SWEEP_THREADS` environment variable,
//! falling back to the available parallelism; an explicit
//! [`CheckerOptions::workers`] setting always wins over the derived
//! per-cell worker count.
//!
//! Reports keep the deterministic sequential semantics regardless of any of
//! these knobs: outcomes are assembled in valuation order, and every grid
//! cell that a sequential sweep would never have reached (because an earlier
//! valuation of the same query violated) is reported as an explicit
//! *skipped* outcome — so each report accounts for every cell of the grid,
//! and cancelled work is visible instead of silently dropped.
//!
//! # Graph-cache batching
//!
//! With the reachability-graph cache enabled (the default, see the "Graph
//! cache" section of the crate docs), the unit of scheduled work is a whole
//! *valuation* rather than a single `(query, valuation)` cell: one
//! [`ExplicitChecker`] per valuation runs the full spec slice through
//! cached checks, so every query sharing a start restriction reuses one
//! exploration of that valuation's reachable graph.  Per-cell outcomes,
//! durations, skipped records and the deterministic assembly are unchanged;
//! [`check_over_sweep_with_stats`] additionally returns the aggregated
//! cache accounting in valuation order.

use crate::explicit::{CheckerOptions, ExplicitChecker};
use crate::explorer::{resolved_graph_cache, resolved_workers};
use crate::graph::GraphLineage;
use crate::pool::WorkerPool;
use crate::result::{CheckOutcome, CheckStatus, GraphCacheStats};
use crate::spec::Spec;
use cccounter::CounterSystem;
use ccta::{ParamValuation, SystemModel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The outcome of one query on one parameter valuation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The parameter valuation checked.
    pub params: ParamValuation,
    /// The outcome of the check.
    pub outcome: CheckOutcome,
    /// Wall-clock time of the check.
    pub duration: Duration,
    /// Whether this cell was skipped (cancelled because an earlier
    /// valuation of the same query already violated); skipped cells carry
    /// an empty `Unknown` outcome and a zero duration.
    pub skipped: bool,
}

impl SweepOutcome {
    /// The explicit record of a cancelled grid cell.
    fn skipped(params: ParamValuation) -> Self {
        SweepOutcome {
            params,
            outcome: CheckOutcome::unknown(0, 0, "skipped: an earlier valuation violated"),
            duration: Duration::ZERO,
            skipped: true,
        }
    }
}

/// The aggregated result of one query over the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Name of the query.
    pub spec_name: String,
    /// The query rendered in Table-III notation.
    pub formula: String,
    /// Per-valuation outcomes, one per admissible valuation of the sweep;
    /// cells after a query's first violation are explicit skipped records.
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepReport {
    /// The overall status: `Violated` if any valuation produced a
    /// counterexample, `Unknown` if some check was inconclusive and none was
    /// violated, `Holds` otherwise.  Skipped cells never influence the
    /// status.
    pub fn status(&self) -> CheckStatus {
        if self
            .outcomes
            .iter()
            .any(|o| o.outcome.status == CheckStatus::Violated)
        {
            CheckStatus::Violated
        } else if self
            .outcomes
            .iter()
            .any(|o| !o.skipped && o.outcome.status == CheckStatus::Unknown)
        {
            CheckStatus::Unknown
        } else {
            CheckStatus::Holds
        }
    }

    /// Whether the query holds on every member of the sweep.
    pub fn holds(&self) -> bool {
        self.status() == CheckStatus::Holds
    }

    /// The first violating outcome, if any.
    pub fn first_violation(&self) -> Option<&SweepOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.outcome.status == CheckStatus::Violated)
    }

    /// Number of grid cells that were skipped after an earlier violation.
    pub fn skipped_cells(&self) -> usize {
        self.outcomes.iter().filter(|o| o.skipped).count()
    }

    /// Total number of explored states across the sweep (skipped cells
    /// contribute nothing).
    pub fn total_states(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.outcome.states_explored)
            .sum()
    }

    /// Total wall-clock time across the sweep.
    pub fn total_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.duration).sum()
    }
}

/// Resolves a sweep thread budget: an explicit non-zero request wins,
/// otherwise `CC_SWEEP_THREADS`, otherwise the available parallelism,
/// cached process-wide like the other auto knobs.
pub fn sweep_thread_budget(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    crate::explorer::cached_env_usize(&AUTO, "CC_SWEEP_THREADS", || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// One cell of the `query × valuation` grid, run on the sweep worker's
/// shared pool (one pool per worker, reused across all its cells).
fn run_one(
    sys: &CounterSystem,
    spec: &Spec,
    options: CheckerOptions,
    pool: &WorkerPool,
) -> SweepOutcome {
    let started = Instant::now();
    let checker = ExplicitChecker::with_pool(sys, options, pool);
    let outcome = checker.check(spec);
    SweepOutcome {
        params: sys.params().clone(),
        outcome,
        duration: started.elapsed(),
        skipped: false,
    }
}

/// Checks each query on every valuation of the sweep, in parallel.
///
/// The model must be a single-round model (Definition 3).  Valuations that
/// are not admissible for the model's environment are dropped before the
/// grid is formed.  The report for each query lists one outcome per grid
/// cell in valuation order; cells after the query's first violation are
/// explicit skipped records, exactly as a sequential sweep would have left
/// them unchecked.
pub fn check_over_sweep(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
) -> Vec<SweepReport> {
    check_over_sweep_with_threads(model, specs, valuations, options, sweep_thread_budget(0))
}

/// [`check_over_sweep`] with an explicit total thread budget, bypassing the
/// `CC_SWEEP_THREADS` environment lookup.  The budget is split between grid
/// cells and in-check workers (see the module docs); `1` forces the fully
/// sequential path.
pub fn check_over_sweep_with_threads(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
) -> Vec<SweepReport> {
    check_over_sweep_with_stats(model, specs, valuations, options, threads).0
}

/// [`check_over_sweep_with_threads`] plus the aggregated graph-cache
/// accounting of the sweep (merged in valuation order; empty when the cache
/// is disabled).
pub fn check_over_sweep_with_stats(
    model: &SystemModel,
    specs: &[Spec],
    valuations: &[ParamValuation],
    options: CheckerOptions,
    threads: usize,
) -> (Vec<SweepReport>, GraphCacheStats) {
    let systems: Vec<CounterSystem> = valuations
        .iter()
        .filter_map(|v| CounterSystem::new(model.clone(), v.clone()).ok())
        .collect();
    let total = specs.len() * systems.len();
    let budget = threads.max(1);
    let use_cache = resolved_graph_cache(&options);
    // with the graph cache the scheduled unit is a whole valuation (its
    // spec slice shares cached graphs), otherwise a single grid cell
    let items = if use_cache { systems.len() } else { total };
    let outer = budget.min(items.max(1));
    // the budget left over after covering the work items goes into each
    // cell, unless the caller pinned an in-check worker count explicitly
    let cell_options = if options.workers == 0 {
        options.with_workers((budget / outer.max(1)).max(1))
    } else {
        options
    };

    // one slot per (spec, valuation) cell, filled by the workers, plus one
    // cache-accounting slot per valuation
    let mut slots: Vec<Option<SweepOutcome>> = Vec::new();
    slots.resize_with(total, || None);
    let mut stats_slots: Vec<Option<GraphCacheStats>> = Vec::new();
    stats_slots.resize_with(systems.len(), || None);

    if use_cache {
        run_cached_batches(
            specs,
            &systems,
            cell_options,
            outer,
            &mut slots,
            &mut stats_slots,
        );
    } else if outer <= 1 || total <= 1 {
        // sequential fast path: one pool for the whole grid, skip a query's
        // remaining valuations after a violation, like the parallel
        // scheduler below
        let pool = WorkerPool::new(resolved_workers(&cell_options));
        for (s, spec) in specs.iter().enumerate() {
            for (v, sys) in systems.iter().enumerate() {
                let cell = run_one(sys, spec, cell_options, &pool);
                let violated = cell.outcome.status == CheckStatus::Violated;
                slots[s * systems.len() + v] = Some(cell);
                if violated {
                    break;
                }
            }
        }
    } else {
        // a lock-free work queue over the grid; `violated_at[s]` records the
        // smallest violating valuation index of query `s` so far, letting
        // workers cancel cells that a sequential sweep would never reach.
        // Each sweep worker owns one persistent in-check pool, shared
        // across every grid cell it processes.
        let next = AtomicUsize::new(0);
        let cell_workers = resolved_workers(&cell_options);
        let violated_at: Vec<AtomicUsize> =
            specs.iter().map(|_| AtomicUsize::new(usize::MAX)).collect();
        let slot_refs: Vec<Mutex<&mut Option<SweepOutcome>>> =
            slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| {
                    let pool = WorkerPool::new(cell_workers);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let (s, v) = (i / systems.len(), i % systems.len());
                        if v > violated_at[s].load(Ordering::Acquire) {
                            continue; // cancelled: an earlier valuation violated
                        }
                        let cell = run_one(&systems[v], &specs[s], cell_options, &pool);
                        if cell.outcome.status == CheckStatus::Violated {
                            violated_at[s].fetch_min(v, Ordering::AcqRel);
                        }
                        **slot_refs[i].lock().unwrap() = Some(cell);
                    }
                });
            }
        });
    }

    // cache accounting, merged in valuation order regardless of which
    // worker processed which valuation
    let mut stats = GraphCacheStats::default();
    for s in stats_slots.into_iter().flatten() {
        stats.merge(&s);
    }

    // deterministic assembly: valuation order; every cell past the query's
    // first violation becomes an explicit skipped record, even if a parallel
    // worker happened to compute it before the cancellation landed
    let reports = specs
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let row = &mut slots[s * systems.len()..(s + 1) * systems.len()];
            let first_violation = row.iter().position(|slot| {
                slot.as_ref()
                    .is_some_and(|c| c.outcome.status == CheckStatus::Violated)
            });
            let outcomes = row
                .iter_mut()
                .enumerate()
                .map(|(v, slot)| match slot.take() {
                    Some(cell) if first_violation.is_none_or(|fv| v <= fv) => cell,
                    _ => SweepOutcome::skipped(systems[v].params().clone()),
                })
                .collect();
            SweepReport {
                spec_name: spec.name().to_string(),
                formula: spec.formula(model),
                outcomes,
            }
        })
        .collect();
    (reports, stats)
}

/// The graph-cached scheduler: each work item is one valuation, whose whole
/// spec slice runs on one [`ExplicitChecker`] so the obligations of a start
/// restriction share one cached reachability graph.  Specs already violated
/// at an earlier valuation are left unchecked (the assembly marks them
/// skipped), exactly like the per-cell scheduler.
///
/// Valuations are dispatched in *valuation order*: a parallel budget splits
/// the grid into contiguous valuation blocks (one sweep worker, one
/// in-check pool and one [`GraphLineage`] per block) instead of striding a
/// shared queue, so the cells of every start-restriction group that one
/// worker processes are guard-adjacent — the precondition for the
/// incremental sweep's reuse/extend classification — and the set of cells a
/// cancellation can race with is a stable function of the budget, not of
/// thread timing.
fn run_cached_batches(
    specs: &[Spec],
    systems: &[CounterSystem],
    cell_options: CheckerOptions,
    outer: usize,
    slots: &mut [Option<SweepOutcome>],
    stats_slots: &mut [Option<GraphCacheStats>],
) {
    if outer <= 1 || systems.len() <= 1 {
        let pool = WorkerPool::new(resolved_workers(&cell_options));
        let lineage = GraphLineage::new();
        let mut violated_at = vec![usize::MAX; specs.len()];
        for (v, sys) in systems.iter().enumerate() {
            let checker =
                ExplicitChecker::with_pool_and_lineage(sys, cell_options, &pool, &lineage);
            for (s, spec) in specs.iter().enumerate() {
                if violated_at[s] < v {
                    continue; // an earlier valuation already violated
                }
                let started = Instant::now();
                let outcome = checker.check_cached(spec);
                let violated = outcome.status == CheckStatus::Violated;
                slots[s * systems.len() + v] = Some(SweepOutcome {
                    params: sys.params().clone(),
                    outcome,
                    duration: started.elapsed(),
                    skipped: false,
                });
                if violated {
                    violated_at[s] = violated_at[s].min(v);
                }
            }
            stats_slots[v] = Some(checker.cache_stats());
        }
    } else {
        let cell_workers = resolved_workers(&cell_options);
        let violated_at: Vec<AtomicUsize> =
            specs.iter().map(|_| AtomicUsize::new(usize::MAX)).collect();
        let width = systems.len();
        let block = width.div_ceil(outer);
        let slot_refs: Vec<Mutex<&mut Option<SweepOutcome>>> =
            slots.iter_mut().map(Mutex::new).collect();
        let stats_refs: Vec<Mutex<&mut Option<GraphCacheStats>>> =
            stats_slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for worker in 0..outer {
                let range = worker * block..((worker + 1) * block).min(width);
                if range.is_empty() {
                    break;
                }
                let (violated_at, slot_refs, stats_refs) = (&violated_at, &slot_refs, &stats_refs);
                scope.spawn(move || {
                    let pool = WorkerPool::new(cell_workers);
                    let lineage = GraphLineage::new();
                    for v in range {
                        let sys = &systems[v];
                        let checker = ExplicitChecker::with_pool_and_lineage(
                            sys,
                            cell_options,
                            &pool,
                            &lineage,
                        );
                        for (s, spec) in specs.iter().enumerate() {
                            if violated_at[s].load(Ordering::Acquire) < v {
                                continue; // cancelled: an earlier valuation violated
                            }
                            let started = Instant::now();
                            let outcome = checker.check_cached(spec);
                            if outcome.status == CheckStatus::Violated {
                                violated_at[s].fetch_min(v, Ordering::AcqRel);
                            }
                            **slot_refs[s * width + v].lock().unwrap() = Some(SweepOutcome {
                                params: sys.params().clone(),
                                outcome,
                                duration: started.elapsed(),
                                skipped: false,
                            });
                        }
                        **stats_refs[v].lock().unwrap() = Some(checker.cache_stats());
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::{LocSet, StartRestriction};
    use ccta::BinValue;

    fn sweep_valuations() -> Vec<ParamValuation> {
        vec![
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![5, 1, 1, 1]),
            // inadmissible, must be skipped
            ParamValuation::new(vec![3, 1, 1, 1]),
        ]
    }

    #[test]
    fn sweep_aggregates_multiple_valuations() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
        ];
        let reports = check_over_sweep(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
        );
        assert_eq!(reports.len(), 2);

        let holds = &reports[0];
        assert!(holds.holds());
        assert_eq!(holds.status(), CheckStatus::Holds);
        // two admissible valuations were checked
        assert_eq!(holds.outcomes.len(), 2);
        assert_eq!(holds.skipped_cells(), 0);
        assert!(holds.total_states() > 0);
        assert!(holds.first_violation().is_none());
        assert!(!holds.formula.is_empty());

        let violated = &reports[1];
        assert_eq!(violated.status(), CheckStatus::Violated);
        // stops at the first violating valuation; the cancelled second cell
        // is reported explicitly instead of dropped
        assert_eq!(violated.outcomes.len(), 2);
        assert_eq!(violated.skipped_cells(), 1);
        assert!(violated.outcomes[0].outcome.is_violated());
        assert!(violated.outcomes[1].skipped);
        assert_eq!(violated.outcomes[1].outcome.states_explored, 0);
        assert!(violated.first_violation().is_some());
        assert!(violated.total_time() >= Duration::ZERO);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        let parallel = check_over_sweep_with_threads(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
            4,
        );
        let sequential = check_over_sweep_with_threads(
            &model,
            &specs,
            &sweep_valuations(),
            CheckerOptions::default(),
            1,
        );
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.spec_name, s.spec_name);
            assert_eq!(p.status(), s.status());
            assert_eq!(p.outcomes.len(), s.outcomes.len());
            for (po, so) in p.outcomes.iter().zip(&s.outcomes) {
                assert_eq!(po.params, so.params);
                assert_eq!(po.skipped, so.skipped);
                assert_eq!(po.outcome.status, so.outcome.status);
                assert_eq!(po.outcome.states_explored, so.outcome.states_explored);
                assert_eq!(
                    po.outcome.transitions_explored,
                    so.outcome.transitions_explored
                );
            }
        }
    }

    #[test]
    fn thread_budget_feeds_in_check_workers() {
        // a 1-cell grid with a budget of 4 hands all four threads to the
        // single check; the result must match the sequential run exactly
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&model, "I1", &["I1"]),
        }];
        let valuations = [ParamValuation::new(vec![5, 1, 1, 1])];
        let wide = check_over_sweep_with_threads(
            &model,
            &specs,
            &valuations,
            CheckerOptions::default(),
            4,
        );
        let sequential = check_over_sweep_with_threads(
            &model,
            &specs,
            &valuations,
            CheckerOptions::sequential(),
            1,
        );
        assert_eq!(wide[0].status(), sequential[0].status());
        assert_eq!(wide[0].total_states(), sequential[0].total_states());
    }

    #[test]
    fn cancelled_sweep_accounts_every_grid_cell() {
        // A 2-query × 3-valuation grid where one query violates on its very
        // first valuation: whatever the thread budget — and whether the
        // cells run the plain or the wave-pooled in-check path — every grid
        // cell must be accounted for, as either a completed or an explicit
        // skipped outcome.
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
        ];
        let valuations = [
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![5, 1, 1, 1]),
            ParamValuation::new(vec![6, 1, 1, 1]),
        ];
        let grid_width = valuations.len();
        let option_sets = [
            CheckerOptions::default(),
            // wave-pooled path: pooled workers with single-node waves
            CheckerOptions::default().with_workers(2).with_wave_size(1),
            // both sides of the incremental-sweep knob: the lineage must
            // never change which cells are completed vs skipped
            CheckerOptions::default().with_incremental_sweep(true),
            CheckerOptions::default().with_incremental_sweep(false),
        ];
        for options in option_sets {
            for threads in [1, 2, 8] {
                let reports =
                    check_over_sweep_with_threads(&model, &specs, &valuations, options, threads);
                assert_eq!(reports.len(), specs.len());
                for report in &reports {
                    let completed = report.outcomes.iter().filter(|o| !o.skipped).count();
                    assert_eq!(
                        completed + report.skipped_cells(),
                        grid_width,
                        "{} at budget {threads} lost a grid cell",
                        report.spec_name
                    );
                }
                // the violating query stops after its first valuation, so
                // exactly the remaining cells are skipped — at every budget
                assert_eq!(reports[0].status(), CheckStatus::Violated);
                assert_eq!(reports[0].skipped_cells(), grid_width - 1);
                assert!(reports[0].outcomes[0].outcome.is_violated());
                assert_eq!(reports[1].status(), CheckStatus::Holds);
                assert_eq!(reports[1].skipped_cells(), 0);
            }
        }
    }

    #[test]
    fn cached_and_uncached_sweeps_agree() {
        // the batched graph-cache scheduler and the per-cell scheduler must
        // produce reports of identical shape and verdict at every budget
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "E0", &["E0"]),
            },
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        for threads in [1, 4] {
            let (cached, stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &sweep_valuations(),
                CheckerOptions::default().with_graph_cache(true),
                threads,
            );
            let (uncached, no_stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &sweep_valuations(),
                CheckerOptions::default().with_graph_cache(false),
                threads,
            );
            assert!(stats.graphs_built() > 0);
            // 3 specs x 2 admissible valuations, minus the cell skipped
            // after the first violation — which a parallel worker may have
            // computed anyway before the cancellation landed
            let checked = stats.specs_served() + stats.uncached_specs;
            assert!((5..=6).contains(&checked), "{checked}");
            assert_eq!(no_stats.graphs_built(), 0);
            for (c, u) in cached.iter().zip(&uncached) {
                assert_eq!(c.spec_name, u.spec_name);
                assert_eq!(c.status(), u.status(), "{} at {threads}", c.spec_name);
                assert_eq!(c.outcomes.len(), u.outcomes.len());
                for (co, uo) in c.outcomes.iter().zip(&u.outcomes) {
                    assert_eq!(co.params, uo.params);
                    assert_eq!(co.skipped, uo.skipped, "{}", c.spec_name);
                    assert_eq!(co.outcome.status, uo.outcome.status, "{}", c.spec_name);
                }
            }
        }
    }

    /// Deep equality of two sweep reports: statuses, per-cell outcomes,
    /// counts and counterexample schedules, step for step.
    fn assert_reports_identical(a: &[SweepReport], b: &[SweepReport], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}");
        for (ra, rb) in a.iter().zip(b) {
            assert_eq!(ra.spec_name, rb.spec_name, "{ctx}");
            assert_eq!(ra.status(), rb.status(), "{ctx}: {}", ra.spec_name);
            assert_eq!(ra.outcomes.len(), rb.outcomes.len(), "{ctx}");
            for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
                let cell = format!("{ctx}: {} at {}", ra.spec_name, oa.params);
                assert_eq!(oa.params, ob.params, "{cell}");
                assert_eq!(oa.skipped, ob.skipped, "{cell}");
                assert_eq!(oa.outcome.status, ob.outcome.status, "{cell}");
                assert_eq!(
                    oa.outcome.states_explored, ob.outcome.states_explored,
                    "{cell}"
                );
                assert_eq!(
                    oa.outcome.transitions_explored, ob.outcome.transitions_explored,
                    "{cell}"
                );
                assert_eq!(oa.outcome.detail, ob.outcome.detail, "{cell}");
                match (&oa.outcome.counterexample, &ob.outcome.counterexample) {
                    (None, None) => {}
                    (Some(ca), Some(cb)) => {
                        assert_eq!(ca.initial, cb.initial, "{cell}");
                        assert_eq!(ca.schedule.steps(), cb.schedule.steps(), "{cell}");
                    }
                    _ => panic!("counterexample presence differs: {cell}"),
                }
            }
        }
    }

    #[test]
    fn incremental_and_fresh_sweeps_are_bit_identical() {
        // a guard-adjacent grid exercising every lineage classification:
        // [4,1,1,1] -> [7,1,1,1] changes the system size (rebuild),
        // -> [7,1,1,1] repeats the bounds (pure reuse),
        // -> [7,2,1,1] lowers the n-t-f quorum (relax-only extension),
        // -> [7,1,1,1] raises it back (tighten, rebuild)
        let model = fixtures::voting_model().single_round().unwrap();
        let valuations = [
            ParamValuation::new(vec![4, 1, 1, 1]),
            ParamValuation::new(vec![7, 1, 1, 1]),
            ParamValuation::new(vec![7, 1, 1, 1]),
            ParamValuation::new(vec![7, 2, 1, 1]),
            ParamValuation::new(vec![7, 1, 1, 1]),
        ];
        let specs = vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(&model, "I1", &["I1"]),
            },
            Spec::CoverNever {
                name: "cover".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                trigger: LocSet::from_names(&model, "E0", &["E0"]),
                forbidden: LocSet::from_names(&model, "E1", &["E1"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ];
        for threads in [1, 3] {
            let (incremental, inc_stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                CheckerOptions::default()
                    .with_graph_cache(true)
                    .with_incremental_sweep(true),
                threads,
            );
            let (fresh, fresh_stats) = check_over_sweep_with_stats(
                &model,
                &specs,
                &valuations,
                CheckerOptions::default()
                    .with_graph_cache(true)
                    .with_incremental_sweep(false),
                threads,
            );
            assert_reports_identical(&incremental, &fresh, &format!("threads {threads}"));
            assert_eq!(fresh_stats.reused_groups(), 0);
            assert_eq!(fresh_stats.extended_groups(), 0);
            if threads == 1 {
                // one worker walks the whole grid in valuation order, so
                // every classification fires at least once
                assert!(inc_stats.reused_groups() > 0, "{inc_stats}");
                assert!(inc_stats.extended_groups() > 0, "{inc_stats}");
                assert!(inc_stats.rebuilt_groups() > 0, "{inc_stats}");
                assert!(inc_stats.seed_frontier_total() > 0, "{inc_stats}");
                assert!(inc_stats.resident_bytes() > 0, "{inc_stats}");
                assert!(format!("{inc_stats}").contains("lineage"));
            }
        }
    }

    #[test]
    fn unknown_status_propagates() {
        let model = fixtures::voting_model().single_round().unwrap();
        let specs = vec![Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&model, "I1", &["I1"]),
        }];
        let reports = check_over_sweep(
            &model,
            &specs,
            &[ParamValuation::new(vec![4, 1, 1, 1])],
            CheckerOptions {
                max_states: 1,
                max_transitions: 10,
                ..CheckerOptions::default()
            },
        );
        assert_eq!(reports[0].status(), CheckStatus::Unknown);
        assert!(!reports[0].holds());
    }
}
