//! The single-round query catalogue.
//!
//! All queries of the paper are built from two state predicates over location
//! counters (Table III):
//!
//! * `EX{S}` — at least one automaton occupies a location of `S`;
//! * `ALL{S}` — every automaton occupies a location of `S`.
//!
//! and four temporal shapes, captured by [`Spec`].

use cccounter::{Configuration, CounterSystem};
use ccprotocols::family::{FamilyObligation, FamilyObligationKind, FamilySet, FamilyStart};
use ccta::{BinValue, LocId, SystemModel};
use std::fmt;

/// A named set of locations used in a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocSet {
    name: String,
    locs: Vec<LocId>,
}

impl LocSet {
    /// Creates a location set.
    pub fn new(name: impl Into<String>, locs: Vec<LocId>) -> Self {
        LocSet {
            name: name.into(),
            locs,
        }
    }

    /// Builds a location set by resolving location names in a model.
    ///
    /// # Panics
    ///
    /// Panics if a name does not exist in the model.
    pub fn from_names(model: &SystemModel, name: impl Into<String>, names: &[&str]) -> Self {
        let locs = names
            .iter()
            .map(|n| {
                model
                    .location_id(n)
                    .unwrap_or_else(|| panic!("unknown location {n:?}"))
            })
            .collect();
        LocSet {
            name: name.into(),
            locs,
        }
    }

    /// Resolves a generated-family tracked set against a model.
    ///
    /// # Panics
    ///
    /// Panics if a location name of the set does not exist in the model.
    pub fn from_family(model: &SystemModel, set: &FamilySet) -> Self {
        let names: Vec<&str> = set.locations.iter().map(String::as_str).collect();
        LocSet::from_names(model, set.name.clone(), &names)
    }

    /// The set's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The locations in the set.
    pub fn locs(&self) -> &[LocId] {
        &self.locs
    }

    /// `EX{S}` in round 0: some automaton occupies a location of the set.
    pub fn is_occupied(&self, cfg: &Configuration) -> bool {
        self.locs.iter().any(|&l| cfg.counter(l, 0) > 0)
    }

    /// The set compiled to a byte mask over a packed state row of the given
    /// stride (the location prefix of a row is indexed directly by `LocId`):
    /// `mask[i] == 0xFF` iff location `i` belongs to the set.  Occupancy of
    /// the set on a row is then the branch-free fold
    /// `OR_i (row[i] & mask[i]) != 0`, which is how the graph-cache analysis
    /// passes test thousands of rows per tracked set without re-walking the
    /// location list (see [`crate::explicit::ExplicitChecker::check_all`]).
    pub fn row_mask(&self, stride: usize) -> Vec<u8> {
        let mut mask = vec![0u8; stride];
        for l in &self.locs {
            mask[l.0] = 0xFF;
        }
        mask
    }

    /// Number of automata occupying the set in round 0.
    pub fn occupancy(&self, cfg: &Configuration) -> u64 {
        self.locs.iter().map(|&l| cfg.counter(l, 0)).sum()
    }

    /// Renders the set as `{D0, D1}` using model location names.
    pub fn display_with(&self, model: &SystemModel) -> String {
        let names: Vec<&str> = self
            .locs
            .iter()
            .map(|&l| model.location(l).name())
            .collect();
        format!("{{{}}}", names.join(", "))
    }
}

impl fmt::Display for LocSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Which configurations a query starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartRestriction {
    /// All round-start configurations `Σ_u`: every split of the correct
    /// processes over the border locations (Theorem 2).
    RoundStart,
    /// Only round-start configurations in which every correct process starts
    /// with the given value (all processes in `B_v`).
    Unanimous(BinValue),
    /// The initial configurations of the multi-round system (processes in
    /// initial locations), used when checking round 0 only.
    InitialLocations,
}

impl StartRestriction {
    /// The checker-side form of a generated-family start descriptor.
    pub fn from_family(start: FamilyStart) -> Self {
        match start {
            FamilyStart::RoundStart => StartRestriction::RoundStart,
            FamilyStart::Unanimous(v) => StartRestriction::Unanimous(v),
            FamilyStart::InitialLocations => StartRestriction::InitialLocations,
        }
    }

    /// Enumerates the matching start configurations of a counter system.
    pub fn configurations(&self, sys: &CounterSystem) -> Vec<Configuration> {
        match self {
            StartRestriction::RoundStart => sys.round_start_configurations(),
            StartRestriction::Unanimous(v) => sys.unanimous_start_configurations(*v),
            StartRestriction::InitialLocations => sys.initial_configurations(),
        }
    }

    /// Short label used in formula rendering.
    pub fn label(&self) -> String {
        match self {
            StartRestriction::RoundStart => "any round start".to_string(),
            StartRestriction::Unanimous(v) => format!("ALL{{B{}}}", v.index()),
            StartRestriction::InitialLocations => "initial configurations".to_string(),
        }
    }
}

/// A single-round query.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// `A (F EX{trigger} → G ¬EX{forbidden})`: once a location of `trigger`
    /// is ever occupied, no location of `forbidden` is ever occupied on the
    /// same path.  This is the shape of `Inv1` and of the binding conditions
    /// `CB0`–`CB4`.
    CoverNever {
        /// Query name (e.g. `"Inv1(0)"`).
        name: String,
        /// Starting configurations.
        start: StartRestriction,
        /// The triggering location set.
        trigger: LocSet,
        /// The forbidden location set.
        forbidden: LocSet,
    },
    /// `A (<start restriction> → G ¬EX{forbidden})`: from the restricted
    /// start configurations, no location of `forbidden` is ever occupied.
    /// This is the shape of `Inv2` and of condition `C2`.
    NeverFrom {
        /// Query name (e.g. `"Inv2(0)"`).
        name: String,
        /// Starting configurations.
        start: StartRestriction,
        /// The forbidden location set.
        forbidden: LocSet,
    },
    /// `∀ adversary ∃ path. ⋁ᵢ G ¬EX{forbidden_sets[i]}`: under every
    /// (round-rigid, fair) adversary there is a resolution of the coin such
    /// that at least one of the forbidden sets is never occupied.  By
    /// Lemma 2 this is the non-probabilistic form of the conditions `C1`
    /// (two sets, `F₀` and `F₁`) and `C2'` (one set, `F \ D_v`).
    ExistsAvoidOneOf {
        /// Query name (e.g. `"C1"`).
        name: String,
        /// Starting configurations.
        start: StartRestriction,
        /// The family of sets, one of which must stay unoccupied.
        forbidden_sets: Vec<LocSet>,
    },
    /// All fair executions of the single-round system terminate: the
    /// progress graph is acyclic and no reachable configuration blocks a
    /// process outside the sink locations.  This is the side condition of
    /// Theorem 2.
    NonBlocking {
        /// Query name.
        name: String,
        /// Starting configurations.
        start: StartRestriction,
    },
}

impl Spec {
    /// Resolves one checker-neutral obligation of a generated family
    /// against the model it will be checked on (normally the family's
    /// single-round form).
    ///
    /// # Panics
    ///
    /// Panics if the obligation names a location that does not exist in the
    /// model — generated obligations only reference generated locations, so
    /// this indicates a model/obligation mismatch.
    pub fn from_family(model: &SystemModel, obligation: &FamilyObligation) -> Self {
        let name = obligation.name.clone();
        let start = StartRestriction::from_family(obligation.start);
        match &obligation.kind {
            FamilyObligationKind::NeverFrom { forbidden } => Spec::NeverFrom {
                name,
                start,
                forbidden: LocSet::from_family(model, forbidden),
            },
            FamilyObligationKind::CoverNever { trigger, forbidden } => Spec::CoverNever {
                name,
                start,
                trigger: LocSet::from_family(model, trigger),
                forbidden: LocSet::from_family(model, forbidden),
            },
            FamilyObligationKind::ExistsAvoidOneOf { forbidden_sets } => Spec::ExistsAvoidOneOf {
                name,
                start,
                forbidden_sets: forbidden_sets
                    .iter()
                    .map(|s| LocSet::from_family(model, s))
                    .collect(),
            },
            FamilyObligationKind::NonBlocking => Spec::NonBlocking { name, start },
        }
    }

    /// Resolves a whole generated-family obligation catalogue.
    ///
    /// # Panics
    ///
    /// Panics under the same condition as [`Spec::from_family`].
    pub fn family_catalogue(model: &SystemModel, obligations: &[FamilyObligation]) -> Vec<Spec> {
        obligations
            .iter()
            .map(|o| Spec::from_family(model, o))
            .collect()
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        match self {
            Spec::CoverNever { name, .. }
            | Spec::NeverFrom { name, .. }
            | Spec::ExistsAvoidOneOf { name, .. }
            | Spec::NonBlocking { name, .. } => name,
        }
    }

    /// The start restriction of the query.
    pub fn start(&self) -> StartRestriction {
        match self {
            Spec::CoverNever { start, .. }
            | Spec::NeverFrom { start, .. }
            | Spec::ExistsAvoidOneOf { start, .. }
            | Spec::NonBlocking { start, .. } => *start,
        }
    }

    /// Whether the query is one of the probabilistic (Lemma-2) conditions.
    pub fn is_probabilistic(&self) -> bool {
        matches!(self, Spec::ExistsAvoidOneOf { .. })
    }

    /// Renders the query in the notation of Table III.
    pub fn formula(&self, model: &SystemModel) -> String {
        match self {
            Spec::CoverNever {
                trigger, forbidden, ..
            } => format!(
                "A F(EX{}) -> G(!EX{})",
                trigger.display_with(model),
                forbidden.display_with(model)
            ),
            Spec::NeverFrom {
                start, forbidden, ..
            } => format!(
                "A {} -> G(!EX{})",
                start.label(),
                forbidden.display_with(model)
            ),
            Spec::ExistsAvoidOneOf { forbidden_sets, .. } => {
                let parts: Vec<String> = forbidden_sets
                    .iter()
                    .map(|s| format!("G(!EX{})", s.display_with(model)))
                    .collect();
                format!("forall adversary, exists path: {}", parts.join(" \\/ "))
            }
            Spec::NonBlocking { .. } => {
                "all fair executions of the single-round system terminate".to_string()
            }
        }
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccta::prelude::*;

    fn model() -> SystemModel {
        let env = ccta::env::byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("spec-test", env);
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let d0 = b.decision_location("D0", BinValue::Zero);
        b.start_rule(j0, i0);
        b.rule("go", i0, d0, Guard::top(), Update::none());
        b.round_switch(d0, j0);
        b.build().unwrap()
    }

    #[test]
    fn locset_occupancy() {
        let m = model();
        let set = LocSet::from_names(&m, "D", &["D0"]);
        let mut cfg = Configuration::zero(m.locations().len(), m.vars().len());
        assert!(!set.is_occupied(&cfg));
        cfg.add_counter(m.location_id("D0").unwrap(), 0, 2);
        assert!(set.is_occupied(&cfg));
        assert_eq!(set.occupancy(&cfg), 2);
        assert_eq!(set.display_with(&m), "{D0}");
        assert_eq!(set.name(), "D");
        assert_eq!(format!("{set}"), "D");
    }

    #[test]
    #[should_panic(expected = "unknown location")]
    fn locset_rejects_unknown_names() {
        let m = model();
        let _ = LocSet::from_names(&m, "bad", &["NOPE"]);
    }

    #[test]
    fn start_restriction_labels() {
        assert_eq!(StartRestriction::RoundStart.label(), "any round start");
        assert_eq!(
            StartRestriction::Unanimous(BinValue::One).label(),
            "ALL{B1}"
        );
        assert_eq!(
            StartRestriction::InitialLocations.label(),
            "initial configurations"
        );
    }

    #[test]
    fn spec_accessors_and_formula() {
        let m = model();
        let d = LocSet::from_names(&m, "D0", &["D0"]);
        let i = LocSet::from_names(&m, "I0", &["I0"]);
        let cover = Spec::CoverNever {
            name: "Inv1(0)".into(),
            start: StartRestriction::RoundStart,
            trigger: d.clone(),
            forbidden: i.clone(),
        };
        assert_eq!(cover.name(), "Inv1(0)");
        assert!(!cover.is_probabilistic());
        assert!(cover.formula(&m).contains("A F(EX{D0}) -> G(!EX{I0})"));

        let never = Spec::NeverFrom {
            name: "Inv2(0)".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: d.clone(),
        };
        assert!(never.formula(&m).contains("ALL{B0}"));

        let exists = Spec::ExistsAvoidOneOf {
            name: "C1".into(),
            start: StartRestriction::RoundStart,
            forbidden_sets: vec![d.clone(), i.clone()],
        };
        assert!(exists.is_probabilistic());
        assert!(exists.formula(&m).contains("\\/"));
        assert_eq!(exists.start(), StartRestriction::RoundStart);

        let nb = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        assert!(nb.formula(&m).contains("terminate"));
        assert_eq!(format!("{nb}"), "termination");
    }
}
