//! Portable checkpoint serialization.
//!
//! A [`JobCheckpoint`] is process-local: it retains `Rc`-shared reachability
//! graphs and (possibly) an in-flight cache build, so it is neither `Send`
//! nor durable.  This module defines a *portable* byte encoding of the part
//! of a checkpoint that must survive a thread hop or a process restart: the
//! completed per-spec outcomes (verdicts, costs, counterexamples) and the
//! cumulative exploration counters.
//!
//! The retained graphs and the in-flight build are deliberately **dropped**
//! by the encoding.  That is safe, not lossy-in-the-way-that-matters:
//! exploration is deterministic, so resuming from a deserialized checkpoint
//! rebuilds exactly the graphs the remaining obligations need and produces
//! verdicts, counterexamples and per-outcome cost counters **bit-identical**
//! to an uninterrupted run (pinned by `serialized_resume_is_bit_identical`
//! below).  What is lost is only *already-paid exploration work* for the
//! not-yet-answered obligations — the completed outcomes keep their answers
//! verbatim and are never re-checked.
//!
//! Decoding is *total*: any truncated, oversized or malformed input yields a
//! typed [`CkptError`], never a panic — daemon restart paths feed these
//! bytes from disk, where torn writes are a fact of life.

use crate::counterexample::Counterexample;
use crate::result::{CheckOutcome, CheckStatus};
use crate::JobCheckpoint;
use cccounter::{Action, Configuration, Schedule, ScheduledStep};
use ccta::{LocId, ParamValuation, RuleId, VarId};
use std::fmt;

/// Version byte of the portable checkpoint encoding.
pub const CKPT_VERSION: u8 = 1;

/// Decoding failure: the bytes are not a well-formed portable checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The input ended before the structure was complete.
    Truncated,
    /// A field held a value outside its domain (bad version, unknown
    /// status byte, an element count exceeding the input length).
    Malformed(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => f.write_str("checkpoint bytes truncated"),
            CkptError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

// ---- little-endian primitive codec --------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(CkptError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An element count, bounded by the bytes actually remaining (each
    /// element needs at least `elem_size` bytes), so a corrupt length can
    /// never drive a huge allocation.
    fn len(&mut self, elem_size: usize) -> Result<usize, CkptError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(elem_size.max(1)) > remaining {
            return Err(CkptError::Malformed("length exceeds input"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, CkptError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Malformed("non-utf8 string"))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---- component encoders -------------------------------------------------

fn put_configuration(out: &mut Vec<u8>, cfg: &Configuration) {
    put_u32(out, cfg.num_locations() as u32);
    put_u32(out, cfg.num_vars() as u32);
    let rounds = cfg.max_active_round().map_or(0, |r| r + 1);
    put_u32(out, rounds);
    for round in 0..rounds {
        for &c in cfg.counters_slice(round).unwrap_or(&[]) {
            put_u64(out, c);
        }
        for &v in cfg.vars_slice(round).unwrap_or(&[]) {
            put_u64(out, v);
        }
    }
}

fn read_configuration(r: &mut Reader<'_>) -> Result<Configuration, CkptError> {
    let num_locations = r.u32()? as usize;
    let num_vars = r.u32()? as usize;
    let rounds = r.u32()?;
    let per_round = num_locations + num_vars;
    if (rounds as usize).saturating_mul(per_round.max(1)) > (r.bytes.len() - r.pos) / 8 + 1 {
        return Err(CkptError::Malformed("configuration larger than input"));
    }
    let mut cfg = Configuration::zero(num_locations, num_vars);
    for round in 0..rounds {
        for loc in 0..num_locations {
            cfg.set_counter(LocId(loc), round, r.u64()?);
        }
        for var in 0..num_vars {
            cfg.set_var(VarId(var), round, r.u64()?);
        }
    }
    Ok(cfg)
}

fn put_counterexample(out: &mut Vec<u8>, ce: &Counterexample) {
    put_str(out, &ce.spec);
    put_u32(out, ce.params.values().len() as u32);
    for &v in ce.params.values() {
        put_u64(out, v);
    }
    put_configuration(out, &ce.initial);
    put_u32(out, ce.schedule.steps().len() as u32);
    for step in ce.schedule.steps() {
        put_u32(out, step.action.rule.0 as u32);
        put_u32(out, step.action.round);
        put_u32(out, step.branch as u32);
    }
    put_str(out, &ce.explanation);
}

fn read_counterexample(r: &mut Reader<'_>) -> Result<Counterexample, CkptError> {
    let spec = r.str()?;
    let num_params = r.len(8)?;
    let mut values = Vec::with_capacity(num_params);
    for _ in 0..num_params {
        values.push(r.u64()?);
    }
    let initial = read_configuration(r)?;
    let num_steps = r.len(12)?;
    let mut steps = Vec::with_capacity(num_steps);
    for _ in 0..num_steps {
        let rule = RuleId(r.u32()? as usize);
        let round = r.u32()?;
        let branch = r.u32()? as usize;
        steps.push(ScheduledStep::with_branch(Action::new(rule, round), branch));
    }
    let explanation = r.str()?;
    Ok(Counterexample {
        spec,
        params: ParamValuation::new(values),
        initial,
        schedule: Schedule::from_steps(steps),
        explanation,
    })
}

fn put_outcome(out: &mut Vec<u8>, outcome: &CheckOutcome) {
    out.push(match outcome.status {
        CheckStatus::Holds => 0,
        CheckStatus::Violated => 1,
        CheckStatus::Unknown => 2,
    });
    put_u64(out, outcome.states_explored as u64);
    put_u64(out, outcome.transitions_explored as u64);
    put_str(out, &outcome.detail);
    match &outcome.counterexample {
        None => out.push(0),
        Some(ce) => {
            out.push(1);
            put_counterexample(out, ce);
        }
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Result<CheckOutcome, CkptError> {
    let status = match r.u8()? {
        0 => CheckStatus::Holds,
        1 => CheckStatus::Violated,
        2 => CheckStatus::Unknown,
        _ => return Err(CkptError::Malformed("unknown status byte")),
    };
    let states_explored = r.u64()? as usize;
    let transitions_explored = r.u64()? as usize;
    let detail = r.str()?;
    let counterexample = match r.u8()? {
        0 => None,
        1 => Some(read_counterexample(r)?),
        _ => return Err(CkptError::Malformed("bad counterexample presence byte")),
    };
    Ok(CheckOutcome {
        status,
        states_explored,
        transitions_explored,
        counterexample,
        detail,
    })
}

// ---- checkpoint codec ---------------------------------------------------

impl JobCheckpoint {
    /// Encodes the portable part of this checkpoint: completed outcomes and
    /// cumulative counters.  Retained graphs and any in-flight build are
    /// dropped (see the module docs for why that preserves verdict
    /// bit-identity on resume).
    pub fn to_portable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(CKPT_VERSION);
        put_u64(&mut out, self.states_done as u64);
        put_u64(&mut out, self.transitions_done as u64);
        put_u64(&mut out, self.stats.uncached_specs as u64);
        put_u32(&mut out, self.outcomes.len() as u32);
        for slot in &self.outcomes {
            match slot {
                None => out.push(0),
                Some(outcome) => {
                    out.push(1);
                    put_outcome(&mut out, outcome);
                }
            }
        }
        out
    }

    /// Decodes a portable checkpoint.  The result has no retained graphs
    /// (they are rebuilt on demand during [`crate::CheckJob::resume`]) and
    /// empty per-group cache accounting — only the portable counters
    /// survive the round trip.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CkptError`] on truncated or malformed input;
    /// never panics.
    pub fn from_portable_bytes(bytes: &[u8]) -> Result<JobCheckpoint, CkptError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != CKPT_VERSION {
            return Err(CkptError::Malformed("unsupported checkpoint version"));
        }
        let states_done = r.u64()? as usize;
        let transitions_done = r.u64()? as usize;
        let uncached_specs = r.u64()? as usize;
        let num_specs = r.len(1)?;
        let mut outcomes = Vec::with_capacity(num_specs);
        for _ in 0..num_specs {
            match r.u8()? {
                0 => outcomes.push(None),
                1 => outcomes.push(Some(read_outcome(&mut r)?)),
                _ => return Err(CkptError::Malformed("bad outcome presence byte")),
            }
        }
        if !r.finished() {
            return Err(CkptError::Malformed("trailing bytes"));
        }
        let mut cp = JobCheckpoint::fresh(num_specs);
        cp.outcomes = outcomes;
        cp.states_done = states_done;
        cp.transitions_done = transitions_done;
        // group-aligned accounting cannot survive without the graphs (the
        // stats records are aligned index-for-index with the retained
        // graphs); only the scalar counter does
        cp.stats.uncached_specs = uncached_specs;
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::{CheckerOptions, ExplicitChecker};
    use crate::fixtures;
    use crate::job::{CheckJob, JobBudget, JobOutcome};
    use crate::spec::{LocSet, Spec, StartRestriction};
    use cccounter::CounterSystem;
    use ccta::BinValue;

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    fn specs(sys: &CounterSystem) -> Vec<Spec> {
        let model = sys.model();
        vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(model, "E0", &["E0"]),
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ]
    }

    #[test]
    fn serialized_resume_is_bit_identical() {
        let sys = sys();
        let specs = specs(&sys);
        let options = CheckerOptions::default().with_graph_cache(true);
        let reference = ExplicitChecker::with_options(&sys, options).check_all(&specs);

        let tripped = CheckJob::new(&sys, &specs, options)
            .with_budget(JobBudget::unlimited().with_max_states(5))
            .run();
        let JobOutcome::BudgetExceeded { checkpoint, .. } = tripped else {
            panic!("a 5-state budget must trip on this fixture");
        };
        let completed_before = checkpoint.completed_obligations();

        // round-trip through bytes: graphs are dropped, outcomes survive
        let bytes = checkpoint.to_portable_bytes();
        let restored = JobCheckpoint::from_portable_bytes(&bytes).expect("round trip");
        assert_eq!(restored.completed_obligations(), completed_before);
        assert_eq!(restored.total_obligations(), specs.len());
        assert!(!restored.has_build_in_flight());

        let resumed = CheckJob::new(&sys, &specs, options).resume(restored);
        let (outcomes, _) = resumed.completed().expect("unlimited resume completes");
        for (o, r) in outcomes.iter().zip(&reference) {
            assert_eq!(o.status, r.status);
            assert_eq!(o.states_explored, r.states_explored);
            assert_eq!(o.transitions_explored, r.transitions_explored);
            match (&o.counterexample, &r.counterexample) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.initial, y.initial);
                    assert_eq!(x.schedule.steps(), y.schedule.steps());
                    assert_eq!(x.params, y.params);
                }
                _ => panic!("counterexample presence differs"),
            }
        }
    }

    #[test]
    fn counterexamples_round_trip_exactly() {
        let sys = sys();
        let specs = specs(&sys);
        let options = CheckerOptions::default();
        // run to completion, then pack the outcomes into a checkpoint shape
        // (slot 1 is the reachable-E0 violation carrying a counterexample)
        let outcomes = ExplicitChecker::with_options(&sys, options).check_all(&specs);
        assert!(outcomes[1].is_violated(), "fixture must yield a violation");
        let mut cp = JobCheckpoint::fresh(specs.len());
        cp.outcomes = outcomes.iter().cloned().map(Some).collect();
        cp.states_done = 123;
        cp.transitions_done = 456;
        let restored = JobCheckpoint::from_portable_bytes(&cp.to_portable_bytes()).unwrap();
        assert_eq!(restored.states_explored(), 123);
        assert_eq!(restored.transitions_explored(), 456);
        for (a, b) in restored.outcomes.iter().zip(&cp.outcomes) {
            assert_eq!(a, b, "outcomes must survive the byte round trip verbatim");
        }
    }

    #[test]
    fn truncated_and_malformed_bytes_yield_typed_errors() {
        let sys = sys();
        let specs = specs(&sys);
        let outcomes =
            ExplicitChecker::with_options(&sys, CheckerOptions::default()).check_all(&specs);
        let mut cp = JobCheckpoint::fresh(specs.len());
        cp.outcomes = outcomes.into_iter().map(Some).collect();
        let bytes = cp.to_portable_bytes();

        // every truncation point decodes to a typed error, never a panic
        for cut in 0..bytes.len() {
            assert!(
                JobCheckpoint::from_portable_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // bad version
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert_eq!(
            JobCheckpoint::from_portable_bytes(&bad)
                .map(|_| ())
                .unwrap_err(),
            CkptError::Malformed("unsupported checkpoint version")
        );
        // trailing garbage is rejected, not silently ignored
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(JobCheckpoint::from_portable_bytes(&trailing).is_err());
    }
}
