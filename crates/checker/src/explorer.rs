//! The generic exploration driver shared by every search of this crate.
//!
//! The monitored BFS of [`crate::explicit`], its non-blocking variant, and
//! the game-graph construction of [`crate::game`] are all the same loop: pop
//! a node, enumerate its applicable progress actions, expand every
//! probabilistic branch in place on the row substrate, intern the successor
//! into the [`StateStore`], and enqueue fresh states — they differ only in
//! what they *observe* along the way.  [`Explorer`] owns that
//! expand → intern → frontier cycle once, and a [`Visitor`] supplies the
//! loop-specific observations: monitor-bit propagation, terminal-state
//! classification, and CSR edge emission.
//!
//! # Deterministic in-check parallelism
//!
//! The explorer runs the search level-synchronously: the BFS frontier of
//! depth *d* is fully expanded before any node of depth *d + 1*.  For a
//! FIFO BFS this changes nothing — but it creates a natural unit of
//! parallelism with a *deterministic global candidate order*: frontier
//! position × action order × branch order.  A wide level is processed in
//! bounded **waves** of at most `wave_size` frontier nodes, and each wave
//! runs three phases on the persistent [`WorkerPool`] of the check:
//!
//! 1. **Expand** (parallel over wave chunks): workers generate all
//!    successor candidates of their chunk — row bytes, incremental Zobrist
//!    hash, monitor bits — without touching the shared index.  The wave is
//!    cut into more chunks than lanes and lanes claim chunks through an
//!    atomic cursor (work stealing), so one expensive chunk no longer
//!    stalls the wave behind a single lane.
//! 2. **Intern** (parallel over shards): each store shard interns *its*
//!    candidates (selected by hash prefix, see
//!    [`StateStore`](crate::store::StateStore)) in global candidate order,
//!    lock-free because the shards are disjoint.
//! 3. **Replay** (sequential, cheap): a scalar walk over the candidate
//!    metadata in global order re-applies the budget accounting
//!    (transition/state bounds), fires the visitor hooks, detects
//!    violations, and builds the next frontier — exactly as the sequential
//!    loop would have, at a few instructions per candidate.
//!
//! Because the wave boundaries, the candidate order, the shard partition,
//! and the replay are all independent of the worker count, a parallel run
//! produces *bit-identical* verdicts, state counts, transition counts,
//! parent edges (and therefore counterexample schedules) to the sequential
//! run — at any worker count, shard count and wave size.  The
//! `parallel_determinism` and `random_differential` integration tests pin
//! this, and `engine_equivalence` pins the sequential semantics against
//! [`crate::reference`].
//!
//! Small frontiers skip the phase machinery entirely and run the plain
//! sequential loop (same results, no buffering or thread overhead), so a
//! deep-but-narrow exploration pays nothing for the parallel capability.
//!
//! # Wave-bounded memory
//!
//! A wave buffers its successor candidates (row bytes + ~24B metadata,
//! duplicates included) until its replay, so peak candidate memory is
//! O(`wave_size` × branching) — *not* O(transitions of the widest level) as
//! in the unchunked design this replaces — and all wave buffers (chunk
//! arenas, per-shard id lists) are recycled across waves and levels.  A
//! budget bound that trips mid-replay over-expands at most the remainder of
//! the current wave.  The wave size comes from
//! [`CheckerOptions::wave_size`], then the `CC_WAVE_SIZE` environment
//! variable, then [`DEFAULT_WAVE_SIZE`].

use crate::explicit::CheckerOptions;
use crate::job::{InterruptKind, JobSignals};
use crate::pool::WorkerPool;
use crate::spec::LocSet;
use crate::store::{Shard, StateStore, MAX_SHARDS};
use cccounter::{Action, Configuration, CounterSystem, RowEngine, ScheduledStep};
use std::ops::ControlFlow;

/// Don't enter the parallel wave machinery for levels narrower than this;
/// the sequential loop is faster and produces identical results.  An
/// explicitly *smaller* [`CheckerOptions::wave_size`] lowers the threshold
/// to the wave size: a caller bounding waves that tightly wants the wave
/// path exercised (and the results are identical either way).
const MIN_PARALLEL_FRONTIER: usize = 64;

/// Default number of frontier nodes per parallel wave when neither
/// [`CheckerOptions::wave_size`] nor `CC_WAVE_SIZE` is set.  At typical row
/// strides and branching factors a wave buffers a few megabytes of
/// candidates — small enough to recycle hot in cache, large enough that the
/// per-wave pool synchronisation is noise.
pub const DEFAULT_WAVE_SIZE: usize = 8192;

/// Monitor bits of a state row: the location prefix of the row is indexed
/// directly by `LocId`.
pub(crate) fn row_occupancy_bits(sets: &[LocSet], row: &[u8]) -> u8 {
    let mut bits = 0u8;
    for (i, set) in sets.iter().enumerate() {
        if set.locs().iter().any(|l| row[l.0] > 0) {
            bits |= 1 << i;
        }
    }
    bits
}

/// The loop-specific observations of a search.  Read-only classification
/// hooks (`successor_bits`, `should_expand`, `terminal_violates`) may be
/// called from worker threads; the mutating replay hooks (`start_node`,
/// `begin_*`/`end_*`, `edge`) are always called sequentially, in
/// deterministic discovery order.
pub(crate) trait Visitor: Sync {
    /// Monitor bits of a successor row reached from a node with
    /// `parent_bits` (also used for start rows, with `parent_bits == 0`).
    fn successor_bits(&self, parent_bits: u8, row: &[u8]) -> u8;

    /// Whether a dequeued node with these bits should be expanded at all.
    fn should_expand(&self, _bits: u8) -> bool {
        true
    }

    /// Whether a terminal node (no applicable progress action) violates the
    /// property.  Must be a pure function of the row.
    fn terminal_violates(&self, _row: &[u8]) -> bool {
        false
    }

    /// A start configuration was interned.  Returning `true` aborts the
    /// search with [`Exploration::Violation`] at that node.
    fn start_node(&mut self, _node: u32, _bits: u8, _fresh: bool) -> bool {
        false
    }

    /// A node with at least one applicable action is about to be expanded.
    fn begin_node(&mut self, _node: u32) {}

    /// An action of the current node is about to be expanded.
    fn begin_action(&mut self, _node: u32, _action: Action) {}

    /// One explored transition: `from --step--> to`, where `to_bits` are the
    /// successor's monitor bits and `fresh` says whether `to` was newly
    /// discovered.  Returning `true` aborts with
    /// [`Exploration::Violation`] at `to`.
    fn edge(
        &mut self,
        _from: u32,
        _step: ScheduledStep,
        _to: u32,
        _to_bits: u8,
        _fresh: bool,
    ) -> bool {
        false
    }

    /// All branches of the current action have been explored.
    fn end_action(&mut self, _node: u32, _action: Action) {}

    /// All actions of the current node have been explored.
    fn end_node(&mut self, _node: u32) {}
}

/// Why an exploration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Exploration {
    /// The full reachable space was explored.
    Complete,
    /// The transition budget was exhausted.
    TransitionBound,
    /// The state budget was exhausted.
    StateBound,
    /// The visitor reported a violation at this node.
    Violation(u32),
    /// A job signal (cancellation, deadline, or job budget) stopped the
    /// search at a wave boundary; the unprocessed frontier was captured in
    /// [`Explorer::take_suspended`] so the search can resume bit-identically.
    Interrupted,
}

/// The frontier state of an exploration stopped by a job signal: the
/// unprocessed remainder of the current level plus the successors already
/// accumulated for the next one.  Feeding both back through
/// [`Explorer::run_suspended`] (over the same store) continues the search
/// exactly where it stopped.
pub(crate) struct SuspendedFrontier {
    /// Frontier nodes of the current level not yet expanded.
    pub(crate) pending: Vec<u32>,
    /// Fresh successors already accumulated for the next level.
    pub(crate) next: Vec<u32>,
    /// Which signal stopped the search.
    pub(crate) kind: InterruptKind,
}

/// Resolves one auto knob: the environment variable if set to a positive
/// integer, the fallback otherwise — memoised in the caller's `OnceLock`
/// because the resolution sits on per-check paths (`available_parallelism`
/// reads cgroup files on Linux, which would tax every sub-millisecond
/// check).  Shared by the worker, sweep-budget and wave-size knobs.
pub(crate) fn cached_env_usize(
    cell: &'static std::sync::OnceLock<usize>,
    var: &str,
    fallback: impl FnOnce() -> usize,
) -> usize {
    *cell.get_or_init(|| {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        fallback()
    })
}

/// The number of in-check worker threads for the given options: an explicit
/// `workers` setting wins; `0` defers to the `CC_CHECK_THREADS` environment
/// variable and then to the available parallelism.
pub(crate) fn resolved_workers(options: &CheckerOptions) -> usize {
    if options.workers > 0 {
        return options.workers;
    }
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    cached_env_usize(&AUTO, "CC_CHECK_THREADS", || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Whether checks should share reachability graphs across the obligations
/// of one `(start restriction, valuation)` group: an explicit
/// [`CheckerOptions::graph_cache`] setting wins; `None` defers to the
/// `CC_GRAPH_CACHE` environment variable (`0` disables), defaulting to
/// enabled.  Like the thread knobs, the resolution is memoised process-wide.
pub(crate) fn resolved_graph_cache(options: &CheckerOptions) -> bool {
    if let Some(explicit) = options.graph_cache {
        return explicit;
    }
    static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("CC_GRAPH_CACHE")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

/// Whether sweeps should carry reachability graphs *across* the valuations
/// of a start-restriction group (reusing or incrementally extending them
/// when only guard bounds changed): an explicit
/// [`CheckerOptions::incremental_sweep`] setting wins; `None` defers to the
/// `CC_SWEEP_INCREMENTAL` environment variable (`0` disables), defaulting
/// to enabled.  Memoised process-wide like the other auto knobs.
pub(crate) fn resolved_incremental_sweep(options: &CheckerOptions) -> bool {
    if let Some(explicit) = options.incremental_sweep {
        return explicit;
    }
    static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("CC_SWEEP_INCREMENTAL")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

/// Whether cached graphs memoise per-obligation verdicts across the
/// valuations of an identical-classified lineage step: an explicit
/// [`CheckerOptions::verdict_memo`] setting wins; `None` defers to the
/// `CC_VERDICT_MEMO` environment variable (`0` disables), defaulting to
/// enabled.  Memoised process-wide like the other auto knobs.
pub(crate) fn resolved_verdict_memo(options: &CheckerOptions) -> bool {
    if let Some(explicit) = options.verdict_memo {
        return explicit;
    }
    static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("CC_VERDICT_MEMO")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

/// Whether tighten-only lineage steps prune the predecessor graph in place
/// instead of rebuilding the group from scratch: an explicit
/// [`CheckerOptions::tighten_prune`] setting wins; `None` defers to the
/// `CC_TIGHTEN_PRUNE` environment variable (`0` disables), defaulting to
/// enabled.  Memoised process-wide like the other auto knobs.
pub(crate) fn resolved_tighten_prune(options: &CheckerOptions) -> bool {
    if let Some(explicit) = options.tighten_prune {
        return explicit;
    }
    static AUTO: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("CC_TIGHTEN_PRUNE")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

/// The wave size for the given options: an explicit `wave_size` setting
/// wins; `0` defers to the `CC_WAVE_SIZE` environment variable and then to
/// [`DEFAULT_WAVE_SIZE`].
pub(crate) fn resolved_wave_size(options: &CheckerOptions) -> usize {
    if options.wave_size > 0 {
        return options.wave_size;
    }
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    cached_env_usize(&AUTO, "CC_WAVE_SIZE", || DEFAULT_WAVE_SIZE)
}

/// The shard count for the given options and resolved worker count: an
/// explicit `shards` setting wins (rounded to a power of two); `0` derives
/// one shard per worker.  Sequential runs use a single shard.
fn resolved_shards(options: &CheckerOptions, workers: usize) -> usize {
    let requested = if options.shards > 0 {
        options.shards
    } else if workers == 1 {
        1
    } else {
        workers
    };
    requested.clamp(1, MAX_SHARDS).next_power_of_two()
}

/// One successor candidate produced by the expand phase, in deterministic
/// global order.  The row bytes live in the owning chunk's `rows` arena.
struct CandMeta {
    /// Zobrist hash of the successor row.
    hash: u64,
    /// Key hash (row hash with the monitor bits folded in).
    key: u64,
    /// Monitor bits of the successor.
    bits: u8,
    /// The scheduled step that produced it.
    step: ScheduledStep,
    /// The frontier node it was expanded from.
    parent: u32,
}

/// Per-action candidate grouping of the expand phase.
struct ActRec {
    action: Action,
    cands: u32,
}

/// Per-node action grouping of the expand phase.  `actions == 0` marks a
/// terminal node.
struct NodeRec {
    node: u32,
    actions: u32,
    terminal_violation: bool,
}

/// Everything one worker produced for its contiguous wave chunk.  Recycled
/// across waves: `reset` clears the arenas but keeps their capacity.
#[derive(Default)]
struct ChunkOut {
    rows: Vec<u8>,
    cands: Vec<CandMeta>,
    acts: Vec<ActRec>,
    nodes: Vec<NodeRec>,
    /// Candidate indices per store shard, in candidate order.
    per_shard: Vec<Vec<u32>>,
}

impl ChunkOut {
    fn reset(&mut self, num_shards: usize) {
        self.rows.clear();
        self.cands.clear();
        self.acts.clear();
        self.nodes.clear();
        self.per_shard.resize_with(num_shards, Vec::new);
        for list in &mut self.per_shard {
            list.clear();
        }
    }
}

/// The recycled buffers of the parallel wave pipeline.  One instance lives
/// for the whole `run` (allocated lazily on the first parallel level) so
/// deep searches reuse the same arenas across every wave of every level.
#[derive(Default)]
struct WaveScratch {
    /// One expand output per pool lane.
    chunks: Vec<ChunkOut>,
    /// Interned `(id, fresh)` per shard, in that shard's candidate order.
    interned: Vec<Vec<(u32, bool)>>,
    /// Replay cursors, one per shard.
    cursors: Vec<usize>,
}

/// The generic expand → intern → frontier driver (see the module docs).
pub(crate) struct Explorer<'a> {
    engine: RowEngine<'a>,
    store: StateStore,
    pool: &'a WorkerPool,
    workers: usize,
    wave_size: usize,
    max_states: usize,
    max_transitions: usize,
    /// Replayed exploration counters: these mirror what the sequential loop
    /// would have counted, even when a parallel wave over-expands past a
    /// budget bound before the replay detects it.
    states: usize,
    transitions: usize,
    /// Job-level cancellation and budget signals, polled at wave boundaries
    /// (and, for the fast cancel/deadline signals, at expand-phase chunk
    /// handouts).  `None` for plain checks — the hot path then pays a single
    /// branch per wave.
    signals: Option<&'a JobSignals>,
    /// Baselines added to this explorer's counters when evaluating the job
    /// budgets: `(states, transitions, resident bytes)` already accounted by
    /// *other* completed explorations of the same job.
    base: (usize, usize, usize),
    /// The frontier captured when a job signal stopped the search.
    suspended: Option<SuspendedFrontier>,
}

impl<'a> Explorer<'a> {
    /// An explorer over a single-round counter system with the given
    /// resource limits, running its parallel phases on `pool` (whose lane
    /// count is the worker count; a 1-lane pool forces the sequential
    /// loop).
    pub(crate) fn new(
        sys: &'a CounterSystem,
        options: &CheckerOptions,
        pool: &'a WorkerPool,
    ) -> Self {
        let workers = pool.threads();
        let shards = resolved_shards(options, workers);
        Self::resume(
            sys,
            options,
            pool,
            StateStore::with_shards(sys, shards),
            0,
            0,
        )
    }

    /// An explorer *resuming* over an already-populated store (the
    /// incremental sweep's append mode): the store keeps its shard layout
    /// and contents, and the exploration counters start from the given
    /// baselines so the resource budgets apply to the cumulative search,
    /// exactly as a from-scratch build would have counted.
    pub(crate) fn resume(
        sys: &'a CounterSystem,
        options: &CheckerOptions,
        pool: &'a WorkerPool,
        store: StateStore,
        states: usize,
        transitions: usize,
    ) -> Self {
        Explorer {
            engine: RowEngine::new(sys),
            store,
            pool,
            workers: pool.threads(),
            wave_size: resolved_wave_size(options),
            max_states: options.max_states,
            max_transitions: options.max_transitions,
            states,
            transitions,
            signals: None,
            base: (0, 0, 0),
            suspended: None,
        }
    }

    /// Attaches job-level signals: the explorer polls them at wave
    /// boundaries (budgets and cancellation) and at expand-phase chunk
    /// handouts (cancellation/deadline only), stopping with
    /// [`Exploration::Interrupted`] and a captured [`SuspendedFrontier`].
    /// `base` holds the `(states, transitions, resident bytes)` the job
    /// already accounted outside this explorer.
    pub(crate) fn with_signals(
        mut self,
        signals: Option<&'a JobSignals>,
        base: (usize, usize, usize),
    ) -> Self {
        self.signals = signals;
        self.base = base;
        self
    }

    /// Takes the frontier captured by the last [`Exploration::Interrupted`]
    /// stop.
    pub(crate) fn take_suspended(&mut self) -> Option<SuspendedFrontier> {
        self.suspended.take()
    }

    /// The store of explored states (for counterexample reconstruction,
    /// attractor passes and occupancy stats).
    pub(crate) fn store(&self) -> &StateStore {
        &self.store
    }

    /// Consumes the explorer, releasing the store of explored states — this
    /// is how a cached reachability graph outlives the exploration that
    /// built it (see [`crate::graph`]).
    pub(crate) fn into_store(self) -> StateStore {
        self.store
    }

    /// Number of distinct states the *sequential* search would have
    /// counted when the exploration ended.
    pub(crate) fn states(&self) -> usize {
        self.states
    }

    /// Number of transitions the sequential search would have counted.
    pub(crate) fn transitions(&self) -> usize {
        self.transitions
    }

    /// Runs the search from the given start configurations.
    pub(crate) fn run<V: Visitor>(
        &mut self,
        starts: &[Configuration],
        visitor: &mut V,
    ) -> Exploration {
        let mut frontier: Vec<u32> = Vec::new();
        let mut row = Vec::with_capacity(self.store.stride());
        for cfg in starts {
            self.engine.encode_into(cfg, &mut row);
            let bits = visitor.successor_bits(0, &row);
            let (id, fresh) = self
                .store
                .intern_row(&row, bits, self.engine.hash(&row), None);
            if fresh {
                self.states += 1;
                frontier.push(id);
            }
            if visitor.start_node(id, bits, fresh) {
                return Exploration::Violation(id);
            }
        }
        self.drive_from(frontier, Vec::new(), visitor)
    }

    /// Runs the search with the frontier seeded from *already-stored* nodes
    /// instead of start configurations: each seed is (re-)expanded exactly
    /// like a freshly discovered node, and fresh successors continue the
    /// level-synchronous BFS.  This is the incremental sweep's extension
    /// entry point — the seeds are the stored rows on which a newly-enabled
    /// rule fires, in a caller-chosen deterministic order.
    pub(crate) fn run_from_nodes<V: Visitor>(
        &mut self,
        seeds: Vec<u32>,
        visitor: &mut V,
    ) -> Exploration {
        self.drive_from(seeds, Vec::new(), visitor)
    }

    /// Continues a search stopped by a job signal: `pending` and `next` come
    /// from the [`SuspendedFrontier`] of the interrupted run (whose store
    /// this explorer resumed over).  Bit-identical to never having stopped.
    pub(crate) fn run_suspended<V: Visitor>(
        &mut self,
        pending: Vec<u32>,
        next: Vec<u32>,
        visitor: &mut V,
    ) -> Exploration {
        self.drive_from(pending, next, visitor)
    }

    /// Polls the job signals at a wave boundary (cheap: one branch when no
    /// signals are attached).
    fn boundary_interrupt(&self) -> Option<InterruptKind> {
        let signals = self.signals?;
        signals.boundary_stop(
            self.base.0 + self.states,
            self.base.1 + self.transitions,
            || self.base.2 + self.store.resident_bytes(),
        )
    }

    /// The level-synchronous frontier loop shared by [`Explorer::run`],
    /// [`Explorer::run_from_nodes`] and [`Explorer::run_suspended`].
    ///
    /// Both the sequential and the parallel path process each level in
    /// waves of at most `wave_size` nodes with a job-signal poll before
    /// every wave — the wave boundaries (and therefore the budget trip
    /// points, which only consider the deterministic replayed counters) are
    /// identical at every worker count.
    fn drive_from<V: Visitor>(
        &mut self,
        mut frontier: Vec<u32>,
        mut next: Vec<u32>,
        visitor: &mut V,
    ) -> Exploration {
        // an explicitly tiny wave size lowers the parallel threshold: the
        // caller asked for bounded waves, so even small frontiers take the
        // wave path (results are identical either way)
        let min_parallel = MIN_PARALLEL_FRONTIER.min(self.wave_size.max(1));
        let mut scratch = WaveScratch::default();
        let mut row = Vec::with_capacity(self.store.stride());
        let mut actions: Vec<Action> = Vec::new();
        if frontier.is_empty() {
            // a resumed search may have been stopped exactly at a level end
            std::mem::swap(&mut frontier, &mut next);
        }
        while !frontier.is_empty() {
            let parallel = self.workers > 1 && frontier.len() >= min_parallel;
            let wave = self.wave_size.max(1);
            let mut offset = 0;
            while offset < frontier.len() {
                if let Some(kind) = self.boundary_interrupt() {
                    self.suspended = Some(SuspendedFrontier {
                        pending: frontier[offset..].to_vec(),
                        next: std::mem::take(&mut next),
                        kind,
                    });
                    return Exploration::Interrupted;
                }
                let end = (offset + wave).min(frontier.len());
                let flow = if parallel {
                    self.wave_parallel(&frontier[offset..end], &mut next, &mut scratch, visitor)
                } else {
                    self.level_sequential(
                        &frontier[offset..end],
                        &mut next,
                        &mut row,
                        &mut actions,
                        visitor,
                    )
                };
                if let ControlFlow::Break(stop) = flow {
                    if stop == Exploration::Interrupted {
                        // a mid-wave cancel/deadline stop abandons the whole
                        // wave before it touched the store, so the wave stays
                        // in `pending` and the resume re-expands it
                        let kind = self
                            .signals
                            .and_then(|s| s.fast_stop())
                            .unwrap_or(InterruptKind::Cancelled);
                        self.suspended = Some(SuspendedFrontier {
                            pending: frontier[offset..].to_vec(),
                            next: std::mem::take(&mut next),
                            kind,
                        });
                    }
                    return stop;
                }
                offset = end;
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        Exploration::Complete
    }

    /// Expands one BFS level in the plain sequential loop.  `row` and
    /// `actions` are caller-owned scratch buffers reused across levels.
    fn level_sequential<V: Visitor>(
        &mut self,
        frontier: &[u32],
        next: &mut Vec<u32>,
        row: &mut Vec<u8>,
        actions: &mut Vec<Action>,
        visitor: &mut V,
    ) -> ControlFlow<Exploration> {
        let Explorer {
            engine,
            store,
            states,
            transitions,
            max_states,
            max_transitions,
            ..
        } = self;
        for &node in frontier {
            let bits = store.bits(node);
            if !visitor.should_expand(bits) {
                continue;
            }
            store.copy_row_into(node, row);
            engine.progress_actions_into(row, actions);
            if actions.is_empty() {
                if visitor.terminal_violates(row) {
                    return ControlFlow::Break(Exploration::Violation(node));
                }
                continue;
            }
            visitor.begin_node(node);
            let node_hash = store.hash64(node);
            for &action in actions.iter() {
                visitor.begin_action(node, action);
                let flow = engine.for_each_successor(
                    row,
                    action,
                    node_hash,
                    |branch, _prob, succ, succ_hash| {
                        *transitions += 1;
                        if *transitions > *max_transitions {
                            return ControlFlow::Break(Exploration::TransitionBound);
                        }
                        let new_bits = visitor.successor_bits(bits, succ);
                        let step = ScheduledStep::with_branch(action, branch);
                        let (id, fresh) =
                            store.intern_row(succ, new_bits, succ_hash, Some((node, step)));
                        if fresh {
                            *states += 1;
                            if *states > *max_states {
                                return ControlFlow::Break(Exploration::StateBound);
                            }
                            next.push(id);
                        }
                        if visitor.edge(node, step, id, new_bits, fresh) {
                            return ControlFlow::Break(Exploration::Violation(id));
                        }
                        ControlFlow::Continue(())
                    },
                );
                flow?;
                visitor.end_action(node, action);
            }
            visitor.end_node(node);
        }
        ControlFlow::Continue(())
    }

    /// Runs the expand → intern → replay phases for one wave of frontier
    /// nodes, recycling the scratch buffers.  Produces exactly the same
    /// store mutations, visitor calls, counters and next frontier as
    /// [`Explorer::level_sequential`] over the same wave slice.
    fn wave_parallel<V: Visitor>(
        &mut self,
        wave: &[u32],
        next: &mut Vec<u32>,
        scratch: &mut WaveScratch,
        visitor: &mut V,
    ) -> ControlFlow<Exploration> {
        let num_shards = self.store.num_shards();
        let chunk_size = steal_chunk_size(wave.len(), self.workers);
        let num_chunks = wave.len().div_ceil(chunk_size);
        scratch
            .chunks
            .resize_with(num_chunks.max(scratch.chunks.len()), ChunkOut::default);
        scratch
            .interned
            .resize_with(num_shards.max(scratch.interned.len()), Vec::new);

        // Phase 1: expand wave chunks in parallel.  The wave is cut into
        // more chunks than lanes and lanes claim chunks through an atomic
        // cursor, so a lane whose chunks happen to be cheap steals the next
        // chunk instead of idling behind a skewed one.  Which lane expands
        // which chunk never matters for results: the chunk boundaries are
        // fixed before the handout and the replay walks chunks in index
        // order.
        {
            let (engine, store) = (&self.engine, &self.store);
            let v: &V = visitor;
            let signals = self.signals;
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let work: Vec<std::sync::Mutex<(&[u32], &mut ChunkOut)>> = wave
                .chunks(chunk_size)
                .zip(scratch.chunks.iter_mut())
                .map(|(chunk, out)| std::sync::Mutex::new((chunk, out)))
                .collect();
            let lanes = self.workers.min(num_chunks);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..lanes)
                .map(|_| {
                    let (cursor, work) = (&cursor, &work);
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || loop {
                        // cancellation/deadline latency is O(chunk): a lane
                        // stops claiming work once the fast signals fire
                        if signals.is_some_and(|s| s.fast_stop().is_some()) {
                            break;
                        }
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(cell) = work.get(i) else { break };
                        // uncontended: the cursor hands each chunk to
                        // exactly one lane; the mutex only carries the
                        // &mut across the closure boundary
                        let mut slot = cell.lock().unwrap();
                        let (chunk, out) = &mut *slot;
                        expand_chunk(engine, store, v, chunk, num_shards, out);
                    });
                    task
                })
                .collect();
            self.pool.run(tasks);
        }
        // A mid-wave stop must be honoured *before* the intern phase: the
        // expand phase touched no shared state, so abandoning the wave here
        // leaves the store, the counters and the visitor exactly as they
        // were at the wave boundary — the whole wave stays pending.
        if self.signals.is_some_and(|s| s.fast_stop().is_some()) {
            return ControlFlow::Break(Exploration::Interrupted);
        }
        let chunks = &scratch.chunks[..num_chunks];

        // Phase 2: intern this wave's candidates, one task per shard, each
        // consuming its candidates in global order.
        {
            let stride = self.store.stride();
            let shards = self.store.shards_mut();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = shards
                .iter_mut()
                .zip(scratch.interned.iter_mut())
                .enumerate()
                .map(|(tag, (shard, out))| {
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        out.clear();
                        intern_shard(shard, out, chunks, tag, stride)
                    });
                    task
                })
                .collect();
            self.pool.run(tasks);
        }

        // Phase 3: sequential replay of the budget accounting and visitor
        // hooks in global candidate order.
        scratch.cursors.clear();
        scratch.cursors.resize(num_shards, 0);
        for chunk in chunks {
            let (mut act_i, mut cand_i) = (0usize, 0usize);
            for nrec in &chunk.nodes {
                if nrec.actions == 0 {
                    if nrec.terminal_violation {
                        return ControlFlow::Break(Exploration::Violation(nrec.node));
                    }
                    continue;
                }
                visitor.begin_node(nrec.node);
                for _ in 0..nrec.actions {
                    let arec = &chunk.acts[act_i];
                    act_i += 1;
                    visitor.begin_action(nrec.node, arec.action);
                    for _ in 0..arec.cands {
                        let m = &chunk.cands[cand_i];
                        cand_i += 1;
                        let shard = self.store.shard_of(m.key);
                        let (id, fresh) = scratch.interned[shard][scratch.cursors[shard]];
                        scratch.cursors[shard] += 1;
                        self.transitions += 1;
                        if self.transitions > self.max_transitions {
                            return ControlFlow::Break(Exploration::TransitionBound);
                        }
                        if fresh {
                            self.states += 1;
                            if self.states > self.max_states {
                                return ControlFlow::Break(Exploration::StateBound);
                            }
                            next.push(id);
                        }
                        if visitor.edge(nrec.node, m.step, id, m.bits, fresh) {
                            return ControlFlow::Break(Exploration::Violation(id));
                        }
                    }
                    visitor.end_action(nrec.node, arec.action);
                }
                visitor.end_node(nrec.node);
            }
        }
        ControlFlow::Continue(())
    }
}

/// How many chunks each lane should see on average in a wave's expand
/// phase: more chunks than lanes is what lets the atomic-cursor handout
/// steal work from a skewed chunk.
const STEAL_CHUNKS_PER_LANE: usize = 4;

/// Floor on the work-stealing chunk size: below this the per-chunk arena
/// bookkeeping outweighs the balancing win.
const MIN_STEAL_CHUNK: usize = 32;

/// The expand-phase chunk size for a wave of `wave` frontier nodes on
/// `workers` lanes: aim for [`STEAL_CHUNKS_PER_LANE`] chunks per lane,
/// floored at [`MIN_STEAL_CHUNK`] — but never coarser than the even
/// one-chunk-per-lane split, so small waves still occupy every lane.
fn steal_chunk_size(wave: usize, workers: usize) -> usize {
    let even_split = wave.div_ceil(workers).max(1);
    wave.div_ceil(workers * STEAL_CHUNKS_PER_LANE)
        .max(MIN_STEAL_CHUNK)
        .min(even_split)
}

/// Phase-1 worker: expands a contiguous wave chunk into candidate records
/// (recycling `out`'s arenas) without touching the shared index.
fn expand_chunk<V: Visitor>(
    engine: &RowEngine<'_>,
    store: &StateStore,
    visitor: &V,
    chunk: &[u32],
    num_shards: usize,
    out: &mut ChunkOut,
) {
    crate::fault::maybe_fire(crate::fault::SITE_EXPAND);
    out.reset(num_shards);
    let stride = store.stride();
    let mut row: Vec<u8> = Vec::with_capacity(stride);
    let mut actions: Vec<Action> = Vec::new();
    for &node in chunk {
        let bits = store.bits(node);
        if !visitor.should_expand(bits) {
            continue;
        }
        store.copy_row_into(node, &mut row);
        engine.progress_actions_into(&row, &mut actions);
        if actions.is_empty() {
            out.nodes.push(NodeRec {
                node,
                actions: 0,
                terminal_violation: visitor.terminal_violates(&row),
            });
            continue;
        }
        let node_hash = store.hash64(node);
        for &action in &actions {
            let cands_before = out.cands.len();
            let _: ControlFlow<()> = engine.for_each_successor(
                &mut row,
                action,
                node_hash,
                |branch, _prob, succ, succ_hash| {
                    let new_bits = visitor.successor_bits(bits, succ);
                    let key = StateStore::key_hash(succ_hash, new_bits);
                    let idx = out.cands.len() as u32;
                    out.per_shard[store.shard_of(key)].push(idx);
                    out.rows.extend_from_slice(succ);
                    out.cands.push(CandMeta {
                        hash: succ_hash,
                        key,
                        bits: new_bits,
                        step: ScheduledStep::with_branch(action, branch),
                        parent: node,
                    });
                    ControlFlow::Continue(())
                },
            );
            out.acts.push(ActRec {
                action,
                cands: (out.cands.len() - cands_before) as u32,
            });
        }
        out.nodes.push(NodeRec {
            node,
            actions: actions.len() as u32,
            terminal_violation: false,
        });
    }
}

/// Phase-2 worker: interns shard `tag`'s candidates of the current wave in
/// global candidate order (chunks in order, per-chunk shard lists in
/// order).
fn intern_shard(
    shard: &mut Shard,
    out: &mut Vec<(u32, bool)>,
    chunks: &[ChunkOut],
    tag: usize,
    stride: usize,
) {
    for chunk in chunks {
        for &ci in &chunk.per_shard[tag] {
            let m = &chunk.cands[ci as usize];
            let row = &chunk.rows[ci as usize * stride..(ci as usize + 1) * stride];
            out.push(shard.intern(row, m.bits, m.hash, m.key, Some((m.parent, m.step))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use cccounter::CounterSystem;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingVisitor;

    impl Visitor for CountingVisitor {
        fn successor_bits(&self, _parent: u8, _row: &[u8]) -> u8 {
            0
        }
    }

    /// Panics inside `successor_bits` — i.e. inside a worker lane's expand
    /// phase — once the candidate countdown reaches zero.
    struct PanicAtCandidate {
        countdown: AtomicUsize,
    }

    impl Visitor for PanicAtCandidate {
        fn successor_bits(&self, _parent: u8, _row: &[u8]) -> u8 {
            if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
                panic!("visitor panic at chosen candidate");
            }
            0
        }
    }

    #[test]
    fn visitor_panic_does_not_poison_sibling_lanes_or_the_pool() {
        let model = fixtures::voting_model().single_round().unwrap();
        let sys = CounterSystem::new(model, fixtures::small_params()).unwrap();
        // tiny waves force the parallel wave path (2 single-node chunks per
        // wave, one per lane) for every level of at least two nodes
        let options = CheckerOptions::default().with_workers(2).with_wave_size(2);
        let pool = WorkerPool::new(2);
        let starts = sys.round_start_configurations();

        let mut baseline = Explorer::new(&sys, &options, &pool);
        assert_eq!(
            baseline.run(&starts, &mut CountingVisitor),
            Exploration::Complete
        );
        let (states, transitions) = (baseline.states(), baseline.transitions());
        assert!(
            transitions > 4,
            "fixture too small to place a mid-run panic"
        );

        // a visitor that panics on a chosen candidate mid-exploration: the
        // batch must drain (no deadlock) and re-raise the original payload
        let mut explorer = Explorer::new(&sys, &options, &pool);
        let mut panicking = PanicAtCandidate {
            countdown: AtomicUsize::new(transitions / 2),
        };
        let payload = catch_unwind(AssertUnwindSafe(|| explorer.run(&starts, &mut panicking)))
            .expect_err("the injected visitor panic must surface");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("chosen candidate"), "{message}");

        // sibling lanes and the pool survive: the same pool runs the full
        // exploration again and reproduces the baseline counts exactly
        let mut again = Explorer::new(&sys, &options, &pool);
        assert_eq!(
            again.run(&starts, &mut CountingVisitor),
            Exploration::Complete
        );
        assert_eq!(again.states(), states);
        assert_eq!(again.transitions(), transitions);
    }
}
