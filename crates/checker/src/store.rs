//! The shared, shardable state store of the explicit-state engine.
//!
//! Every search of this crate runs through the generic
//! [`crate::explorer::Explorer`] driver, and the driver's bookkeeping lives
//! here: dedup visited `(configuration, monitor-bits)` states, remember how
//! each state was reached, and decode stored states back for counterexample
//! reconstruction.  [`StateStore`] centralises that bookkeeping around the
//! row representation of [`cccounter::RowEngine`]:
//!
//! * **Contiguous packed rows.**  A single-round state is one fixed-stride
//!   byte row (`locations ++ variables`), so each shard keeps its states in
//!   one contiguous `Vec<u8>` arena — no per-node boxing, no
//!   `Configuration` clone next to a separate `Vec<u8>` hash-map key, and
//!   duplicate detection is a single `memcmp` against the arena.
//! * **A u64-keyed open-addressing index per shard.**  Dedup probes a flat
//!   quadratic-probing table keyed by the incremental Zobrist hash that the
//!   row engine maintains across delta application; no SipHash, no
//!   re-hashing of the full state per lookup.
//! * **Hash-prefix sharding.**  The store is split into `2^k` shards; a
//!   state belongs to the shard selected by the *top* bits of its key hash
//!   (the index probes use the low bits, so the two never interfere).  The
//!   shard of a state is a pure function of its content, which makes the
//!   partition — and therefore every derived count — independent of how
//!   many worker threads fill the store.  Worker threads intern into
//!   disjoint shards without locks; node ids interleave the shard tag in
//!   the low bits (`local_index << shard_bits | shard`) so ids stay dense
//!   as long as the shards stay balanced.
//!
//! Full [`Configuration`]s are decoded back on demand only — for expansion
//! entry points and counterexample reconstruction.

use cccounter::{Configuration, CounterSystem, RowEngine, Schedule, ScheduledStep};
use std::fmt;

/// Marker for an empty slot of the index table.
const EMPTY: u32 = u32::MAX;

/// Hard cap on the shard count (a power of two; beyond this the per-shard
/// index tables get too small to be worth the fan-out).
pub(crate) const MAX_SHARDS: usize = 64;

/// A flat open-addressing hash index mapping 64-bit hashes to node ids.
///
/// Collisions are resolved by triangular-number probing; full-key equality
/// is delegated to the caller through a closure, so the table itself stays
/// generic over how nodes are stored.
#[derive(Debug)]
struct RawTable {
    /// `(cached hash, node id)` per slot; `EMPTY` id marks a free slot.
    slots: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

impl RawTable {
    fn with_capacity(capacity: usize) -> Self {
        let cap = (capacity.max(16) * 2).next_power_of_two();
        RawTable {
            slots: vec![(0, EMPTY); cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// A slotless placeholder for a parked shard (see [`Shard::park`]):
    /// holds no memory and must never be probed — [`Shard::unpark`] swaps a
    /// rebuilt table back in before the shard serves lookups again.
    fn parked() -> Self {
        RawTable {
            slots: Vec::new(),
            mask: 0,
            len: 0,
        }
    }

    /// Finds the id stored for `hash` (with `eq` confirming full-key
    /// equality), or the slot index where it would be inserted.
    fn probe(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Result<u32, usize> {
        let mut idx = hash as usize & self.mask;
        let mut step = 0usize;
        loop {
            let (slot_hash, slot_id) = self.slots[idx];
            if slot_id == EMPTY {
                return Err(idx);
            }
            if slot_hash == hash && eq(slot_id) {
                return Ok(slot_id);
            }
            step += 1;
            idx = (idx + step) & self.mask;
        }
    }

    fn insert_at(&mut self, slot: usize, hash: u64, id: u32) {
        self.slots[slot] = (hash, id);
        self.len += 1;
    }

    fn needs_grow(&self) -> bool {
        // grow at 2/3 load
        self.len * 3 >= self.slots.len() * 2
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); new_cap]);
        self.mask = new_cap - 1;
        for (hash, id) in old {
            if id == EMPTY {
                continue;
            }
            let mut idx = hash as usize & self.mask;
            let mut step = 0usize;
            while self.slots[idx].1 != EMPTY {
                step += 1;
                idx = (idx + step) & self.mask;
            }
            self.slots[idx] = (hash, id);
        }
    }

    /// The longest probe sequence of any stored entry (0 = every entry sits
    /// in its home slot).  Recomputed on demand for [`StoreStats`].
    fn max_probe(&self) -> usize {
        let mut max = 0;
        for (slot_idx, &(hash, id)) in self.slots.iter().enumerate() {
            if id == EMPTY {
                continue;
            }
            let mut idx = hash as usize & self.mask;
            let mut step = 0usize;
            while idx != slot_idx {
                step += 1;
                idx = (idx + step) & self.mask;
            }
            max = max.max(step);
        }
        max
    }
}

/// One shard of the store: a private row arena plus its own index table.
/// The explorer's intern phase hands each worker thread exclusive `&mut`
/// access to one shard, so filling the store in parallel needs no locks.
#[derive(Debug)]
pub(crate) struct Shard {
    table: RawTable,
    /// All stored rows, back to back (`local id * stride` offsets).
    rows: Vec<u8>,
    /// Monitor bits per node (0 when unused).
    bits: Vec<u8>,
    /// Zobrist hash per node, as maintained by the row engine.
    hashes: Vec<u64>,
    /// First-discovery parent edge per node.
    parents: Vec<Option<(u32, ScheduledStep)>>,
    /// The delta-encoded row arena of a *parked* shard (see
    /// [`Shard::park`]); `rows` and the index table are empty while this is
    /// `Some`.
    parked_rows: Option<Vec<u8>>,
    /// Bytes per row (mirrors the owning store).
    stride: usize,
    /// This shard's index, stored in the low bits of every node id.
    tag: u32,
    /// `log2` of the owning store's shard count.
    shard_bits: u32,
}

impl Shard {
    fn new(stride: usize, tag: u32, shard_bits: u32) -> Self {
        Shard {
            table: RawTable::with_capacity(64),
            rows: Vec::new(),
            bits: Vec::new(),
            hashes: Vec::new(),
            parents: Vec::new(),
            parked_rows: None,
            stride,
            tag,
            shard_bits,
        }
    }

    fn len(&self) -> usize {
        self.bits.len()
    }

    /// Interns a `(row, bits)` state into this shard, returning its *global*
    /// node id (`local << shard_bits | tag`) and whether it was fresh.
    /// `key_hash` must select this shard under the owning store's
    /// [`StateStore::shard_of`].
    pub(crate) fn intern(
        &mut self,
        row: &[u8],
        bits: u8,
        hash: u64,
        key_hash: u64,
        parent: Option<(u32, ScheduledStep)>,
    ) -> (u32, bool) {
        let stride = self.stride;
        debug_assert_eq!(row.len(), stride);
        let (rows, bits_arr) = (&self.rows, &self.bits);
        match self.table.probe(key_hash, |local| {
            bits_arr[local as usize] == bits
                && &rows[local as usize * stride..(local as usize + 1) * stride] == row
        }) {
            Ok(local) => ((local << self.shard_bits) | self.tag, false),
            Err(slot) => {
                let local = self.bits.len() as u32;
                // a real assert: `local << shard_bits` wrapping in release
                // would silently alias node ids and corrupt verdicts
                assert!(
                    (local as u64) << self.shard_bits <= u32::MAX as u64,
                    "node id space exhausted ({} states in shard {} of {})",
                    local,
                    self.tag,
                    1u32 << self.shard_bits,
                );
                self.rows.extend_from_slice(row);
                self.bits.push(bits);
                self.hashes.push(hash);
                self.parents.push(parent);
                self.table.insert_at(slot, key_hash, local);
                if self.table.needs_grow() {
                    self.table.grow();
                }
                ((local << self.shard_bits) | self.tag, true)
            }
        }
    }

    /// Parks the shard: the row arena is replaced by an XOR-RLE delta
    /// encoding against the previous row in local order (BFS neighbours
    /// differ in a handful of counter bytes, so the deltas are mostly
    /// zeros), and the index table is dropped.  The side arrays (bits,
    /// hashes, parents) stay raw — they are small and the hashes are what
    /// [`Shard::unpark`] rebuilds the index from.
    fn park(&mut self) {
        if self.parked_rows.is_some() || self.bits.is_empty() {
            return;
        }
        let stride = self.stride;
        let mut encoded = Vec::new();
        let mut prev = vec![0u8; stride];
        let mut delta = vec![0u8; stride];
        for local in 0..self.bits.len() {
            let row = &self.rows[local * stride..(local + 1) * stride];
            for (d, (r, p)) in delta.iter_mut().zip(row.iter().zip(prev.iter())) {
                *d = r ^ p;
            }
            encode_delta(&mut encoded, &delta);
            prev.copy_from_slice(row);
        }
        encoded.shrink_to_fit();
        self.parked_rows = Some(encoded);
        self.rows = Vec::new();
        self.table = RawTable::parked();
    }

    /// Restores a parked shard: decodes the row arena byte-identically and
    /// rebuilds the index by re-inserting every local id in order.  The
    /// table's slot layout need not match the never-parked original — probe
    /// results (and hence node ids, counts and verdicts) depend only on the
    /// stored content, never on slot positions.
    fn unpark(&mut self) {
        let Some(encoded) = self.parked_rows.take() else {
            return;
        };
        let stride = self.stride;
        let count = self.bits.len();
        let mut rows = Vec::with_capacity(count * stride);
        let mut prev = vec![0u8; stride];
        let mut pos = 0usize;
        for _ in 0..count {
            decode_delta_into(&encoded, &mut pos, &mut prev);
            rows.extend_from_slice(&prev);
        }
        debug_assert_eq!(pos, encoded.len(), "parked arena fully consumed");
        self.rows = rows;
        let mut table = RawTable::with_capacity(count);
        for local in 0..count as u32 {
            let key = StateStore::key_hash(self.hashes[local as usize], self.bits[local as usize]);
            // every stored entry is distinct, so each one just needs a free
            // slot (eq = false even on a hash collision: collided entries
            // coexist in the table exactly as they did before parking)
            match table.probe(key, |_| false) {
                Err(slot) => table.insert_at(slot, key, local),
                Ok(_) => unreachable!("probe with eq = false never matches"),
            }
        }
        self.table = table;
    }
}

/// LEB128 varint append.
fn push_varint(buf: &mut Vec<u8>, mut v: usize) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// LEB128 varint read, advancing `pos`.
fn read_varint(buf: &[u8], pos: &mut usize) -> usize {
    let mut v = 0usize;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= ((byte & 0x7F) as usize) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Appends one row delta as alternating `(zero-run, literal-run)` varint
/// pairs followed by the literal bytes, covering the full stride.
fn encode_delta(out: &mut Vec<u8>, delta: &[u8]) {
    let mut pos = 0;
    while pos < delta.len() {
        let zeros_start = pos;
        while pos < delta.len() && delta[pos] == 0 {
            pos += 1;
        }
        push_varint(out, pos - zeros_start);
        let lits_start = pos;
        while pos < delta.len() && delta[pos] != 0 {
            pos += 1;
        }
        push_varint(out, pos - lits_start);
        out.extend_from_slice(&delta[lits_start..pos]);
    }
}

/// Applies one encoded delta onto `row` (which holds the previous row),
/// advancing `pos` past the consumed pairs.
fn decode_delta_into(encoded: &[u8], pos: &mut usize, row: &mut [u8]) {
    let mut covered = 0usize;
    while covered < row.len() {
        covered += read_varint(encoded, pos);
        let lits = read_varint(encoded, pos);
        for _ in 0..lits {
            row[covered] ^= encoded[*pos];
            *pos += 1;
            covered += 1;
        }
    }
}

/// Occupancy statistics of a [`StateStore`], used to guide shard-count
/// defaults (printed by the `profile_engine` binary).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Number of stored states.
    pub states: usize,
    /// Number of shards.
    pub shards: usize,
    /// Total bytes of the row arenas.
    pub row_bytes: usize,
    /// Resident bytes of the whole store: row arenas plus the per-node side
    /// arrays (bits, hashes, first-discovery parents) plus the index-table
    /// slots.  This is what a cached reachability graph keeps alive for as
    /// long as its lineage lives (see the "Incremental sweeps" crate docs).
    pub resident_bytes: usize,
    /// Total slots across all shard index tables.
    pub index_slots: usize,
    /// Occupied fraction of the index tables (0.0–1.0).
    pub index_load: f64,
    /// Longest probe sequence of any index entry.
    pub max_probe_len: usize,
    /// Number of shards that hold at least one state.  Small explorations
    /// routinely leave high-numbered shards empty; the balance figures
    /// below are reported over the occupied shards only, so they describe
    /// the actual skew instead of being dragged to zero by empty shards.
    pub nonempty_shards: usize,
    /// States in the emptiest *occupied* shard (shard balance floor).
    pub min_shard_len: usize,
    /// States in the fullest shard (shard balance ceiling).
    pub max_shard_len: usize,
}

impl StoreStats {
    /// Mean states per *occupied* shard (0.0 when the store is empty).
    /// This is the balance denominator: dividing by the total shard count
    /// would understate the per-shard load whenever some shards are empty.
    pub fn mean_occupied_len(&self) -> f64 {
        if self.nonempty_shards == 0 {
            0.0
        } else {
            self.states as f64 / self.nonempty_shards as f64
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states in {}/{} occupied shard(s) ({}..{} per occupied shard, \
             mean {:.1}), {} row bytes ({} resident), index load {:.2} over {} slots, \
             max probe {}",
            self.states,
            self.nonempty_shards,
            self.shards,
            self.min_shard_len,
            self.max_shard_len,
            self.mean_occupied_len(),
            self.row_bytes,
            self.resident_bytes,
            self.index_load,
            self.index_slots,
            self.max_probe_len
        )
    }
}

/// Deduplicating storage of the explored `(state row, bits)` graph, split
/// into `2^shard_bits` hash-prefix shards (see the module docs).
pub struct StateStore {
    num_locations: usize,
    num_vars: usize,
    stride: usize,
    shard_bits: u32,
    shards: Vec<Shard>,
}

impl StateStore {
    /// An empty single-shard store for states of the given (single-round)
    /// counter system.
    pub fn new(sys: &CounterSystem) -> Self {
        Self::with_shards(sys, 1)
    }

    /// An empty store with (at least) the requested number of shards,
    /// rounded up to a power of two and capped at 64.
    ///
    /// The hash-prefix partition makes the stored content of every shard —
    /// and all derived counts — a pure function of the interned state set,
    /// never of the thread interleaving that filled it.
    pub fn with_shards(sys: &CounterSystem, shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let num_locations = sys.model().locations().len();
        let num_vars = sys.model().vars().len();
        let stride = num_locations + num_vars;
        let shard_bits = shards.trailing_zeros();
        StateStore {
            num_locations,
            num_vars,
            stride,
            shard_bits,
            shards: (0..shards)
                .map(|tag| Shard::new(stride, tag as u32, shard_bits))
                .collect(),
        }
    }

    /// Number of stored states.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.bits.is_empty())
    }

    /// Bytes per stored row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// An exclusive upper bound on the node ids currently in use.  With
    /// balanced shards this is close to [`StateStore::len`], so it is safe
    /// to use as the length of id-indexed side arrays.
    pub fn id_bound(&self) -> usize {
        self.shards
            .iter()
            .map(Shard::len)
            .max()
            .unwrap_or(0)
            .saturating_mul(self.shards.len())
    }

    /// All node ids currently in use, grouped by shard (the order is *not*
    /// discovery order).
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        let bits = self.shard_bits;
        self.shards.iter().enumerate().flat_map(move |(tag, s)| {
            (0..s.len() as u32).map(move |local| (local << bits) | tag as u32)
        })
    }

    /// The key hash of a `(row hash, monitor bits)` pair: the monitor bits
    /// are folded into the Zobrist row hash so states differing only in
    /// bits dedup separately.
    #[inline]
    pub(crate) fn key_hash(hash: u64, bits: u8) -> u64 {
        hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(bits as u64 + 1))
    }

    /// The shard owning a key hash (selected by its top bits; the index
    /// tables probe with the low bits).
    #[inline]
    pub(crate) fn shard_of(&self, key_hash: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (key_hash >> (64 - self.shard_bits)) as usize
        }
    }

    #[inline]
    fn split(&self, id: u32) -> (&Shard, usize) {
        let tag = (id as usize) & (self.shards.len() - 1);
        (&self.shards[tag], (id >> self.shard_bits) as usize)
    }

    /// The shard arenas, for the explorer's parallel intern phase.  Shard
    /// `k` must only be handed candidates whose [`StateStore::shard_of`]
    /// is `k`, in deterministic candidate order.
    pub(crate) fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Interns a `(row, bits)` state: returns its id and whether it was
    /// newly inserted.  `parent` is only recorded on first insertion.
    ///
    /// `hash` is the row's Zobrist hash as produced by
    /// [`RowEngine::hash`](cccounter::RowEngine::hash) and maintained
    /// incrementally by `RowEngine::for_each_successor`; a duplicate lookup
    /// costs one table probe plus a `memcmp` against the row arena — no
    /// allocation, no re-hashing.
    pub fn intern_row(
        &mut self,
        row: &[u8],
        bits: u8,
        hash: u64,
        parent: Option<(u32, ScheduledStep)>,
    ) -> (u32, bool) {
        let key_hash = Self::key_hash(hash, bits);
        let tag = self.shard_of(key_hash);
        self.shards[tag].intern(row, bits, hash, key_hash, parent)
    }

    /// The stored row of a node.
    pub fn row(&self, id: u32) -> &[u8] {
        let (shard, local) = self.split(id);
        &shard.rows[local * self.stride..(local + 1) * self.stride]
    }

    /// Copies a stored row into a scratch buffer (resized to the stride).
    pub fn copy_row_into(&self, id: u32, buf: &mut Vec<u8>) {
        buf.clear();
        buf.extend_from_slice(self.row(id));
    }

    /// The monitor bits of a node.
    pub fn bits(&self, id: u32) -> u8 {
        let (shard, local) = self.split(id);
        shard.bits[local]
    }

    /// The Zobrist hash of a node's row.
    pub fn hash64(&self, id: u32) -> u64 {
        let (shard, local) = self.split(id);
        shard.hashes[local]
    }

    /// The first-discovery parent edge of a node.
    pub fn parent(&self, id: u32) -> Option<(u32, ScheduledStep)> {
        let (shard, local) = self.split(id);
        shard.parents[local]
    }

    /// Decodes a stored row back into a full round-0 configuration.
    pub fn decode(&self, id: u32) -> Configuration {
        cccounter::decode_row(self.row(id), self.num_locations, self.num_vars)
    }

    /// Rebuilds the initial configuration and schedule leading to `target`
    /// by walking the first-discovery parent edges (decode-on-demand: only
    /// the root is decoded).
    pub fn reconstruct_path(&self, target: u32) -> (Configuration, Schedule) {
        let mut steps = Vec::new();
        let mut current = target;
        while let Some((parent, step)) = self.parent(current) {
            steps.push(step);
            current = parent;
        }
        steps.reverse();
        (self.decode(current), Schedule::from_steps(steps))
    }

    /// Interns a configuration directly (expansion entry points, tests);
    /// the hot path interns rows via [`StateStore::intern_row`].
    pub fn intern_config(
        &mut self,
        engine: &RowEngine<'_>,
        cfg: &Configuration,
        bits: u8,
        parent: Option<(u32, ScheduledStep)>,
    ) -> (u32, bool) {
        let mut row = Vec::with_capacity(self.stride);
        engine.encode_into(cfg, &mut row);
        let hash = engine.hash(&row);
        self.intern_row(&row, bits, hash, parent)
    }

    /// Resident bytes of the store: the row arenas, the per-node side
    /// arrays and the index-table slots.
    ///
    /// This is also the figure a [`crate::JobBudget`] resident-byte cap is
    /// checked against at wave boundaries.  A store owns no interior
    /// pointers and no thread state, so a suspended build's store moves
    /// freely inside a [`crate::JobCheckpoint`] and resumes interning on
    /// whatever pool the resumed job runs — the shard count (fixed at
    /// construction) is the only thing a checkpoint pins.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.rows.len()
                    + s.parked_rows.as_ref().map_or(0, Vec::len)
                    + s.bits.len()
                    + s.hashes.len() * std::mem::size_of::<u64>()
                    + s.parents.len() * std::mem::size_of::<Option<(u32, ScheduledStep)>>()
                    + s.table.slots.len() * std::mem::size_of::<(u64, u32)>()
            })
            .sum()
    }

    /// Parks every shard: delta-encodes the row arenas and drops the index
    /// tables (see [`Shard::park`]).  A parked store answers nothing —
    /// [`StateStore::unpark`] must run first — but its resident footprint
    /// shrinks to the encoded rows plus the raw side arrays.
    pub(crate) fn park(&mut self) {
        for shard in &mut self.shards {
            shard.park();
        }
    }

    /// Restores every parked shard to full service, byte-identically.
    pub(crate) fn unpark(&mut self) {
        for shard in &mut self.shards {
            shard.unpark();
        }
    }

    /// Whether any shard is currently parked.
    pub(crate) fn is_parked(&self) -> bool {
        self.shards.iter().any(|s| s.parked_rows.is_some())
    }

    /// Occupancy statistics (see [`StoreStats`]).
    pub fn stats(&self) -> StoreStats {
        let lens: Vec<usize> = self.shards.iter().map(Shard::len).collect();
        let index_slots: usize = self.shards.iter().map(|s| s.table.slots.len()).sum();
        let occupied: usize = self.shards.iter().map(|s| s.table.len).sum();
        // shard balance is reported over *occupied* shards: an exploration
        // smaller than the shard count would otherwise always report a
        // floor of zero, hiding the actual skew
        let occupied_lens = lens.iter().copied().filter(|&l| l > 0);
        StoreStats {
            states: lens.iter().sum(),
            shards: self.shards.len(),
            row_bytes: self.shards.iter().map(|s| s.rows.len()).sum(),
            resident_bytes: self.resident_bytes(),
            index_slots,
            index_load: if index_slots == 0 {
                0.0
            } else {
                occupied as f64 / index_slots as f64
            },
            max_probe_len: self
                .shards
                .iter()
                .map(|s| s.table.max_probe())
                .max()
                .unwrap_or(0),
            nonempty_shards: lens.iter().filter(|&&l| l > 0).count(),
            min_shard_len: occupied_lens.clone().min().unwrap_or(0),
            max_shard_len: occupied_lens.max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccounter::testutil::{small_params, voting_model};
    use cccounter::CounterSystem;

    fn sys() -> CounterSystem {
        let model = voting_model().single_round().unwrap();
        CounterSystem::new(model, small_params()).unwrap()
    }

    #[test]
    fn intern_dedups_by_row_and_bits() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::new(&sys);
        let cfg = sys.round_start_configurations()[0].clone();
        let (a, fresh_a) = store.intern_config(&engine, &cfg, 0, None);
        let (b, fresh_b) = store.intern_config(&engine, &cfg, 0, None);
        let (c, fresh_c) = store.intern_config(&engine, &cfg, 1, None);
        assert!(fresh_a && !fresh_b && fresh_c);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.bits(a), 0);
        assert_eq!(store.bits(c), 1);
        assert_eq!(store.decode(a), cfg);
        assert_eq!(store.row(a), store.row(c));
        assert!(!store.is_empty());
    }

    #[test]
    fn intern_survives_table_growth() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::new(&sys);
        // insert thousands of distinct states to force several grows
        let mut cfg = sys.empty_configuration();
        let loc = sys.model().location_id("I0").unwrap();
        let var = sys.model().var_id("v0").unwrap();
        let mut ids = Vec::new();
        for c in 0..60u64 {
            for v in 0..60u64 {
                cfg.set_counter(loc, 0, c);
                cfg.set_var(var, 0, v);
                let (id, fresh) = store.intern_config(&engine, &cfg, 0, None);
                assert!(fresh);
                ids.push(id);
            }
        }
        assert_eq!(store.len(), 3600);
        // every previously interned state is still found, not re-inserted
        for (i, id) in ids.iter().enumerate() {
            let (c, v) = ((i / 60) as u64, (i % 60) as u64);
            cfg.set_counter(loc, 0, c);
            cfg.set_var(var, 0, v);
            let (again, fresh) = store.intern_config(&engine, &cfg, 0, None);
            assert!(!fresh);
            assert_eq!(again, *id);
        }
    }

    #[test]
    fn sharded_store_partitions_by_content() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut sharded = StateStore::with_shards(&sys, 4);
        let mut flat = StateStore::new(&sys);
        assert_eq!(sharded.num_shards(), 4);
        let mut cfg = sys.empty_configuration();
        let loc = sys.model().location_id("I0").unwrap();
        let var = sys.model().var_id("v0").unwrap();
        for c in 0..40u64 {
            for v in 0..40u64 {
                cfg.set_counter(loc, 0, c);
                cfg.set_var(var, 0, v);
                let (sid, sfresh) = sharded.intern_config(&engine, &cfg, 0, None);
                let (_, ffresh) = flat.intern_config(&engine, &cfg, 0, None);
                assert_eq!(sfresh, ffresh);
                // the sharded id decodes back to the same state
                assert_eq!(
                    sharded.decode(sid),
                    engine.decode(flat.row(flat.len() as u32 - 1))
                );
            }
        }
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.ids().count(), sharded.len());
        assert!(sharded.id_bound() >= sharded.len());
        let stats = sharded.stats();
        assert_eq!(stats.states, 1600);
        assert_eq!(stats.shards, 4);
        assert!(stats.min_shard_len > 0, "{stats}");
        assert!(stats.index_load > 0.0 && stats.index_load < 1.0);
        assert_eq!(stats.row_bytes, 1600 * sharded.stride());
        // resident bytes cover the side arrays and the index on top of rows
        assert!(stats.resident_bytes > stats.row_bytes, "{stats}");
        assert_eq!(stats.resident_bytes, sharded.resident_bytes());
    }

    #[test]
    fn stats_balance_is_over_occupied_shards_only() {
        // Regression: with fewer states than shards, the balance floor used
        // to read 0 (and the mean was diluted by the empty shards), making
        // every small exploration look maximally skewed in `profile_engine`.
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::with_shards(&sys, 64);
        let mut cfg = sys.empty_configuration();
        let loc = sys.model().location_id("I0").unwrap();
        for c in 0..3u64 {
            cfg.set_counter(loc, 0, c);
            store.intern_config(&engine, &cfg, 0, None);
        }
        let stats = store.stats();
        assert_eq!(stats.states, 3);
        assert_eq!(stats.shards, 64);
        // at most one shard per state can be occupied
        assert!(
            (1..=3).contains(&stats.nonempty_shards),
            "{}",
            stats.nonempty_shards
        );
        // the floor is over occupied shards, so it can never be zero while
        // the store is non-empty
        assert!(stats.min_shard_len >= 1, "{stats}");
        assert!(stats.max_shard_len >= stats.min_shard_len);
        let mean = stats.mean_occupied_len();
        assert!(
            mean >= 1.0 && (mean - 3.0 / stats.nonempty_shards as f64).abs() < 1e-9,
            "{mean}"
        );
        assert!(format!("{stats}").contains("occupied shard"));

        // an empty store reports zeros without dividing by zero
        let empty = StateStore::with_shards(&sys, 8).stats();
        assert_eq!(empty.nonempty_shards, 0);
        assert_eq!(empty.mean_occupied_len(), 0.0);
        assert_eq!(empty.min_shard_len, 0);
    }

    #[test]
    fn park_roundtrip_is_byte_identical_and_shrinks() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::with_shards(&sys, 4);
        let mut cfg = sys.empty_configuration();
        let loc = sys.model().location_id("I0").unwrap();
        let var = sys.model().var_id("v0").unwrap();
        let mut ids = Vec::new();
        for c in 0..30u64 {
            for v in 0..30u64 {
                cfg.set_counter(loc, 0, c);
                cfg.set_var(var, 0, v);
                ids.push(store.intern_config(&engine, &cfg, 0, None).0);
            }
        }
        let full = store.resident_bytes();
        let rows_before: Vec<Vec<u8>> = ids.iter().map(|&id| store.row(id).to_vec()).collect();
        store.park();
        assert!(store.is_parked());
        let parked = store.resident_bytes();
        assert!(
            parked < full,
            "parking must shrink the store ({parked} !< {full})"
        );
        // parking twice is a no-op
        store.park();
        store.unpark();
        assert!(!store.is_parked());
        for (id, row) in ids.iter().zip(&rows_before) {
            assert_eq!(store.row(*id), &row[..], "rows decode byte-identically");
        }
        // the rebuilt index still dedups every pre-park state to its old id
        for (i, id) in ids.iter().enumerate() {
            let (c, v) = ((i / 30) as u64, (i % 30) as u64);
            cfg.set_counter(loc, 0, c);
            cfg.set_var(var, 0, v);
            let (again, fresh) = store.intern_config(&engine, &cfg, 0, None);
            assert!(!fresh);
            assert_eq!(again, *id);
        }
        // unparking an unparked store is a no-op too
        store.unpark();
        assert_eq!(store.len(), ids.len());
    }

    #[test]
    fn reconstruct_path_walks_parent_edges() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::with_shards(&sys, 2);
        let start = sys.unanimous_start_configurations(ccta::BinValue::Zero)[0].clone();
        let (root, _) = store.intern_config(&engine, &start, 0, None);
        // take two real steps
        let actions = sys.progress_actions(&start);
        let step1 = ScheduledStep::dirac(actions[0]);
        let mid = sys.apply_dirac(&start, actions[0]).unwrap();
        let (mid_id, _) = store.intern_config(&engine, &mid, 0, Some((root, step1)));
        let actions2 = sys.progress_actions(&mid);
        let step2 = ScheduledStep::dirac(actions2[0]);
        let end = sys.apply_dirac(&mid, actions2[0]).unwrap();
        let (end_id, _) = store.intern_config(&engine, &end, 0, Some((mid_id, step2)));

        assert_eq!(store.parent(end_id), Some((mid_id, step2)));
        let (initial, schedule) = store.reconstruct_path(end_id);
        assert_eq!(initial, start);
        assert_eq!(schedule.steps(), &[step1, step2]);
        // the reconstructed schedule replays to the stored state
        let path = schedule.apply(&sys, &initial).unwrap();
        assert_eq!(path.last(), &end);
    }
}
