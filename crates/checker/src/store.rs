//! The shared state store of the explicit-state engine.
//!
//! All three search loops of this crate — the monitored BFS of
//! [`crate::explicit`], its non-blocking variant, and the game-graph
//! construction of [`crate::game`] — need the same bookkeeping: dedup
//! visited `(configuration, monitor-bits)` states, remember how each state
//! was reached, and decode stored states back for counterexample
//! reconstruction.  [`StateStore`] centralises that bookkeeping around the
//! row representation of [`cccounter::RowEngine`]:
//!
//! * **Contiguous packed rows.**  A single-round state is one fixed-stride
//!   byte row (`locations ++ variables`), so the store keeps all visited
//!   states in one contiguous `Vec<u8>` arena — no per-node boxing, no
//!   `Configuration` clone next to a separate `Vec<u8>` hash-map key, and
//!   duplicate detection is a single `memcmp` against the arena.
//! * **A u64-keyed open-addressing index.**  Dedup probes a flat
//!   quadratic-probing table keyed by the incremental Zobrist hash that the
//!   row engine maintains across delta application; no SipHash, no
//!   re-hashing of the full state per lookup.
//!
//! Full [`Configuration`]s are decoded back on demand only — for expansion
//! entry points and counterexample reconstruction.

use cccounter::{Configuration, CounterSystem, RowEngine, Schedule, ScheduledStep};

/// Marker for an empty slot of the index table.
const EMPTY: u32 = u32::MAX;

/// A flat open-addressing hash index mapping 64-bit hashes to node ids.
///
/// Collisions are resolved by triangular-number probing; full-key equality
/// is delegated to the caller through a closure, so the table itself stays
/// generic over how nodes are stored.
#[derive(Debug)]
struct RawTable {
    /// `(cached hash, node id)` per slot; `EMPTY` id marks a free slot.
    slots: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

impl RawTable {
    fn with_capacity(capacity: usize) -> Self {
        let cap = (capacity.max(16) * 2).next_power_of_two();
        RawTable {
            slots: vec![(0, EMPTY); cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Finds the id stored for `hash` (with `eq` confirming full-key
    /// equality), or the slot index where it would be inserted.
    fn probe(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Result<u32, usize> {
        let mut idx = hash as usize & self.mask;
        let mut step = 0usize;
        loop {
            let (slot_hash, slot_id) = self.slots[idx];
            if slot_id == EMPTY {
                return Err(idx);
            }
            if slot_hash == hash && eq(slot_id) {
                return Ok(slot_id);
            }
            step += 1;
            idx = (idx + step) & self.mask;
        }
    }

    fn insert_at(&mut self, slot: usize, hash: u64, id: u32) {
        self.slots[slot] = (hash, id);
        self.len += 1;
    }

    fn needs_grow(&self) -> bool {
        // grow at 2/3 load
        self.len * 3 >= self.slots.len() * 2
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); new_cap]);
        self.mask = new_cap - 1;
        for (hash, id) in old {
            if id == EMPTY {
                continue;
            }
            let mut idx = hash as usize & self.mask;
            let mut step = 0usize;
            while self.slots[idx].1 != EMPTY {
                step += 1;
                idx = (idx + step) & self.mask;
            }
            self.slots[idx] = (hash, id);
        }
    }
}

/// Deduplicating storage of the explored `(state row, bits)` graph.
pub struct StateStore {
    num_locations: usize,
    num_vars: usize,
    stride: usize,
    table: RawTable,
    /// All stored rows, back to back (`node id * stride` offsets).
    rows: Vec<u8>,
    /// Monitor bits per node (0 when unused).
    bits: Vec<u8>,
    /// Zobrist hash per node, as maintained by the row engine.
    hashes: Vec<u64>,
    /// First-discovery parent edge per node.
    parents: Vec<Option<(u32, ScheduledStep)>>,
}

impl StateStore {
    /// An empty store for states of the given (single-round) counter system.
    pub fn new(sys: &CounterSystem) -> Self {
        let num_locations = sys.model().locations().len();
        let num_vars = sys.model().vars().len();
        StateStore {
            num_locations,
            num_vars,
            stride: num_locations + num_vars,
            table: RawTable::with_capacity(64),
            rows: Vec::new(),
            bits: Vec::new(),
            hashes: Vec::new(),
            parents: Vec::new(),
        }
    }

    /// Number of stored states.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bytes per stored row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Interns a `(row, bits)` state: returns its id and whether it was
    /// newly inserted.  `parent` is only recorded on first insertion.
    ///
    /// `hash` is the row's Zobrist hash as produced by
    /// [`RowEngine::hash`](cccounter::RowEngine::hash) and maintained
    /// incrementally by `RowEngine::for_each_successor`; a duplicate lookup
    /// costs one table probe plus a `memcmp` against the row arena — no
    /// allocation, no re-hashing.
    pub fn intern_row(
        &mut self,
        row: &[u8],
        bits: u8,
        hash: u64,
        parent: Option<(u32, ScheduledStep)>,
    ) -> (u32, bool) {
        debug_assert_eq!(row.len(), self.stride);
        // fold the monitor bits into the key hash
        let key_hash = hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(bits as u64 + 1));
        let (rows, bits_arr, stride) = (&self.rows, &self.bits, self.stride);
        match self.table.probe(key_hash, |id| {
            bits_arr[id as usize] == bits
                && &rows[id as usize * stride..(id as usize + 1) * stride] == row
        }) {
            Ok(id) => (id, false),
            Err(slot) => {
                let id = self.bits.len() as u32;
                self.rows.extend_from_slice(row);
                self.bits.push(bits);
                self.hashes.push(hash);
                self.parents.push(parent);
                self.table.insert_at(slot, key_hash, id);
                if self.table.needs_grow() {
                    self.table.grow();
                }
                (id, true)
            }
        }
    }

    /// The stored row of a node.
    pub fn row(&self, id: u32) -> &[u8] {
        &self.rows[id as usize * self.stride..(id as usize + 1) * self.stride]
    }

    /// Copies a stored row into a scratch buffer (resized to the stride).
    pub fn copy_row_into(&self, id: u32, buf: &mut Vec<u8>) {
        buf.clear();
        buf.extend_from_slice(self.row(id));
    }

    /// The monitor bits of a node.
    pub fn bits(&self, id: u32) -> u8 {
        self.bits[id as usize]
    }

    /// The Zobrist hash of a node's row.
    pub fn hash64(&self, id: u32) -> u64 {
        self.hashes[id as usize]
    }

    /// The first-discovery parent edge of a node.
    pub fn parent(&self, id: u32) -> Option<(u32, ScheduledStep)> {
        self.parents[id as usize]
    }

    /// Decodes a stored row back into a full round-0 configuration.
    pub fn decode(&self, id: u32) -> Configuration {
        cccounter::decode_row(self.row(id), self.num_locations, self.num_vars)
    }

    /// Rebuilds the initial configuration and schedule leading to `target`
    /// by walking the first-discovery parent edges (decode-on-demand: only
    /// the root is decoded).
    pub fn reconstruct_path(&self, target: u32) -> (Configuration, Schedule) {
        let mut steps = Vec::new();
        let mut current = target;
        while let Some((parent, step)) = self.parents[current as usize] {
            steps.push(step);
            current = parent;
        }
        steps.reverse();
        (self.decode(current), Schedule::from_steps(steps))
    }

    /// Interns a configuration directly (expansion entry points, tests);
    /// the hot path interns rows via [`StateStore::intern_row`].
    pub fn intern_config(
        &mut self,
        engine: &RowEngine<'_>,
        cfg: &Configuration,
        bits: u8,
        parent: Option<(u32, ScheduledStep)>,
    ) -> (u32, bool) {
        let mut row = Vec::with_capacity(self.stride);
        engine.encode_into(cfg, &mut row);
        let hash = engine.hash(&row);
        self.intern_row(&row, bits, hash, parent)
    }
}

/// A FIFO frontier of node ids (BFS work list with an advancing head).
#[derive(Debug, Default)]
pub struct Frontier {
    queue: Vec<u32>,
    head: usize,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Enqueues a node.
    pub fn push(&mut self, id: u32) {
        self.queue.push(id);
    }

    /// Dequeues the next node in discovery order.
    pub fn pop(&mut self) -> Option<u32> {
        let id = self.queue.get(self.head).copied();
        self.head += id.is_some() as usize;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccounter::testutil::{small_params, voting_model};
    use cccounter::CounterSystem;

    fn sys() -> CounterSystem {
        let model = voting_model().single_round().unwrap();
        CounterSystem::new(model, small_params()).unwrap()
    }

    #[test]
    fn intern_dedups_by_row_and_bits() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::new(&sys);
        let cfg = sys.round_start_configurations()[0].clone();
        let (a, fresh_a) = store.intern_config(&engine, &cfg, 0, None);
        let (b, fresh_b) = store.intern_config(&engine, &cfg, 0, None);
        let (c, fresh_c) = store.intern_config(&engine, &cfg, 1, None);
        assert!(fresh_a && !fresh_b && fresh_c);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.bits(a), 0);
        assert_eq!(store.bits(c), 1);
        assert_eq!(store.decode(a), cfg);
        assert_eq!(store.row(a), store.row(c));
        assert!(!store.is_empty());
    }

    #[test]
    fn intern_survives_table_growth() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::new(&sys);
        // insert thousands of distinct states to force several grows
        let mut cfg = sys.empty_configuration();
        let loc = sys.model().location_id("I0").unwrap();
        let var = sys.model().var_id("v0").unwrap();
        let mut ids = Vec::new();
        for c in 0..60u64 {
            for v in 0..60u64 {
                cfg.set_counter(loc, 0, c);
                cfg.set_var(var, 0, v);
                let (id, fresh) = store.intern_config(&engine, &cfg, 0, None);
                assert!(fresh);
                ids.push(id);
            }
        }
        assert_eq!(store.len(), 3600);
        // every previously interned state is still found, not re-inserted
        for (i, id) in ids.iter().enumerate() {
            let (c, v) = ((i / 60) as u64, (i % 60) as u64);
            cfg.set_counter(loc, 0, c);
            cfg.set_var(var, 0, v);
            let (again, fresh) = store.intern_config(&engine, &cfg, 0, None);
            assert!(!fresh);
            assert_eq!(again, *id);
        }
    }

    #[test]
    fn reconstruct_path_walks_parent_edges() {
        let sys = sys();
        let engine = RowEngine::new(&sys);
        let mut store = StateStore::new(&sys);
        let start = sys.unanimous_start_configurations(ccta::BinValue::Zero)[0].clone();
        let (root, _) = store.intern_config(&engine, &start, 0, None);
        // take two real steps
        let actions = sys.progress_actions(&start);
        let step1 = ScheduledStep::dirac(actions[0]);
        let mid = sys.apply_dirac(&start, actions[0]).unwrap();
        let (mid_id, _) = store.intern_config(&engine, &mid, 0, Some((root, step1)));
        let actions2 = sys.progress_actions(&mid);
        let step2 = ScheduledStep::dirac(actions2[0]);
        let end = sys.apply_dirac(&mid, actions2[0]).unwrap();
        let (end_id, _) = store.intern_config(&engine, &end, 0, Some((mid_id, step2)));

        assert_eq!(store.parent(end_id), Some((mid_id, step2)));
        let (initial, schedule) = store.reconstruct_path(end_id);
        assert_eq!(initial, start);
        assert_eq!(schedule.steps(), &[step1, step2]);
        // the reconstructed schedule replays to the stored state
        let path = schedule.apply(&sys, &initial).unwrap();
        assert_eq!(path.last(), &end);
    }

    #[test]
    fn frontier_is_fifo() {
        let mut f = Frontier::new();
        assert!(f.pop().is_none());
        f.push(3);
        f.push(5);
        assert_eq!(f.pop(), Some(3));
        f.push(8);
        assert_eq!(f.pop(), Some(5));
        assert_eq!(f.pop(), Some(8));
        assert!(f.pop().is_none());
    }
}
