//! The pre-engine reference checker (seed semantics), kept for equivalence
//! testing and as the baseline of the `table2_checking` benchmark.
//!
//! This module preserves the original exploration strategy of the checker
//! before the packed-state engine: visited states are keyed by
//! `(Vec<u8> fingerprint, monitor bits)` in a SipHash `std::collections::HashMap`,
//! every stored node carries a full [`Configuration`] clone, and successor
//! generation clones the configuration once per probabilistic branch via
//! [`CounterSystem::outcomes`].  It is deliberately *not* optimised — its
//! only jobs are (a) to give the `engine_equivalence` integration tests an
//! executable specification of the seed semantics (same visit counts, same
//! verdicts), and (b) to serve as the measured "before" of the engine
//! speedup.

use crate::counterexample::Counterexample;
use crate::explicit::CheckerOptions;
use crate::result::CheckOutcome;
use crate::spec::{LocSet, Spec};
use cccounter::system::Outcome;
use cccounter::{Action, Configuration, CounterSystem, Schedule, ScheduledStep};
use std::collections::HashMap;

struct Node {
    config: Configuration,
    bits: u8,
    parent: Option<(usize, ScheduledStep)>,
}

// ---------------------------------------------------------------------------
// Seed-faithful counter-system operations.
//
// The current `CounterSystem` precompiles rules and evaluates guards against
// borrowed slices, so simply calling its public API would let the "reference"
// silently inherit most of the engine's gains.  These helpers reproduce the
// seed's actual cost profile: a fresh `round_vars` clone per guard
// evaluation with the guard bound re-evaluated against the parameter
// valuation each time, applicability re-validated once per branch through
// `apply`, a `Configuration` clone per branch, and trailing-round trimming
// after every mutation (the seed's `normalize()` ran on every counter
// update).
// ---------------------------------------------------------------------------

fn seed_is_unlocked(
    sys: &CounterSystem,
    cfg: &Configuration,
    rule: ccta::RuleId,
    round: u32,
) -> bool {
    let vars = cfg.round_vars(round);
    sys.model()
        .rule(rule)
        .guard()
        .holds(&vars, sys.params().values())
}

fn seed_is_applicable(sys: &CounterSystem, cfg: &Configuration, action: Action) -> bool {
    let rule = sys.model().rule(action.rule);
    cfg.counter(rule.from(), action.round) >= 1
        && seed_is_unlocked(sys, cfg, action.rule, action.round)
}

fn seed_progress_actions(sys: &CounterSystem, cfg: &Configuration) -> Vec<Action> {
    let model = sys.model();
    let mut out = Vec::new();
    for round in sys.active_rounds(cfg) {
        for rule in model.rule_ids() {
            let action = Action::new(rule, round);
            if seed_is_applicable(sys, cfg, action) {
                out.push(action);
            }
        }
    }
    out.retain(|a| !model.rule(a.rule).is_self_loop());
    out
}

fn seed_apply(
    sys: &CounterSystem,
    cfg: &Configuration,
    action: Action,
    branch: usize,
) -> Configuration {
    assert!(
        seed_is_applicable(sys, cfg, action),
        "seed apply of inapplicable action"
    );
    let model = sys.model();
    let rule = model.rule(action.rule);
    let dest_round = if model.kind() == ccta::ModelKind::MultiRound && rule.is_round_switch() {
        action.round + 1
    } else {
        action.round
    };
    let mut next = cfg.clone();
    next.decrement_counter(rule.from(), action.round);
    next.trim(); // seed normalize() ran after every mutation
    next.add_counter(rule.branches()[branch].to, dest_round, 1);
    next.trim();
    for &(var, delta) in rule.update().increments() {
        next.add_var(var, action.round, delta);
        next.trim();
    }
    next
}

fn seed_outcomes(sys: &CounterSystem, cfg: &Configuration, action: Action) -> Vec<Outcome> {
    let rule = sys.model().rule(action.rule);
    let mut out = Vec::with_capacity(rule.branches().len());
    for (i, b) in rule.branches().iter().enumerate() {
        if b.prob.is_zero() {
            continue;
        }
        out.push(Outcome {
            branch: i,
            probability: b.prob,
            config: seed_apply(sys, cfg, action, i),
        });
    }
    out
}

fn occupancy_bits(sets: &[LocSet], cfg: &Configuration) -> u8 {
    let mut bits = 0u8;
    for (i, set) in sets.iter().enumerate() {
        if set.is_occupied(cfg) {
            bits |= 1 << i;
        }
    }
    bits
}

fn reconstruct_path(nodes: &[Node], target: usize) -> (Configuration, Schedule) {
    let mut steps = Vec::new();
    let mut current = target;
    while let Some((parent, step)) = nodes[current].parent {
        steps.push(step);
        current = parent;
    }
    steps.reverse();
    (nodes[current].config.clone(), Schedule::from_steps(steps))
}

/// Checks one query with the reference engine.  Mirrors
/// [`crate::ExplicitChecker::check`] for the universal queries and the
/// non-blocking side condition; the game queries (`ExistsAvoidOneOf`) also
/// run their forward exploration with reference bookkeeping.
pub fn reference_check(sys: &CounterSystem, spec: &Spec, options: &CheckerOptions) -> CheckOutcome {
    match spec {
        Spec::CoverNever {
            name,
            start,
            trigger,
            forbidden,
        } => check_monitored(
            sys,
            name,
            &start.configurations(sys),
            &[trigger.clone(), forbidden.clone()],
            0b11,
            format!(
                "a path occupies both {} and {}",
                trigger.name(),
                forbidden.name()
            ),
            options,
        ),
        Spec::NeverFrom {
            name,
            start,
            forbidden,
        } => check_monitored(
            sys,
            name,
            &start.configurations(sys),
            std::slice::from_ref(forbidden),
            0b1,
            format!("a path occupies {}", forbidden.name()),
            options,
        ),
        Spec::ExistsAvoidOneOf {
            name,
            start,
            forbidden_sets,
        } => check_exists_avoid(
            sys,
            name,
            &start.configurations(sys),
            forbidden_sets,
            options,
        ),
        Spec::NonBlocking { name, start } => {
            check_non_blocking(sys, name, &start.configurations(sys), options)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_monitored(
    sys: &CounterSystem,
    spec_name: &str,
    starts: &[Configuration],
    sets: &[LocSet],
    violation_bits: u8,
    explanation: String,
    options: &CheckerOptions,
) -> CheckOutcome {
    let mut index: HashMap<(Vec<u8>, u8), usize> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    let mut transitions = 0usize;

    let violation = |nodes: &[Node], violating: usize, transitions: usize| -> CheckOutcome {
        let (initial, schedule) = reconstruct_path(nodes, violating);
        CheckOutcome::violated(
            nodes.len(),
            transitions,
            Counterexample {
                spec: spec_name.to_string(),
                params: sys.params().clone(),
                initial,
                schedule,
                explanation: explanation.clone(),
            },
        )
    };

    for cfg in starts {
        let bits = occupancy_bits(sets, cfg);
        let key = (cfg.fingerprint_bytes(), bits);
        if index.contains_key(&key) {
            continue;
        }
        let id = nodes.len();
        index.insert(key, id);
        nodes.push(Node {
            config: cfg.clone(),
            bits,
            parent: None,
        });
        queue.push(id);
        if bits & violation_bits == violation_bits {
            return violation(&nodes, id, transitions);
        }
    }

    let mut head = 0usize;
    while head < queue.len() {
        let current = queue[head];
        head += 1;
        let cfg = nodes[current].config.clone();
        let bits = nodes[current].bits;
        for action in seed_progress_actions(sys, &cfg) {
            let outcomes = seed_outcomes(sys, &cfg, action);
            for outcome in outcomes {
                transitions += 1;
                if transitions > options.max_transitions {
                    return CheckOutcome::unknown(
                        nodes.len(),
                        transitions,
                        "transition bound exhausted",
                    );
                }
                let new_bits = bits | occupancy_bits(sets, &outcome.config);
                let key = (outcome.config.fingerprint_bytes(), new_bits);
                if index.contains_key(&key) {
                    continue;
                }
                let id = nodes.len();
                if id >= options.max_states {
                    return CheckOutcome::unknown(
                        nodes.len(),
                        transitions,
                        "state bound exhausted",
                    );
                }
                index.insert(key, id);
                nodes.push(Node {
                    config: outcome.config,
                    bits: new_bits,
                    parent: Some((current, ScheduledStep::with_branch(action, outcome.branch))),
                });
                queue.push(id);
                if new_bits & violation_bits == violation_bits {
                    return violation(&nodes, id, transitions);
                }
            }
        }
    }
    CheckOutcome::holds(nodes.len(), transitions)
}

fn check_non_blocking(
    sys: &CounterSystem,
    spec_name: &str,
    starts: &[Configuration],
    options: &CheckerOptions,
) -> CheckOutcome {
    // structural acyclicity is engine-independent; the reference only
    // reproduces the reachability part, so reuse the engine checker for the
    // cycle test by requiring callers to compare verdicts on acyclic models.
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    let mut transitions = 0usize;
    for cfg in starts {
        let key = cfg.fingerprint_bytes();
        if index.contains_key(&key) {
            continue;
        }
        let id = nodes.len();
        index.insert(key, id);
        nodes.push(Node {
            config: cfg.clone(),
            bits: 0,
            parent: None,
        });
        queue.push(id);
    }
    let model = sys.model();
    let mut head = 0usize;
    while head < queue.len() {
        let current = queue[head];
        head += 1;
        let cfg = nodes[current].config.clone();
        let actions = seed_progress_actions(sys, &cfg);
        if actions.is_empty() {
            let blocked = model.loc_ids().find(|&l| {
                cfg.counter(l, 0) > 0 && model.location(l).class() != ccta::LocClass::BorderCopy
            });
            if let Some(loc) = blocked {
                let (initial, schedule) = reconstruct_path(&nodes, current);
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: sys.params().clone(),
                    initial,
                    schedule,
                    explanation: format!(
                        "a fair execution blocks with an automaton stuck in {}",
                        model.location(loc).name()
                    ),
                };
                return CheckOutcome::violated(nodes.len(), transitions, ce);
            }
            continue;
        }
        for action in actions {
            let outcomes = seed_outcomes(sys, &cfg, action);
            for outcome in outcomes {
                transitions += 1;
                if transitions > options.max_transitions {
                    return CheckOutcome::unknown(
                        nodes.len(),
                        transitions,
                        "transition bound exhausted",
                    );
                }
                let key = outcome.config.fingerprint_bytes();
                if index.contains_key(&key) {
                    continue;
                }
                let id = nodes.len();
                if id >= options.max_states {
                    return CheckOutcome::unknown(
                        nodes.len(),
                        transitions,
                        "state bound exhausted",
                    );
                }
                index.insert(key, id);
                nodes.push(Node {
                    config: outcome.config,
                    bits: 0,
                    parent: Some((current, ScheduledStep::with_branch(action, outcome.branch))),
                });
                queue.push(id);
            }
        }
    }
    CheckOutcome::holds(nodes.len(), transitions)
}

struct GameNode {
    config: Configuration,
    bits: u8,
    actions: Vec<Vec<(ScheduledStep, usize)>>,
}

fn check_exists_avoid(
    sys: &CounterSystem,
    spec_name: &str,
    starts: &[Configuration],
    sets: &[LocSet],
    options: &CheckerOptions,
) -> CheckOutcome {
    assert!(
        !sets.is_empty() && sets.len() <= 8,
        "between 1 and 8 tracked location sets are supported"
    );
    let all_bits: u8 = ((1u16 << sets.len()) - 1) as u8;

    let mut index: HashMap<(Vec<u8>, u8), usize> = HashMap::new();
    let mut nodes: Vec<GameNode> = Vec::new();
    let mut start_ids = Vec::new();
    let mut transitions = 0usize;

    let mut queue: Vec<usize> = Vec::new();
    for cfg in starts {
        let bits = occupancy_bits(sets, cfg);
        let key = (cfg.fingerprint_bytes(), bits);
        let id = *index.entry(key).or_insert_with(|| {
            nodes.push(GameNode {
                config: cfg.clone(),
                bits,
                actions: Vec::new(),
            });
            queue.push(nodes.len() - 1);
            nodes.len() - 1
        });
        start_ids.push(id);
    }

    let mut head = 0usize;
    while head < queue.len() {
        let current = queue[head];
        head += 1;
        let cfg = nodes[current].config.clone();
        let bits = nodes[current].bits;
        if bits == all_bits {
            continue;
        }
        let mut action_edges = Vec::new();
        for action in seed_progress_actions(sys, &cfg) {
            let outcomes = seed_outcomes(sys, &cfg, action);
            let mut edges = Vec::with_capacity(outcomes.len());
            for outcome in outcomes {
                transitions += 1;
                if transitions > options.max_transitions {
                    return CheckOutcome::unknown(
                        nodes.len(),
                        transitions,
                        "transition bound exhausted",
                    );
                }
                let new_bits = bits | occupancy_bits(sets, &outcome.config);
                let key = (outcome.config.fingerprint_bytes(), new_bits);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        if nodes.len() >= options.max_states {
                            return CheckOutcome::unknown(
                                nodes.len(),
                                transitions,
                                "state bound exhausted",
                            );
                        }
                        nodes.push(GameNode {
                            config: outcome.config.clone(),
                            bits: new_bits,
                            actions: Vec::new(),
                        });
                        index.insert(key, nodes.len() - 1);
                        queue.push(nodes.len() - 1);
                        nodes.len() - 1
                    }
                };
                edges.push((ScheduledStep::with_branch(action, outcome.branch), id));
            }
            action_edges.push(edges);
        }
        nodes[current].actions = action_edges;
    }

    let mut winning: Vec<bool> = nodes.iter().map(|n| n.bits == all_bits).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..nodes.len() {
            if winning[i] {
                continue;
            }
            let can_force = nodes[i]
                .actions
                .iter()
                .any(|edges| !edges.is_empty() && edges.iter().all(|&(_, succ)| winning[succ]));
            if can_force {
                winning[i] = true;
                changed = true;
            }
        }
    }

    match start_ids.iter().find(|&&s| winning[s]) {
        None => CheckOutcome::holds(nodes.len(), transitions),
        Some(&bad_start) => {
            let mut steps = Vec::new();
            let mut current = bad_start;
            let mut guard = 0usize;
            while nodes[current].bits != all_bits && guard < nodes.len() + 1 {
                guard += 1;
                let Some(edges) = nodes[current]
                    .actions
                    .iter()
                    .find(|edges| !edges.is_empty() && edges.iter().all(|&(_, s)| winning[s]))
                else {
                    break;
                };
                let (step, succ) = edges[0];
                steps.push(step);
                current = succ;
            }
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: sys.params().clone(),
                initial: nodes[bad_start].config.clone(),
                schedule: Schedule::from_steps(steps),
                explanation: format!(
                    "an adversary can force every coin resolution to occupy all of: {}",
                    sets.iter()
                        .map(|s| s.name().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            CheckOutcome::violated(nodes.len(), transitions, ce)
        }
    }
}
