//! The reachability-graph cache: explore once, evaluate many.
//!
//! Every obligation of the catalogue explores what is substantially the
//! same reachable configuration graph of the single-round counter system —
//! only the *observation* differs (monitor bits, game target sets, blocking
//! scan).  [`ReachGraph`] materialises that graph once per
//! `(start restriction, valuation)` group: one run of the generic
//! [`Explorer`] with a monitor-free visitor interns every reachable
//! configuration into the [`StateStore`] and records the full transition
//! relation in the flat CSR arenas of [`GameGraph`] (the same machinery the
//! game solver builds its graph with).  Each obligation is then evaluated
//! as an `O(states + edges)` analysis pass over the cached graph:
//!
//! * [`Spec::CoverNever`] / [`Spec::NeverFrom`] — a sticky monitor-bit
//!   propagation fixpoint: a BFS over `(node, cumulative bits)` product
//!   states that walks cached CSR edges instead of re-expanding rules.
//!   The tracked [`LocSet`]s are precompiled to per-row byte masks
//!   ([`LocSet::row_mask`]) so the per-node occupancy test is a branch-free
//!   fold over the row.
//! * [`Spec::ExistsAvoidOneOf`] — the product game graph over
//!   `(node, cumulative bits)` is assembled from the cached edges and
//!   handed to the existing O(edges) worklist attractor
//!   ([`adversary_winning`]); the violating strategy path comes from the
//!   shared [`extract_strategy_path`].
//! * [`Spec::NonBlocking`] — a terminal/blocking scan: a cached node is
//!   terminal iff its CSR action span is empty (a complete exploration
//!   expands every interned node), and the blocked-location test reuses the
//!   per-spec classifier.
//!
//! Counterexamples stay genuinely replayable: monitored violations
//! reconstruct their schedule from the product-BFS parent chain (whose
//! steps are real [`ScheduledStep`]s of cached edges), non-blocking
//! violations walk the store's first-discovery parent edges, and game
//! violations follow the winning strategy through product edges.  Along
//! every reported path the cumulative occupancy of the tracked sets first
//! completes exactly at the final configuration — the same invariant the
//! per-spec searches guarantee — because a product state is checked for
//! violation the moment it is first created.
//!
//! The cached graph is monitor-free, so the per-spec state/transition
//! counts reported under the cache are derived from the analysis pass (the
//! product states and product edges it visits), not from a monitored
//! re-exploration; for a *holding* `NonBlocking` — whose search carries no
//! monitor bits — the counts coincide exactly with the per-spec path (a
//! violated one reports the full exploration, where the per-spec search
//! stops at the violating terminal).  Verdicts never differ: resource
//! budgets ([`CheckerOptions::max_states`] /
//! [`CheckerOptions::max_transitions`]) apply to every analysis pass, and a
//! build that trips a budget makes
//! [`crate::explicit::ExplicitChecker::check_cached`] fall back to the
//! per-spec search instead of blanketing the group with `Unknown`.

use crate::counterexample::Counterexample;
use crate::explicit::{blocked_location_in_row, find_progress_cycle, CheckerOptions};
use crate::explorer::{Exploration, Explorer, Visitor};
use crate::game::{adversary_winning, extract_strategy_path, CsrRecorder, GameGraph};
use crate::job::{InterruptKind, JobSignals};
use crate::pool::WorkerPool;
use crate::result::{CheckOutcome, CheckStatus};
use crate::spec::{LocSet, Spec, StartRestriction};
use crate::store::StateStore;
use cccounter::{Action, Configuration, CounterSystem, Schedule, ScheduledStep};
use ccta::{GuardRel, RuleId};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Sentinel for "product state not discovered yet" in the ordinal maps.
const NO_ORD: u32 = u32::MAX;

/// The compiled guard bounds of a counter system: one `(relation, bound)`
/// pair per guard atom, in rule order (see
/// [`CounterSystem::guard_bounds`]).  Two valuations over one model differ
/// in behaviour exactly where these bounds differ.
pub(crate) type GuardBounds = Vec<Vec<(GuardRel, i128)>>;

/// How one sweep step relates two valuations' compiled guard bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum GuardStep {
    /// Every bound is unchanged: the reachable graph is *identical* and the
    /// cached one serves as-is (a pure lineage hit).
    Identical,
    /// Every changed atom weakened its guard (`>=` bound decreased, `<`
    /// bound increased), so the old reachable set is a subset of the new
    /// one and the cached graph can be *extended* from a seeded frontier.
    /// `changed` lists the indices of the rules with at least one weakened
    /// atom.
    RelaxOnly {
        /// Rule indices whose guard weakened.
        changed: Vec<usize>,
    },
    /// Every changed atom tightened its guard (`>=` bound increased, `<`
    /// bound decreased), so the new reachable set is a *subset* of the old
    /// one and the cached graph can be *pruned* in place instead of
    /// rebuilt.  `changed` lists the indices of the rules with at least one
    /// tightened atom.
    TightenOnly {
        /// Rule indices whose guard tightened.
        changed: Vec<usize>,
    },
    /// Changed atoms weakened in one place and tightened in another, or the
    /// shapes disagree: neither subset relation holds, so the group is
    /// re-explored from scratch.
    Mixed,
}

/// Classifies a valuation step by diffing the compiled per-rule guard
/// bounds.  The two bound sets must come from the *same model* (same rules,
/// same atoms, same relations); any structural disagreement is conservative
/// [`GuardStep::Mixed`].
pub(crate) fn classify_guard_step(old: &GuardBounds, new: &GuardBounds) -> GuardStep {
    if old.len() != new.len() {
        return GuardStep::Mixed;
    }
    let mut relaxed = Vec::new();
    let mut tightened = Vec::new();
    for (rule, (old_guard, new_guard)) in old.iter().zip(new).enumerate() {
        if old_guard.len() != new_guard.len() {
            return GuardStep::Mixed;
        }
        let (mut rule_relaxed, mut rule_tightened) = (false, false);
        for (&(old_rel, old_bound), &(new_rel, new_bound)) in old_guard.iter().zip(new_guard) {
            if old_rel != new_rel {
                return GuardStep::Mixed;
            }
            if old_bound == new_bound {
                continue;
            }
            // a conjunction weakens iff every changed atom weakens, and
            // tightens iff every changed atom tightens
            let weaker = match old_rel {
                GuardRel::Ge => new_bound < old_bound,
                GuardRel::Lt => new_bound > old_bound,
            };
            if weaker {
                rule_relaxed = true;
            } else {
                rule_tightened = true;
            }
        }
        if rule_relaxed {
            relaxed.push(rule);
        }
        if rule_tightened {
            tightened.push(rule);
        }
    }
    match (relaxed.is_empty(), tightened.is_empty()) {
        (true, true) => GuardStep::Identical,
        (false, true) => GuardStep::RelaxOnly { changed: relaxed },
        (true, false) => GuardStep::TightenOnly { changed: tightened },
        (false, false) => GuardStep::Mixed,
    }
}

/// One surviving graph of a sweep lineage: the cached reachability graph of
/// a start-restriction group together with the guard bounds and system size
/// it is valid for.
struct LineageEntry {
    start: StartRestriction,
    graph: Rc<ReachGraph>,
    bounds: GuardBounds,
    processes: u64,
    coins: u64,
}

/// How a lineage lookup resolved (the caller builds fresh on
/// [`LineageStep::Build`]).
pub(crate) enum LineageStep {
    /// No usable predecessor graph; `rebuilt` distinguishes a discarded
    /// lineage entry (tightened/mixed step, size change, failed extension)
    /// from a first build.
    Build {
        /// Whether a lineage entry existed and had to be thrown away.
        rebuilt: bool,
    },
    /// The guard bounds are identical: the cached graph serves as-is.
    Reuse(Rc<ReachGraph>),
    /// The step was relax-only and the cached graph was extended in place;
    /// the `usize` is the seeded-frontier size.
    Extend(Rc<ReachGraph>, usize),
    /// The step was tighten-only and the cached graph was pruned in place;
    /// the `usize` is the number of dead actions cut.
    Prune(Rc<ReachGraph>, usize),
}

/// The cross-valuation graph lineage of one sweep worker: at most one
/// surviving [`ReachGraph`] per start-restriction group, carried from
/// valuation to valuation (see the "Incremental sweeps" section of the
/// crate docs).  Owned by whoever walks a group's valuations in order — the
/// sweep gives each grid worker one lineage for its contiguous block of
/// valuations — and handed to each per-valuation
/// [`crate::ExplicitChecker`] via
/// [`crate::ExplicitChecker::with_pool_and_lineage`].
#[derive(Default)]
pub struct GraphLineage {
    entries: RefCell<Vec<LineageEntry>>,
}

impl GraphLineage {
    /// An empty lineage.
    pub fn new() -> Self {
        GraphLineage::default()
    }

    /// Resolves a group's graph against the lineage for the system `sys`
    /// (whose compiled guard bounds are `bounds`): a matching entry is
    /// *taken out* and reused, extended, or discarded according to the
    /// classified guard step.  Whatever graph the caller ends up with, it
    /// re-enters the lineage through [`GraphLineage::record`].
    pub(crate) fn adopt(
        &self,
        sys: &CounterSystem,
        start: StartRestriction,
        bounds: &GuardBounds,
        options: &CheckerOptions,
        pool: &WorkerPool,
        signals: Option<&JobSignals>,
    ) -> LineageStep {
        let mut entry = {
            let mut entries = self.entries.borrow_mut();
            match entries.iter().position(|e| e.start == start) {
                Some(pos) => entries.remove(pos),
                None => return LineageStep::Build { rebuilt: false },
            }
        };
        // a size change means different start configurations (and different
        // reachable rows altogether): nothing to carry over
        if entry.processes != sys.num_processes() || entry.coins != sys.num_coins() {
            return LineageStep::Build { rebuilt: true };
        }
        match classify_guard_step(&entry.bounds, bounds) {
            GuardStep::Identical => {
                // a parked survivor re-entering service decodes its row
                // arena first (sole ownership is guaranteed whenever the
                // graph was parked — parking skips shared graphs)
                if let Some(graph) = Rc::get_mut(&mut entry.graph) {
                    graph.unpark();
                }
                LineageStep::Reuse(entry.graph)
            }
            GuardStep::Mixed => LineageStep::Build { rebuilt: true },
            GuardStep::TightenOnly { changed } => {
                if !crate::explorer::resolved_tighten_prune(options) {
                    return LineageStep::Build { rebuilt: true };
                }
                let Ok(mut graph) = Rc::try_unwrap(entry.graph) else {
                    return LineageStep::Build { rebuilt: true };
                };
                graph.unpark();
                let (pruned, cut) = graph.prune(sys, &changed);
                LineageStep::Prune(Rc::new(pruned), cut)
            }
            GuardStep::RelaxOnly { changed } => {
                // the previous valuation's checker has been dropped, so the
                // lineage holds the only reference; if anything else still
                // pins the graph, fall back to a fresh build
                let Ok(mut graph) = Rc::try_unwrap(entry.graph) else {
                    return LineageStep::Build { rebuilt: true };
                };
                graph.unpark();
                match graph.extend(sys, &changed, &entry.bounds, options, pool, signals) {
                    Ok((extended, seeds)) => LineageStep::Extend(Rc::new(extended), seeds),
                    // a resource budget (or a job signal) tripped
                    // mid-extension: rebuild from scratch so the
                    // bounded-build semantics are exactly the fresh path's
                    // (an interrupted cell's rebuild re-trips at its first
                    // wave boundary, so nothing is wasted)
                    Err(()) => LineageStep::Build { rebuilt: true },
                }
            }
        }
    }

    /// Records a group's (complete) graph as the lineage survivor for the
    /// given bounds and system size.  Bounded builds are *not* recorded: a
    /// budget-tripped graph falls back to the per-spec path anyway, and the
    /// next valuation should pay exactly the fresh-path cost.
    pub(crate) fn record(
        &self,
        sys: &CounterSystem,
        start: StartRestriction,
        graph: &Rc<ReachGraph>,
        bounds: &GuardBounds,
    ) {
        if graph.is_bounded() {
            return;
        }
        let mut entries = self.entries.borrow_mut();
        debug_assert!(entries.iter().all(|e| e.start != start));
        entries.push(LineageEntry {
            start,
            graph: Rc::clone(graph),
            bounds: bounds.clone(),
            processes: sys.num_processes(),
            coins: sys.num_coins(),
        });
    }

    /// Resident bytes of every graph currently surviving in the lineage.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .borrow()
            .iter()
            .map(|e| e.graph.resident_bytes())
            .sum()
    }

    /// Parks every solely-owned surviving graph between valuations:
    /// delta-encodes the row arenas, drops the intern indexes and compacts
    /// CSR garbage (see the "Verdict memoization & lineage compaction"
    /// crate docs).  Graphs still pinned elsewhere (a checkpoint, a live
    /// checker) are skipped — parking requires exclusive access because
    /// [`GraphLineage::adopt`] must be able to unpark in place.  Returns
    /// the `(resident bytes before, resident bytes after)` totals over the
    /// graphs parked by *this* call, for the sweep's compression counters.
    pub(crate) fn park_all(&self) -> (usize, usize) {
        let (mut full, mut compact) = (0, 0);
        for entry in self.entries.borrow_mut().iter_mut() {
            if let Some(graph) = Rc::get_mut(&mut entry.graph) {
                if graph.is_parked() {
                    continue;
                }
                let (f, c) = graph.park();
                full += f;
                compact += c;
            }
        }
        (full, compact)
    }
}

/// The monitor-free build visitor: records every explored edge in CSR form,
/// the interned start nodes, and the BFS discovery order of every fresh
/// node.  Unlike the game visitor it never prunes, so the cached graph
/// covers the full reachable space of the start-restriction group.  The
/// discovery order comes from the explorer's deterministic replay, so it is
/// identical at every worker/shard/wave count — node ids alone are *not*
/// (they interleave the shard tag), which is why order-sensitive consumers
/// like the non-blocking terminal scan must iterate `discovery` instead of
/// the store's id space.
#[derive(Default)]
struct CacheVisitor {
    csr: CsrRecorder,
    start_ids: Vec<u32>,
    discovery: Vec<u32>,
}

impl Visitor for CacheVisitor {
    fn successor_bits(&self, _parent_bits: u8, _row: &[u8]) -> u8 {
        0
    }

    fn start_node(&mut self, node: u32, _bits: u8, fresh: bool) -> bool {
        // duplicate start configurations intern to the same node; list it once
        if fresh {
            self.start_ids.push(node);
            self.discovery.push(node);
        }
        false
    }

    fn begin_node(&mut self, _node: u32) {
        self.csr.begin_node();
    }

    fn begin_action(&mut self, _node: u32, _action: Action) {
        self.csr.begin_action();
    }

    fn edge(
        &mut self,
        _from: u32,
        step: ScheduledStep,
        to: u32,
        _to_bits: u8,
        fresh: bool,
    ) -> bool {
        self.csr.edge(step, to);
        if fresh {
            self.discovery.push(to);
        }
        false
    }

    fn end_action(&mut self, node: u32, _action: Action) {
        self.csr.end_action(node);
    }

    fn end_node(&mut self, node: u32) {
        self.csr.end_node(node);
    }
}

/// The incremental-extension visitor: like [`CacheVisitor`] it records CSR
/// edges, but through a resumed recorder that appends to the existing
/// arenas and *replaces* the spans of re-expanded seed nodes.  Discovery
/// order and parents are not tracked here — [`ReachGraph::relink`]
/// re-derives both from the final edges.
struct ExtendVisitor {
    csr: CsrRecorder,
}

impl Visitor for ExtendVisitor {
    fn successor_bits(&self, _parent_bits: u8, _row: &[u8]) -> u8 {
        0
    }

    fn begin_node(&mut self, _node: u32) {
        self.csr.begin_node();
    }

    fn begin_action(&mut self, _node: u32, _action: Action) {
        self.csr.begin_action();
    }

    fn edge(
        &mut self,
        _from: u32,
        step: ScheduledStep,
        to: u32,
        _to_bits: u8,
        _fresh: bool,
    ) -> bool {
        self.csr.edge(step, to);
        false
    }

    fn end_action(&mut self, node: u32, _action: Action) {
        self.csr.end_action(node);
    }

    fn end_node(&mut self, node: u32) {
        self.csr.end_node(node);
    }
}

/// The atom bounds of one rule, stripped of their relations (the relations
/// are model-fixed; [`CounterSystem::rule_guard_holds_bytes_at`] only needs
/// the numbers).
fn atom_bounds(bounds: &GuardBounds, rule: RuleId) -> Vec<i128> {
    bounds[rule.0].iter().map(|&(_, b)| b).collect()
}

/// A cache build stopped mid-flight by a job signal: the partially
/// populated store and CSR arenas plus the suspended frontier.  Feeding it
/// back through [`ReachGraph::resume_build`] continues the build — and the
/// finished graph, its discovery order, its parents and its counts are
/// bit-identical to an uninterrupted build's.
pub(crate) struct BuildInFlight {
    store: StateStore,
    graph: GameGraph,
    start_ids: Vec<u32>,
    discovery: Vec<u32>,
    pending: Vec<u32>,
    next: Vec<u32>,
    states: usize,
    transitions: usize,
}

impl BuildInFlight {
    /// Resident bytes held by the in-flight build (store + CSR arenas).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.store.resident_bytes() + self.graph.resident_bytes()
    }

    /// States interned so far (for partial-progress reporting).
    pub(crate) fn states(&self) -> usize {
        self.states
    }
}

/// The result of a signal-aware cache build step.  A step value is
/// destructured immediately by its caller, so the size skew between a
/// finished graph and a boxed suspension never lives on the heap or in a
/// collection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum BuildStep {
    /// The build ran to its natural end (complete or resource-bounded).
    Done(ReachGraph),
    /// A job signal stopped the build at a wave boundary.
    Suspended(Box<BuildInFlight>, InterruptKind),
}

/// The cached reachable graph of one `(start restriction, valuation)`
/// group: the deduplicated configuration store, the CSR transition
/// relation, and the interned start nodes.  Built once per group by
/// [`ReachGraph::build`], evaluated once per obligation by
/// [`ReachGraph::evaluate`].
pub(crate) struct ReachGraph {
    store: StateStore,
    graph: GameGraph,
    start_ids: Vec<u32>,
    /// Every node in BFS discovery order (worker/shard independent).
    discovery: Vec<u32>,
    /// First-discovery parent edges *as a from-scratch build would have
    /// recorded them*, re-derived by [`ReachGraph::relink`] after an
    /// incremental extension (`None` for fresh builds, whose store already
    /// holds exactly these edges).  Indexed by node id.
    parents: Option<Vec<Option<(u32, ScheduledStep)>>>,
    /// States the sequential monitor-free search counted (already adjusted
    /// for the reference's stop-before-store state-bound convention).
    states: usize,
    transitions: usize,
    /// Why the build was inconclusive, if a resource budget tripped.
    bound: Option<&'static str>,
    /// Structural generation of the cached edges: bumped by every mutation
    /// (extend, prune), which also clears the verdict memo.  Informational —
    /// memo validity is enforced by the clearing itself, since the memo
    /// lives on the graph it describes.
    generation: u64,
    /// Memoised per-obligation verdicts over the current graph generation,
    /// keyed by structural [`Spec`] equality (see the "Verdict memoization
    /// & lineage compaction" crate docs).  Only definite holds/violated
    /// outcomes are stored — `Unknown` and interrupted passes rerun.
    memo: RefCell<Vec<(Spec, CheckOutcome)>>,
}

impl ReachGraph {
    /// Explores the reachable graph from the given start configurations —
    /// once — on the caller's worker pool.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn build(
        sys: &CounterSystem,
        starts: &[Configuration],
        options: &CheckerOptions,
        pool: &WorkerPool,
    ) -> Self {
        match Self::build_with_signals(sys, starts, options, pool, None, (0, 0, 0)) {
            BuildStep::Done(graph) => graph,
            BuildStep::Suspended(..) => unreachable!("no job signals were attached"),
        }
    }

    /// Like [`ReachGraph::build`], but polling job signals at wave
    /// boundaries: a cancellation or budget trip suspends the build with
    /// its frontier captured instead of discarding the work.  `base` holds
    /// the `(states, transitions, resident bytes)` the job already
    /// accounted outside this build.
    pub(crate) fn build_with_signals(
        sys: &CounterSystem,
        starts: &[Configuration],
        options: &CheckerOptions,
        pool: &WorkerPool,
        signals: Option<&JobSignals>,
        base: (usize, usize, usize),
    ) -> BuildStep {
        let mut explorer = Explorer::new(sys, options, pool).with_signals(signals, base);
        let mut visitor = CacheVisitor::default();
        let exploration = explorer.run(starts, &mut visitor);
        Self::finish_build(explorer, visitor, exploration)
    }

    /// Continues a suspended cache build exactly where it stopped (same
    /// store, same CSR arenas, same frontier); the finished graph is
    /// bit-identical to an uninterrupted build's.
    pub(crate) fn resume_build(
        in_flight: Box<BuildInFlight>,
        sys: &CounterSystem,
        options: &CheckerOptions,
        pool: &WorkerPool,
        signals: Option<&JobSignals>,
        base: (usize, usize, usize),
    ) -> BuildStep {
        let b = *in_flight;
        let mut explorer = Explorer::resume(sys, options, pool, b.store, b.states, b.transitions)
            .with_signals(signals, base);
        let mut visitor = CacheVisitor {
            csr: CsrRecorder::resume(b.graph),
            start_ids: b.start_ids,
            discovery: b.discovery,
        };
        let exploration = explorer.run_suspended(b.pending, b.next, &mut visitor);
        Self::finish_build(explorer, visitor, exploration)
    }

    /// Packages an exploration's end into a [`BuildStep`], capturing the
    /// suspended frontier when a job signal stopped it.
    fn finish_build(
        mut explorer: Explorer<'_>,
        visitor: CacheVisitor,
        exploration: Exploration,
    ) -> BuildStep {
        if exploration == Exploration::Interrupted {
            let suspended = explorer
                .take_suspended()
                .expect("an interrupted build captures its frontier");
            let (states, transitions) = (explorer.states(), explorer.transitions());
            return BuildStep::Suspended(
                Box::new(BuildInFlight {
                    store: explorer.into_store(),
                    graph: visitor.csr.graph,
                    start_ids: visitor.start_ids,
                    discovery: visitor.discovery,
                    pending: suspended.pending,
                    next: suspended.next,
                    states,
                    transitions,
                }),
                suspended.kind,
            );
        }
        let (states, bound) = match exploration {
            Exploration::Complete => (explorer.states(), None),
            Exploration::TransitionBound => (explorer.states(), Some("transition bound exhausted")),
            // like the reference engine, report the budget rather than the
            // over-budget state that was interned before the bound tripped
            Exploration::StateBound => (explorer.states() - 1, Some("state bound exhausted")),
            Exploration::Violation(_) | Exploration::Interrupted => {
                unreachable!("the cache visitor never reports violations")
            }
        };
        let transitions = explorer.transitions();
        BuildStep::Done(ReachGraph {
            store: explorer.into_store(),
            graph: visitor.csr.graph,
            start_ids: visitor.start_ids,
            discovery: visitor.discovery,
            parents: None,
            states,
            transitions,
            bound,
            generation: 0,
            memo: RefCell::new(Vec::new()),
        })
    }

    /// Extends a *complete* cached graph across a relax-only valuation step
    /// (see the "Incremental sweeps" crate docs): every stored row on which
    /// one of the `changed` rules is newly enabled — it fires under the new
    /// bounds but not under `old_bounds` — seeds the explorer's frontier,
    /// those nodes are re-expanded (their CSR spans are replaced with the
    /// full new action list), and fresh successors continue the
    /// level-synchronous BFS, appending to the store and the CSR arenas in
    /// place.  A final [`ReachGraph::relink`] pass re-derives the discovery
    /// order, the first-discovery parents and the state/transition counts
    /// by replaying a BFS over the final cached edges, which makes every
    /// analysis pass — verdicts, counts, counterexample schedules —
    /// bit-identical to a from-scratch build of the new valuation.
    ///
    /// Returns the seeded-frontier size alongside the extended graph, or
    /// `Err(())` if a resource budget tripped mid-extension (the caller
    /// rebuilds from scratch so bounded-build semantics stay exactly the
    /// fresh path's).
    pub(crate) fn extend(
        mut self,
        sys: &CounterSystem,
        changed: &[usize],
        old_bounds: &GuardBounds,
        options: &CheckerOptions,
        pool: &WorkerPool,
        signals: Option<&JobSignals>,
    ) -> Result<(Self, usize), ()> {
        debug_assert!(self.bound.is_none(), "only complete graphs are extended");
        let model = sys.model();
        let num_locations = model.locations().len();
        // self-loops never contribute exploration edges, so a weakened
        // self-loop guard cannot enable anything new
        let watched: Vec<(RuleId, usize, Vec<i128>)> = changed
            .iter()
            .map(|&r| RuleId(r))
            .filter(|&r| !model.rule(r).is_self_loop())
            .map(|r| (r, model.rule(r).from().0, atom_bounds(old_bounds, r)))
            .collect();

        // the seeded frontier, in the old BFS discovery order (deterministic
        // at every worker/shard/wave count): exactly the stored rows on
        // which a newly-enabled rule fires
        let mut seeds: Vec<u32> = Vec::new();
        for &node in &self.discovery {
            let row = self.store.row(node);
            let vars = &row[num_locations..];
            let newly_enabled = watched.iter().any(|(rule, from, old)| {
                row[*from] > 0
                    && sys.rule_guard_holds_bytes(*rule, vars)
                    && !sys.rule_guard_holds_bytes_at(*rule, vars, old)
            });
            if newly_enabled {
                seeds.push(node);
            }
        }
        let seed_count = seeds.len();
        if seed_count == 0 {
            // no stored row unlocks anything new, so the weakened bounds are
            // unobservable on the reachable fragment: the graph — including
            // its counts and parents — is already the fresh build's
            return Ok((self, 0));
        }

        // the previous build was complete, so its state count equals the
        // store population: the resuming explorer's budget counters continue
        // from the cumulative totals, like a from-scratch build would count
        // (re-expanded seed edges are re-counted, which can only trip a
        // budget *earlier* than fresh — and a tripped extension rebuilds
        // fresh anyway)
        let store = std::mem::replace(&mut self.store, StateStore::new(sys));
        let mut explorer =
            Explorer::resume(sys, options, pool, store, self.states, self.transitions)
                .with_signals(signals, (0, 0, 0));
        let mut visitor = ExtendVisitor {
            csr: CsrRecorder::resume(std::mem::take(&mut self.graph)),
        };
        let exploration = explorer.run_from_nodes(seeds, &mut visitor);
        self.store = explorer.into_store();
        self.graph = visitor.csr.graph;
        match exploration {
            Exploration::Complete => {}
            // an interrupted extension also falls back to the fresh-rebuild
            // path (whose first wave boundary re-trips the signal)
            Exploration::StateBound | Exploration::TransitionBound | Exploration::Interrupted => {
                return Err(())
            }
            Exploration::Violation(_) => {
                unreachable!("the extension visitor never reports violations")
            }
        }
        self.relink();
        // the edges changed: memoised verdicts no longer describe this
        // graph (the zero-seed early return above keeps them — the graph
        // is untouched there)
        self.generation += 1;
        self.memo.borrow_mut().clear();
        Ok((self, seed_count))
    }

    /// Prunes a *complete* cached graph across a tighten-only valuation
    /// step: every cached action of a `changed` rule is re-validated
    /// against the tightened guard bounds on its source row, dead actions
    /// are cut, and the CSR arenas are compacted around the survivors
    /// (which also drops garbage spans left behind by earlier extends).
    /// Rows that become unreachable stay interned but are excluded from the
    /// re-derived discovery order by the final [`ReachGraph::relink`] —
    /// every analysis pass iterates discovery or walks edges from the start
    /// nodes, so verdicts, counts and counterexample schedules are
    /// bit-identical to a from-scratch build of the new valuation.
    /// Infallible: a tightened reachable set is a subset of the old one, so
    /// no resource budget that admitted the old graph can trip here.
    ///
    /// Returns the number of dead actions cut alongside the pruned graph.
    pub(crate) fn prune(mut self, sys: &CounterSystem, changed: &[usize]) -> (Self, usize) {
        debug_assert!(self.bound.is_none(), "only complete graphs are pruned");
        let num_locations = sys.model().locations().len();
        let mut is_changed = vec![false; sys.model().rules().len()];
        for &rule in changed {
            is_changed[rule] = true;
        }
        let old = std::mem::take(&mut self.graph);
        let mut compact = CsrRecorder::default();
        let mut cut = 0usize;
        // walk nodes in discovery order so the compacted arenas are laid
        // out the way a fresh enumeration would visit them; per-node action
        // order is preserved, and tightening only removes actions, so the
        // surviving list is exactly the fresh build's
        for &node in &self.discovery {
            let row = self.store.row(node);
            let vars = &row[num_locations..];
            compact.begin_node();
            for a in old.actions_of(node) {
                let edges = old.edges_of(a);
                let rule = edges
                    .first()
                    .map(|&(step, _)| step.action.rule)
                    .unwrap_or(RuleId(0));
                if is_changed[rule.0] && !sys.rule_guard_holds_bytes(rule, vars) {
                    cut += 1;
                    continue;
                }
                compact.begin_action();
                for &(step, to) in edges {
                    compact.edge(step, to);
                }
                compact.end_action(node);
            }
            compact.end_node(node);
        }
        self.graph = compact.graph;
        self.relink();
        self.generation += 1;
        self.memo.borrow_mut().clear();
        (self, cut)
    }

    /// Re-derives the BFS discovery order, the first-discovery parent edges
    /// and the state/transition counts by replaying a breadth-first search
    /// over the final cached CSR edges from the start nodes.  Walking nodes
    /// in FIFO discovery order and each node's actions and branches in CSR
    /// order reproduces *exactly* the sequence in which a from-scratch
    /// explorer run at the new valuation would have discovered states and
    /// enumerated candidates — so every order-sensitive consumer (the
    /// non-blocking terminal scan, path reconstruction, the reported
    /// counts) behaves bit-identically to a fresh build.
    fn relink(&mut self) {
        let bound = self.store.id_bound();
        let mut parents: Vec<Option<(u32, ScheduledStep)>> = vec![None; bound];
        let mut seen = vec![false; bound];
        let mut discovery: Vec<u32> = Vec::with_capacity(self.store.len());
        for &start in &self.start_ids {
            if !seen[start as usize] {
                seen[start as usize] = true;
                discovery.push(start);
            }
        }
        let mut transitions = 0usize;
        let mut cursor = 0usize;
        while cursor < discovery.len() {
            let node = discovery[cursor];
            cursor += 1;
            for a in self.graph.actions_of(node) {
                for &(step, to) in self.graph.edges_of(a) {
                    transitions += 1;
                    if !seen[to as usize] {
                        seen[to as usize] = true;
                        parents[to as usize] = Some((node, step));
                        discovery.push(to);
                    }
                }
            }
        }
        self.states = discovery.len();
        self.transitions = transitions;
        self.discovery = discovery;
        self.parents = Some(parents);
    }

    /// Rebuilds the initial configuration and schedule leading to a node:
    /// from the re-derived parents of an extended graph, or straight from
    /// the store's first-discovery edges for a fresh build (which are the
    /// same thing).
    fn reconstruct(&self, target: u32) -> (Configuration, Schedule) {
        let Some(parents) = &self.parents else {
            return self.store.reconstruct_path(target);
        };
        let mut steps = Vec::new();
        let mut current = target;
        while let Some((parent, step)) = parents[current as usize] {
            steps.push(step);
            current = parent;
        }
        steps.reverse();
        (self.store.decode(current), Schedule::from_steps(steps))
    }

    /// Resident bytes of the cached graph: the deduplicated store, the CSR
    /// arenas and the lineage bookkeeping (discovery order, derived
    /// parents).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.graph.resident_bytes()
            + (self.discovery.len() + self.start_ids.len()) * std::mem::size_of::<u32>()
            + self.parents.as_ref().map_or(0, |p| {
                p.len() * std::mem::size_of::<Option<(u32, ScheduledStep)>>()
            })
    }

    /// Whether the build tripped a resource budget, leaving the graph
    /// incomplete.  [`crate::explicit::ExplicitChecker::check_cached`]
    /// falls back to the per-spec search in that case, so a budget bound
    /// never turns a definite per-spec verdict into `Unknown`.
    pub(crate) fn is_bounded(&self) -> bool {
        self.bound.is_some()
    }

    /// Number of distinct configurations explored for the cached graph.
    pub(crate) fn states(&self) -> usize {
        self.states
    }

    /// Number of transitions explored for the cached graph.
    pub(crate) fn transitions(&self) -> usize {
        self.transitions
    }

    /// Parks the cached graph between valuations: delta-encodes the row
    /// arena and drops the intern index ([`StateStore::park`]), and
    /// compacts CSR garbage left behind by earlier extends.  Returns the
    /// `(before, after)` resident-byte figures.  The parked graph still
    /// answers nothing — [`ReachGraph::unpark`] must run before any
    /// evaluation or extension, which [`GraphLineage::adopt`] does.
    pub(crate) fn park(&mut self) -> (usize, usize) {
        let full = self.resident_bytes();
        // compact only when extends actually left garbage runs behind — a
        // fresh or pruned graph's arenas are already dense
        let referenced: usize = (0..self.graph.node_spans.len() as u32)
            .map(|n| self.graph.actions_of(n).len())
            .sum();
        if referenced < self.graph.action_spans.len() {
            let old = std::mem::take(&mut self.graph);
            let mut compact = CsrRecorder::default();
            for &node in &self.discovery {
                compact.begin_node();
                for a in old.actions_of(node) {
                    compact.begin_action();
                    for &(step, to) in old.edges_of(a) {
                        compact.edge(step, to);
                    }
                    compact.end_action(node);
                }
                compact.end_node(node);
            }
            self.graph = compact.graph;
        }
        self.store.park();
        (full, self.resident_bytes())
    }

    /// Restores a parked graph to full service: decodes the row arena and
    /// rebuilds the intern index, bit-identically (see [`StateStore::unpark`]).
    pub(crate) fn unpark(&mut self) {
        self.store.unpark();
    }

    /// Whether the graph's store is currently parked.
    pub(crate) fn is_parked(&self) -> bool {
        self.store.is_parked()
    }

    /// Evaluates one obligation through the per-graph verdict memo: an
    /// obligation already answered on this graph generation returns its
    /// stored outcome without running any analysis pass.  The memo is keyed
    /// by structural [`Spec`] equality and cleared by every graph mutation
    /// (extend, prune), so a hit can only serve a byte-identical graph —
    /// which makes the memoised outcome (verdict, counts, schedule) exactly
    /// what the pass would recompute.  Counterexample params are rewritten
    /// to the current system's: an identical-classified step can cross
    /// valuations whose params differ even though every compiled bound (and
    /// hence the graph and the violating schedule) is the same.
    ///
    /// Returns the outcome and whether it was served from the memo.
    pub(crate) fn evaluate_memo(
        &self,
        sys: &CounterSystem,
        spec: &Spec,
        options: &CheckerOptions,
        signals: Option<&JobSignals>,
    ) -> (CheckOutcome, bool) {
        if !crate::explorer::resolved_verdict_memo(options) {
            return (self.evaluate(sys, spec, options, signals), false);
        }
        let hit = self
            .memo
            .borrow()
            .iter()
            .find(|(s, _)| s == spec)
            .map(|(_, o)| o.clone());
        if let Some(mut outcome) = hit {
            if let Some(ce) = &mut outcome.counterexample {
                ce.params = sys.params().clone();
            }
            return (outcome, true);
        }
        let outcome = self.evaluate(sys, spec, options, signals);
        // only definite verdicts are worth replaying; `Unknown` (a budget
        // or an interruption) must rerun so a resumed job re-attempts it
        if matches!(outcome.status, CheckStatus::Holds | CheckStatus::Violated) {
            self.memo.borrow_mut().push((spec.clone(), outcome.clone()));
        }
        (outcome, false)
    }

    /// Evaluates one obligation as an analysis pass over the cached graph.
    ///
    /// The passes poll the *fast* job signals (cancellation/deadline) every
    /// ~1k product transitions; the job-level state/transition budgets do
    /// not apply here — an analysis pass re-walks cached edges rather than
    /// exploring new ones (see the "Job lifecycle & fault model" crate
    /// docs).  An interrupted pass reports an `interrupted: …` outcome and
    /// is redone from scratch on resume, which is bit-identical because the
    /// passes are deterministic.
    pub(crate) fn evaluate(
        &self,
        sys: &CounterSystem,
        spec: &Spec,
        options: &CheckerOptions,
        signals: Option<&JobSignals>,
    ) -> CheckOutcome {
        if let Some(detail) = self.bound {
            // defensive only: `check_cached` falls back to the per-spec
            // search for bounded builds before calling evaluate
            return CheckOutcome::unknown(self.states, self.transitions, detail);
        }
        if let Some(kind) = signals.and_then(|s| s.fast_stop()) {
            return CheckOutcome::interrupted(0, 0, kind);
        }
        match spec {
            Spec::CoverNever {
                name,
                trigger,
                forbidden,
                ..
            } => self.check_monitored(
                name,
                &[trigger.clone(), forbidden.clone()],
                0b11,
                format!(
                    "a path occupies both {} and {}",
                    trigger.name(),
                    forbidden.name()
                ),
                sys,
                options,
                signals,
            ),
            Spec::NeverFrom {
                name, forbidden, ..
            } => self.check_monitored(
                name,
                std::slice::from_ref(forbidden),
                0b1,
                format!("a path occupies {}", forbidden.name()),
                sys,
                options,
                signals,
            ),
            Spec::ExistsAvoidOneOf {
                name,
                forbidden_sets,
                ..
            } => self.check_exists_avoid(name, forbidden_sets, sys, options, signals),
            Spec::NonBlocking { name, .. } => self.check_non_blocking(name, sys, signals),
        }
    }

    /// Monitor bits per cached node, computed in one pass over the row
    /// arena with the sets precompiled to branch-free byte masks.
    fn occupancy(&self, sets: &[LocSet]) -> Vec<u8> {
        let stride = self.store.stride();
        let masks: Vec<Vec<u8>> = sets.iter().map(|s| s.row_mask(stride)).collect();
        let mut occ = vec![0u8; self.store.id_bound()];
        for id in self.store.ids() {
            let row = self.store.row(id);
            let mut bits = 0u8;
            for (i, mask) in masks.iter().enumerate() {
                let mut acc = 0u8;
                for (r, m) in row.iter().zip(mask.iter()) {
                    acc |= r & m;
                }
                bits |= u8::from(acc != 0) << i;
            }
            occ[id as usize] = bits;
        }
        occ
    }

    /// The sticky monitor-bit propagation fixpoint: a BFS over
    /// `(node, cumulative bits)` product states walking cached edges,
    /// firing a violation the first time a product state covers
    /// `violation_bits` — exactly when the per-spec monitored search would
    /// have fired on its fresh `(row, bits)` state.
    #[allow(clippy::too_many_arguments)]
    fn check_monitored(
        &self,
        spec_name: &str,
        sets: &[LocSet],
        violation_bits: u8,
        explanation: String,
        sys: &CounterSystem,
        options: &CheckerOptions,
        signals: Option<&JobSignals>,
    ) -> CheckOutcome {
        // 2^k product slots per node: the catalogue's monitored specs use
        // k <= 2, and check_cached routes anything wider than k == 3 to the
        // per-spec search
        debug_assert!(
            sets.len() <= 3,
            "at most 3 tracked sets fit the flat product maps"
        );
        let occ = self.occupancy(sets);
        let num_vals = 1usize << sets.len();
        let slot = |node: u32, bits: u8| node as usize * num_vals + bits as usize;
        // product slot -> discovery ordinal into `parents`
        let mut ordinal = vec![NO_ORD; self.store.id_bound() * num_vals];
        // per discovered product state: (parent node, parent bits, step)
        let mut parents: Vec<(u32, u8, ScheduledStep)> = Vec::new();
        let mut queue: VecDeque<(u32, u8)> = VecDeque::new();
        let mut states = 0usize;
        let mut transitions = 0usize;

        let root = (
            NO_ORD,
            0u8,
            ScheduledStep::dirac(Action::new(ccta::RuleId(0), 0)),
        );
        for &start in &self.start_ids {
            let bits = occ[start as usize];
            ordinal[slot(start, bits)] = parents.len() as u32;
            parents.push(root);
            states += 1;
            if states > options.max_states {
                return CheckOutcome::unknown(states - 1, transitions, "state bound exhausted");
            }
            if bits & violation_bits == violation_bits {
                return self.monitored_violation(
                    spec_name,
                    sys,
                    &ordinal,
                    &parents,
                    num_vals,
                    (start, bits),
                    states,
                    transitions,
                    explanation,
                );
            }
            queue.push_back((start, bits));
        }

        while let Some((node, bits)) = queue.pop_front() {
            for a in self.graph.actions_of(node) {
                for &(step, succ) in self.graph.edges_of(a) {
                    transitions += 1;
                    if transitions & 0x3FF == 0 {
                        if let Some(kind) = signals.and_then(|s| s.fast_stop()) {
                            return CheckOutcome::interrupted(states, transitions, kind);
                        }
                    }
                    if transitions > options.max_transitions {
                        return CheckOutcome::unknown(
                            states,
                            transitions,
                            "transition bound exhausted",
                        );
                    }
                    let new_bits = bits | occ[succ as usize];
                    let s = slot(succ, new_bits);
                    if ordinal[s] != NO_ORD {
                        continue;
                    }
                    ordinal[s] = parents.len() as u32;
                    parents.push((node, bits, step));
                    states += 1;
                    if states > options.max_states {
                        return CheckOutcome::unknown(
                            states - 1,
                            transitions,
                            "state bound exhausted",
                        );
                    }
                    if new_bits & violation_bits == violation_bits {
                        return self.monitored_violation(
                            spec_name,
                            sys,
                            &ordinal,
                            &parents,
                            num_vals,
                            (succ, new_bits),
                            states,
                            transitions,
                            explanation,
                        );
                    }
                    queue.push_back((succ, new_bits));
                }
            }
        }
        CheckOutcome::holds(states, transitions)
    }

    /// Reconstructs the violating schedule from the product-BFS parent
    /// chain; every step is a real cached edge, so the schedule replays.
    #[allow(clippy::too_many_arguments)]
    fn monitored_violation(
        &self,
        spec_name: &str,
        sys: &CounterSystem,
        ordinal: &[u32],
        parents: &[(u32, u8, ScheduledStep)],
        num_vals: usize,
        target: (u32, u8),
        states: usize,
        transitions: usize,
        explanation: String,
    ) -> CheckOutcome {
        let mut steps = Vec::new();
        let (mut node, mut bits) = target;
        loop {
            let ord = ordinal[node as usize * num_vals + bits as usize] as usize;
            let (pnode, pbits, step) = parents[ord];
            if pnode == NO_ORD {
                break;
            }
            steps.push(step);
            node = pnode;
            bits = pbits;
        }
        steps.reverse();
        let ce = Counterexample {
            spec: spec_name.to_string(),
            params: sys.params().clone(),
            initial: self.store.decode(node),
            schedule: Schedule::from_steps(steps),
            explanation,
        };
        CheckOutcome::violated(states, transitions, ce)
    }

    /// The `∀ adversary ∃ path` conditions: assemble the
    /// `(node, cumulative bits)` product game graph from cached edges, then
    /// run the shared worklist attractor and strategy extraction.  The
    /// product mirrors the direct game search exactly — including its
    /// pruning of nodes already losing for the coin — so a complete pass
    /// reports the same state and transition counts.
    fn check_exists_avoid(
        &self,
        spec_name: &str,
        sets: &[LocSet],
        sys: &CounterSystem,
        options: &CheckerOptions,
        signals: Option<&JobSignals>,
    ) -> CheckOutcome {
        assert!(
            !sets.is_empty() && sets.len() <= 8,
            "between 1 and 8 tracked location sets are supported"
        );
        let all_bits: u8 = ((1u16 << sets.len()) - 1) as u8;
        let occ = self.occupancy(sets);
        let num_vals = 1usize << sets.len();
        let slot = |node: u32, bits: u8| node as usize * num_vals + bits as usize;
        let mut ordinal = vec![NO_ORD; self.store.id_bound() * num_vals];
        // dense product ids in discovery order
        let mut pnodes: Vec<(u32, u8)> = Vec::new();
        let mut transitions = 0usize;

        let mut start_pids: Vec<u32> = Vec::new();
        for &start in &self.start_ids {
            let bits = occ[start as usize];
            let s = slot(start, bits);
            if ordinal[s] == NO_ORD {
                ordinal[s] = pnodes.len() as u32;
                pnodes.push((start, bits));
                if pnodes.len() > options.max_states {
                    return CheckOutcome::unknown(
                        pnodes.len() - 1,
                        transitions,
                        "state bound exhausted",
                    );
                }
            }
            start_pids.push(ordinal[s]);
        }

        // forward product construction in discovery order (the queue is the
        // pnodes arena itself, consumed by a cursor)
        let mut csr = CsrRecorder::default();
        let mut cursor = 0usize;
        while cursor < pnodes.len() {
            let pid = cursor as u32;
            let (node, bits) = pnodes[cursor];
            cursor += 1;
            if bits == all_bits {
                // already losing for the coin; not expanded (mirrors the
                // direct game visitor's `should_expand`)
                continue;
            }
            let actions = self.graph.actions_of(node);
            if actions.is_empty() {
                continue;
            }
            csr.begin_node();
            for a in actions {
                csr.begin_action();
                for &(step, succ) in self.graph.edges_of(a) {
                    transitions += 1;
                    if transitions & 0x3FF == 0 {
                        if let Some(kind) = signals.and_then(|s| s.fast_stop()) {
                            return CheckOutcome::interrupted(pnodes.len(), transitions, kind);
                        }
                    }
                    if transitions > options.max_transitions {
                        return CheckOutcome::unknown(
                            pnodes.len(),
                            transitions,
                            "transition bound exhausted",
                        );
                    }
                    let new_bits = bits | occ[succ as usize];
                    let s = slot(succ, new_bits);
                    if ordinal[s] == NO_ORD {
                        ordinal[s] = pnodes.len() as u32;
                        pnodes.push((succ, new_bits));
                        if pnodes.len() > options.max_states {
                            return CheckOutcome::unknown(
                                pnodes.len() - 1,
                                transitions,
                                "state bound exhausted",
                            );
                        }
                    }
                    csr.edge(step, ordinal[s]);
                }
                csr.end_action(pid);
            }
            csr.end_node(pid);
        }

        let pgraph = csr.graph;
        let seeds: Vec<u32> = (0..pnodes.len() as u32)
            .filter(|&p| pnodes[p as usize].1 == all_bits)
            .collect();
        let winning = adversary_winning(&pgraph, pnodes.len(), seeds);
        let (states, transitions) = (pnodes.len(), transitions);
        match start_pids.iter().find(|&&p| winning[p as usize]) {
            None => CheckOutcome::holds(states, transitions),
            Some(&bad_start) => {
                let schedule = extract_strategy_path(
                    &pgraph,
                    &winning,
                    bad_start,
                    all_bits,
                    |p| pnodes[p as usize].1,
                    pnodes.len(),
                );
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: sys.params().clone(),
                    initial: self.store.decode(pnodes[bad_start as usize].0),
                    schedule,
                    explanation: format!(
                        "an adversary can force every coin resolution to occupy all of: {}",
                        sets.iter()
                            .map(|s| s.name().to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                };
                CheckOutcome::violated(states, transitions, ce)
            }
        }
    }

    /// The Theorem-2 side condition: progress-graph acyclicity plus a scan
    /// of the cached terminal nodes (empty CSR action span) for automata
    /// stranded outside the border-copy sinks.  The cached exploration is
    /// the same monitor-free search the per-spec path runs, so a positive
    /// verdict reports identical counts.
    fn check_non_blocking(
        &self,
        spec_name: &str,
        sys: &CounterSystem,
        signals: Option<&JobSignals>,
    ) -> CheckOutcome {
        if let Some(loc) = find_progress_cycle(sys) {
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: sys.params().clone(),
                initial: self
                    .start_ids
                    .first()
                    .map(|&s| self.store.decode(s))
                    .unwrap_or_else(|| sys.empty_configuration()),
                schedule: Schedule::new(),
                explanation: format!(
                    "the progress graph has a cycle through location {}",
                    sys.model().location(loc).name()
                ),
            };
            return CheckOutcome::violated(0, 0, ce);
        }
        // scan in BFS discovery order — the per-spec search dequeues (and
        // classifies) terminals in exactly this order, so the reported
        // terminal is the same one it would find, at every worker and
        // shard count (`store.ids()` order would depend on the sharding)
        for (scanned, &id) in self.discovery.iter().enumerate() {
            if scanned & 0xFFF == 0 {
                if let Some(kind) = signals.and_then(|s| s.fast_stop()) {
                    return CheckOutcome::interrupted(self.states, self.transitions, kind);
                }
            }
            if !self.graph.actions_of(id).is_empty() {
                continue;
            }
            if let Some(loc) = blocked_location_in_row(sys, self.store.row(id)) {
                let (initial, schedule) = self.reconstruct(id);
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: sys.params().clone(),
                    initial,
                    schedule,
                    explanation: format!(
                        "a fair execution blocks with an automaton stuck in {}",
                        sys.model().location(loc).name()
                    ),
                };
                return CheckOutcome::violated(self.states, self.transitions, ce);
            }
        }
        CheckOutcome::holds(self.states, self.transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccta::GuardRel::{Ge, Lt};

    fn bounds(spec: &[&[(GuardRel, i128)]]) -> GuardBounds {
        spec.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn classifier_reports_identical_bounds() {
        let old = bounds(&[&[(Ge, 3)], &[], &[(Lt, 2), (Ge, 1)]]);
        assert_eq!(
            classify_guard_step(&old, &old.clone()),
            GuardStep::Identical
        );
    }

    #[test]
    fn classifier_detects_relaxation_in_both_directions() {
        // a >= bound weakens downward, a < bound weakens upward
        let old = bounds(&[&[(Ge, 3)], &[(Lt, 2)], &[(Ge, 5)]]);
        let new = bounds(&[&[(Ge, 2)], &[(Lt, 4)], &[(Ge, 5)]]);
        assert_eq!(
            classify_guard_step(&old, &new),
            GuardStep::RelaxOnly {
                changed: vec![0, 1]
            }
        );
    }

    #[test]
    fn classifier_separates_tighten_only_from_mixed() {
        let old = bounds(&[&[(Ge, 3)], &[(Lt, 2)]]);
        // Ge bound moved up: tighter, and nothing weakened -> prunable
        let tighter_ge = bounds(&[&[(Ge, 4)], &[(Lt, 2)]]);
        assert_eq!(
            classify_guard_step(&old, &tighter_ge),
            GuardStep::TightenOnly { changed: vec![0] }
        );
        // Lt bound moved down: tighter
        let tighter_lt = bounds(&[&[(Ge, 3)], &[(Lt, 1)]]);
        assert_eq!(
            classify_guard_step(&old, &tighter_lt),
            GuardStep::TightenOnly { changed: vec![1] }
        );
        // one rule relaxes while another tightens: genuinely mixed
        let mixed = bounds(&[&[(Ge, 2)], &[(Lt, 1)]]);
        assert_eq!(classify_guard_step(&old, &mixed), GuardStep::Mixed);
    }

    #[test]
    fn classifier_relaxes_per_atom_within_one_rule() {
        // one atom of the conjunction weakens, its sibling is unchanged:
        // the conjunction as a whole weakens
        let old = bounds(&[&[(Ge, 3), (Lt, 2)]]);
        let new = bounds(&[&[(Ge, 1), (Lt, 2)]]);
        assert_eq!(
            classify_guard_step(&old, &new),
            GuardStep::RelaxOnly { changed: vec![0] }
        );
        // ... but a tightened sibling poisons the rule: neither subset
        // relation holds for the conjunction as a whole
        let poisoned = bounds(&[&[(Ge, 1), (Lt, 1)]]);
        assert_eq!(classify_guard_step(&old, &poisoned), GuardStep::Mixed);
    }

    #[test]
    fn classifier_is_conservative_on_structural_mismatch() {
        let old = bounds(&[&[(Ge, 3)]]);
        assert_eq!(
            classify_guard_step(&old, &bounds(&[&[(Ge, 3)], &[]])),
            GuardStep::Mixed
        );
        assert_eq!(
            classify_guard_step(&old, &bounds(&[&[(Ge, 3), (Ge, 1)]])),
            GuardStep::Mixed
        );
        assert_eq!(
            classify_guard_step(&old, &bounds(&[&[(Lt, 3)]])),
            GuardStep::Mixed
        );
    }

    #[test]
    fn bounded_extension_rebuilds_and_never_enters_the_lineage() {
        let model = crate::fixtures::voting_model().single_round().unwrap();
        let old_sys =
            CounterSystem::new(model.clone(), ccta::ParamValuation::new(vec![7, 1, 1, 1])).unwrap();
        let new_sys =
            CounterSystem::new(model, ccta::ParamValuation::new(vec![7, 2, 1, 1])).unwrap();
        let pool = WorkerPool::new(1);
        let options = CheckerOptions::default();
        let start = StartRestriction::RoundStart;
        let starts = start.configurations(&old_sys);

        let lineage = GraphLineage::new();
        let graph = Rc::new(ReachGraph::build(&old_sys, &starts, &options, &pool));
        assert!(!graph.is_bounded());
        let old_transitions = graph.transitions();
        lineage.record(&old_sys, start, &graph, &old_sys.guard_bounds());
        drop(graph); // the lineage must hold the only reference

        // a transition budget equal to the old graph's total trips on the
        // first re-counted seed transition, so the relax-only extension is
        // guaranteed to come back bounded — the lineage entry must be
        // discarded and the step reported as a rebuild
        let mut tight = options;
        tight.max_transitions = old_transitions;
        match lineage.adopt(
            &new_sys,
            start,
            &new_sys.guard_bounds(),
            &tight,
            &pool,
            None,
        ) {
            LineageStep::Build { rebuilt } => assert!(rebuilt, "a tripped extension is a rebuild"),
            LineageStep::Reuse(_) => panic!("bounds differ; nothing may be reused"),
            LineageStep::Extend(..) => panic!("the budget must trip the extension"),
            LineageStep::Prune(..) => panic!("a relax-only step never prunes"),
        }

        // the consequent fresh build under the same budget is bounded, and
        // a bounded graph never enters the lineage
        let bounded = Rc::new(ReachGraph::build(
            &new_sys,
            &start.configurations(&new_sys),
            &tight,
            &pool,
        ));
        assert!(bounded.is_bounded());
        lineage.record(&new_sys, start, &bounded, &new_sys.guard_bounds());
        assert_eq!(lineage.resident_bytes(), 0, "bounded graphs are not kept");
        match lineage.adopt(
            &new_sys,
            start,
            &new_sys.guard_bounds(),
            &options,
            &pool,
            None,
        ) {
            LineageStep::Build { rebuilt } => {
                assert!(!rebuilt, "the lineage must have stayed empty")
            }
            _ => panic!("an empty lineage can only build fresh"),
        }
    }

    #[test]
    fn classifier_matches_real_compiled_bounds() {
        // the compiled bounds of two valuations of the voting fixture:
        // raising t lowers the n - t - f quorum, a pure relaxation
        let model = crate::fixtures::voting_model().single_round().unwrap();
        let old_sys =
            CounterSystem::new(model.clone(), ccta::ParamValuation::new(vec![7, 1, 1, 1])).unwrap();
        let new_sys =
            CounterSystem::new(model, ccta::ParamValuation::new(vec![7, 2, 1, 1])).unwrap();
        let (old, new) = (old_sys.guard_bounds(), new_sys.guard_bounds());
        match classify_guard_step(&old, &new) {
            GuardStep::RelaxOnly { changed } => assert!(!changed.is_empty()),
            other => panic!("expected a relax-only step, got {other:?}"),
        }
        // ... and walking the same step backwards is its tighten-only mirror
        match classify_guard_step(&new, &old) {
            GuardStep::TightenOnly { changed } => assert!(!changed.is_empty()),
            other => panic!("expected a tighten-only step, got {other:?}"),
        }
        assert_eq!(
            classify_guard_step(&old, &old.clone()),
            GuardStep::Identical
        );
    }

    #[test]
    fn prune_is_bit_identical_to_fresh() {
        // [7,2,1,1] -> [7,1,1,1] lowers t, raising the n - t - f quorum:
        // a pure tightening (the mirror of the relax fixture above)
        let model = crate::fixtures::voting_model().single_round().unwrap();
        let relaxed_sys =
            CounterSystem::new(model.clone(), ccta::ParamValuation::new(vec![7, 2, 1, 1])).unwrap();
        let tight_sys =
            CounterSystem::new(model, ccta::ParamValuation::new(vec![7, 1, 1, 1])).unwrap();
        let GuardStep::TightenOnly { changed } =
            classify_guard_step(&relaxed_sys.guard_bounds(), &tight_sys.guard_bounds())
        else {
            panic!("lowering t must classify as tighten-only");
        };
        let pool = WorkerPool::new(1);
        let options = CheckerOptions::default();
        let start = StartRestriction::RoundStart;
        let big = ReachGraph::build(
            &relaxed_sys,
            &start.configurations(&relaxed_sys),
            &options,
            &pool,
        );
        let (pruned, cut) = big.prune(&tight_sys, &changed);
        assert!(cut > 0, "the tightened quorum must kill cached actions");

        let fresh = ReachGraph::build(
            &tight_sys,
            &start.configurations(&tight_sys),
            &options,
            &pool,
        );
        assert_eq!(pruned.states(), fresh.states());
        assert_eq!(pruned.transitions(), fresh.transitions());
        // the analysis passes agree end to end — counts, verdicts and
        // reconstructed schedules
        let specs = [
            Spec::NonBlocking {
                name: "termination".into(),
                start,
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start,
                forbidden: LocSet::from_names(tight_sys.model(), "E0", &["E0"]),
            },
        ];
        for spec in &specs {
            assert_eq!(
                pruned.evaluate(&tight_sys, spec, &options, None),
                fresh.evaluate(&tight_sys, spec, &options, None),
                "pruned and fresh graphs must answer {} identically",
                spec.name()
            );
        }
    }

    #[test]
    fn verdict_memo_serves_identical_steps() {
        let model = crate::fixtures::voting_model().single_round().unwrap();
        let sys = CounterSystem::new(model, ccta::ParamValuation::new(vec![5, 1, 1, 1])).unwrap();
        let pool = WorkerPool::new(1);
        let options = CheckerOptions::default().with_verdict_memo(true);
        let start = StartRestriction::RoundStart;
        let graph = ReachGraph::build(&sys, &start.configurations(&sys), &options, &pool);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start,
        };
        let (first, hit) = graph.evaluate_memo(&sys, &spec, &options, None);
        assert!(!hit, "the first evaluation pays the pass");
        let (second, hit) = graph.evaluate_memo(&sys, &spec, &options, None);
        assert!(hit, "an identical re-evaluation is a memo hit");
        assert_eq!(first, second);
        // switching the knob off bypasses the memo, same outcome
        let off = CheckerOptions::default().with_verdict_memo(false);
        let (third, hit) = graph.evaluate_memo(&sys, &spec, &off, None);
        assert!(!hit);
        assert_eq!(first, third);
    }

    #[test]
    fn parked_graphs_unpark_bit_identically() {
        let model = crate::fixtures::voting_model().single_round().unwrap();
        let sys = CounterSystem::new(model, ccta::ParamValuation::new(vec![5, 1, 1, 1])).unwrap();
        let pool = WorkerPool::new(1);
        let options = CheckerOptions::default();
        let start = StartRestriction::RoundStart;
        let mut graph = ReachGraph::build(&sys, &start.configurations(&sys), &options, &pool);
        let spec = Spec::NeverFrom {
            name: "reachable-E0".into(),
            start,
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let before = graph.evaluate(&sys, &spec, &options, None);
        let (full, compact) = graph.park();
        assert!(graph.is_parked());
        assert!(
            compact < full,
            "delta-encoding must shrink the parked graph ({compact} !< {full})"
        );
        graph.unpark();
        assert!(!graph.is_parked());
        let after = graph.evaluate(&sys, &spec, &options, None);
        assert_eq!(before, after, "a park/unpark round trip changes nothing");
    }
}
