//! The reachability-graph cache: explore once, evaluate many.
//!
//! Every obligation of the catalogue explores what is substantially the
//! same reachable configuration graph of the single-round counter system —
//! only the *observation* differs (monitor bits, game target sets, blocking
//! scan).  [`ReachGraph`] materialises that graph once per
//! `(start restriction, valuation)` group: one run of the generic
//! [`Explorer`] with a monitor-free visitor interns every reachable
//! configuration into the [`StateStore`] and records the full transition
//! relation in the flat CSR arenas of [`GameGraph`] (the same machinery the
//! game solver builds its graph with).  Each obligation is then evaluated
//! as an `O(states + edges)` analysis pass over the cached graph:
//!
//! * [`Spec::CoverNever`] / [`Spec::NeverFrom`] — a sticky monitor-bit
//!   propagation fixpoint: a BFS over `(node, cumulative bits)` product
//!   states that walks cached CSR edges instead of re-expanding rules.
//!   The tracked [`LocSet`]s are precompiled to per-row byte masks
//!   ([`LocSet::row_mask`]) so the per-node occupancy test is a branch-free
//!   fold over the row.
//! * [`Spec::ExistsAvoidOneOf`] — the product game graph over
//!   `(node, cumulative bits)` is assembled from the cached edges and
//!   handed to the existing O(edges) worklist attractor
//!   ([`adversary_winning`]); the violating strategy path comes from the
//!   shared [`extract_strategy_path`].
//! * [`Spec::NonBlocking`] — a terminal/blocking scan: a cached node is
//!   terminal iff its CSR action span is empty (a complete exploration
//!   expands every interned node), and the blocked-location test reuses the
//!   per-spec classifier.
//!
//! Counterexamples stay genuinely replayable: monitored violations
//! reconstruct their schedule from the product-BFS parent chain (whose
//! steps are real [`ScheduledStep`]s of cached edges), non-blocking
//! violations walk the store's first-discovery parent edges, and game
//! violations follow the winning strategy through product edges.  Along
//! every reported path the cumulative occupancy of the tracked sets first
//! completes exactly at the final configuration — the same invariant the
//! per-spec searches guarantee — because a product state is checked for
//! violation the moment it is first created.
//!
//! The cached graph is monitor-free, so the per-spec state/transition
//! counts reported under the cache are derived from the analysis pass (the
//! product states and product edges it visits), not from a monitored
//! re-exploration; for a *holding* `NonBlocking` — whose search carries no
//! monitor bits — the counts coincide exactly with the per-spec path (a
//! violated one reports the full exploration, where the per-spec search
//! stops at the violating terminal).  Verdicts never differ: resource
//! budgets ([`CheckerOptions::max_states`] /
//! [`CheckerOptions::max_transitions`]) apply to every analysis pass, and a
//! build that trips a budget makes
//! [`crate::explicit::ExplicitChecker::check_cached`] fall back to the
//! per-spec search instead of blanketing the group with `Unknown`.

use crate::counterexample::Counterexample;
use crate::explicit::{blocked_location_in_row, find_progress_cycle, CheckerOptions};
use crate::explorer::{Exploration, Explorer, Visitor};
use crate::game::{adversary_winning, extract_strategy_path, CsrRecorder, GameGraph};
use crate::pool::WorkerPool;
use crate::result::CheckOutcome;
use crate::spec::{LocSet, Spec};
use crate::store::StateStore;
use cccounter::{Action, Configuration, CounterSystem, Schedule, ScheduledStep};
use std::collections::VecDeque;

/// Sentinel for "product state not discovered yet" in the ordinal maps.
const NO_ORD: u32 = u32::MAX;

/// The monitor-free build visitor: records every explored edge in CSR form,
/// the interned start nodes, and the BFS discovery order of every fresh
/// node.  Unlike the game visitor it never prunes, so the cached graph
/// covers the full reachable space of the start-restriction group.  The
/// discovery order comes from the explorer's deterministic replay, so it is
/// identical at every worker/shard/wave count — node ids alone are *not*
/// (they interleave the shard tag), which is why order-sensitive consumers
/// like the non-blocking terminal scan must iterate `discovery` instead of
/// the store's id space.
#[derive(Default)]
struct CacheVisitor {
    csr: CsrRecorder,
    start_ids: Vec<u32>,
    discovery: Vec<u32>,
}

impl Visitor for CacheVisitor {
    fn successor_bits(&self, _parent_bits: u8, _row: &[u8]) -> u8 {
        0
    }

    fn start_node(&mut self, node: u32, _bits: u8, fresh: bool) -> bool {
        // duplicate start configurations intern to the same node; list it once
        if fresh {
            self.start_ids.push(node);
            self.discovery.push(node);
        }
        false
    }

    fn begin_node(&mut self, _node: u32) {
        self.csr.begin_node();
    }

    fn begin_action(&mut self, _node: u32, _action: Action) {
        self.csr.begin_action();
    }

    fn edge(
        &mut self,
        _from: u32,
        step: ScheduledStep,
        to: u32,
        _to_bits: u8,
        fresh: bool,
    ) -> bool {
        self.csr.edge(step, to);
        if fresh {
            self.discovery.push(to);
        }
        false
    }

    fn end_action(&mut self, node: u32, _action: Action) {
        self.csr.end_action(node);
    }

    fn end_node(&mut self, node: u32) {
        self.csr.end_node(node);
    }
}

/// The cached reachable graph of one `(start restriction, valuation)`
/// group: the deduplicated configuration store, the CSR transition
/// relation, and the interned start nodes.  Built once per group by
/// [`ReachGraph::build`], evaluated once per obligation by
/// [`ReachGraph::evaluate`].
pub(crate) struct ReachGraph {
    store: StateStore,
    graph: GameGraph,
    start_ids: Vec<u32>,
    /// Every node in BFS discovery order (worker/shard independent).
    discovery: Vec<u32>,
    /// States the sequential monitor-free search counted (already adjusted
    /// for the reference's stop-before-store state-bound convention).
    states: usize,
    transitions: usize,
    /// Why the build was inconclusive, if a resource budget tripped.
    bound: Option<&'static str>,
}

impl ReachGraph {
    /// Explores the reachable graph from the given start configurations —
    /// once — on the caller's worker pool.
    pub(crate) fn build(
        sys: &CounterSystem,
        starts: &[Configuration],
        options: &CheckerOptions,
        pool: &WorkerPool,
    ) -> Self {
        let mut explorer = Explorer::new(sys, options, pool);
        let mut visitor = CacheVisitor::default();
        let (states, bound) = match explorer.run(starts, &mut visitor) {
            Exploration::Complete => (explorer.states(), None),
            Exploration::TransitionBound => (explorer.states(), Some("transition bound exhausted")),
            // like the reference engine, report the budget rather than the
            // over-budget state that was interned before the bound tripped
            Exploration::StateBound => (explorer.states() - 1, Some("state bound exhausted")),
            Exploration::Violation(_) => unreachable!("the cache visitor never reports violations"),
        };
        let transitions = explorer.transitions();
        ReachGraph {
            store: explorer.into_store(),
            graph: visitor.csr.graph,
            start_ids: visitor.start_ids,
            discovery: visitor.discovery,
            states,
            transitions,
            bound,
        }
    }

    /// Whether the build tripped a resource budget, leaving the graph
    /// incomplete.  [`crate::explicit::ExplicitChecker::check_cached`]
    /// falls back to the per-spec search in that case, so a budget bound
    /// never turns a definite per-spec verdict into `Unknown`.
    pub(crate) fn is_bounded(&self) -> bool {
        self.bound.is_some()
    }

    /// Number of distinct configurations explored for the cached graph.
    pub(crate) fn states(&self) -> usize {
        self.states
    }

    /// Number of transitions explored for the cached graph.
    pub(crate) fn transitions(&self) -> usize {
        self.transitions
    }

    /// Evaluates one obligation as an analysis pass over the cached graph.
    pub(crate) fn evaluate(
        &self,
        sys: &CounterSystem,
        spec: &Spec,
        options: &CheckerOptions,
    ) -> CheckOutcome {
        if let Some(detail) = self.bound {
            // defensive only: `check_cached` falls back to the per-spec
            // search for bounded builds before calling evaluate
            return CheckOutcome::unknown(self.states, self.transitions, detail);
        }
        match spec {
            Spec::CoverNever {
                name,
                trigger,
                forbidden,
                ..
            } => self.check_monitored(
                name,
                &[trigger.clone(), forbidden.clone()],
                0b11,
                format!(
                    "a path occupies both {} and {}",
                    trigger.name(),
                    forbidden.name()
                ),
                sys,
                options,
            ),
            Spec::NeverFrom {
                name, forbidden, ..
            } => self.check_monitored(
                name,
                std::slice::from_ref(forbidden),
                0b1,
                format!("a path occupies {}", forbidden.name()),
                sys,
                options,
            ),
            Spec::ExistsAvoidOneOf {
                name,
                forbidden_sets,
                ..
            } => self.check_exists_avoid(name, forbidden_sets, sys, options),
            Spec::NonBlocking { name, .. } => self.check_non_blocking(name, sys),
        }
    }

    /// Monitor bits per cached node, computed in one pass over the row
    /// arena with the sets precompiled to branch-free byte masks.
    fn occupancy(&self, sets: &[LocSet]) -> Vec<u8> {
        let stride = self.store.stride();
        let masks: Vec<Vec<u8>> = sets.iter().map(|s| s.row_mask(stride)).collect();
        let mut occ = vec![0u8; self.store.id_bound()];
        for id in self.store.ids() {
            let row = self.store.row(id);
            let mut bits = 0u8;
            for (i, mask) in masks.iter().enumerate() {
                let mut acc = 0u8;
                for (r, m) in row.iter().zip(mask.iter()) {
                    acc |= r & m;
                }
                bits |= u8::from(acc != 0) << i;
            }
            occ[id as usize] = bits;
        }
        occ
    }

    /// The sticky monitor-bit propagation fixpoint: a BFS over
    /// `(node, cumulative bits)` product states walking cached edges,
    /// firing a violation the first time a product state covers
    /// `violation_bits` — exactly when the per-spec monitored search would
    /// have fired on its fresh `(row, bits)` state.
    fn check_monitored(
        &self,
        spec_name: &str,
        sets: &[LocSet],
        violation_bits: u8,
        explanation: String,
        sys: &CounterSystem,
        options: &CheckerOptions,
    ) -> CheckOutcome {
        // 2^k product slots per node: the catalogue's monitored specs use
        // k <= 2, and check_cached routes anything wider than k == 3 to the
        // per-spec search
        debug_assert!(
            sets.len() <= 3,
            "at most 3 tracked sets fit the flat product maps"
        );
        let occ = self.occupancy(sets);
        let num_vals = 1usize << sets.len();
        let slot = |node: u32, bits: u8| node as usize * num_vals + bits as usize;
        // product slot -> discovery ordinal into `parents`
        let mut ordinal = vec![NO_ORD; self.store.id_bound() * num_vals];
        // per discovered product state: (parent node, parent bits, step)
        let mut parents: Vec<(u32, u8, ScheduledStep)> = Vec::new();
        let mut queue: VecDeque<(u32, u8)> = VecDeque::new();
        let mut states = 0usize;
        let mut transitions = 0usize;

        let root = (
            NO_ORD,
            0u8,
            ScheduledStep::dirac(Action::new(ccta::RuleId(0), 0)),
        );
        for &start in &self.start_ids {
            let bits = occ[start as usize];
            ordinal[slot(start, bits)] = parents.len() as u32;
            parents.push(root);
            states += 1;
            if states > options.max_states {
                return CheckOutcome::unknown(states - 1, transitions, "state bound exhausted");
            }
            if bits & violation_bits == violation_bits {
                return self.monitored_violation(
                    spec_name,
                    sys,
                    &ordinal,
                    &parents,
                    num_vals,
                    (start, bits),
                    states,
                    transitions,
                    explanation,
                );
            }
            queue.push_back((start, bits));
        }

        while let Some((node, bits)) = queue.pop_front() {
            for a in self.graph.actions_of(node) {
                for &(step, succ) in self.graph.edges_of(a) {
                    transitions += 1;
                    if transitions > options.max_transitions {
                        return CheckOutcome::unknown(
                            states,
                            transitions,
                            "transition bound exhausted",
                        );
                    }
                    let new_bits = bits | occ[succ as usize];
                    let s = slot(succ, new_bits);
                    if ordinal[s] != NO_ORD {
                        continue;
                    }
                    ordinal[s] = parents.len() as u32;
                    parents.push((node, bits, step));
                    states += 1;
                    if states > options.max_states {
                        return CheckOutcome::unknown(
                            states - 1,
                            transitions,
                            "state bound exhausted",
                        );
                    }
                    if new_bits & violation_bits == violation_bits {
                        return self.monitored_violation(
                            spec_name,
                            sys,
                            &ordinal,
                            &parents,
                            num_vals,
                            (succ, new_bits),
                            states,
                            transitions,
                            explanation,
                        );
                    }
                    queue.push_back((succ, new_bits));
                }
            }
        }
        CheckOutcome::holds(states, transitions)
    }

    /// Reconstructs the violating schedule from the product-BFS parent
    /// chain; every step is a real cached edge, so the schedule replays.
    #[allow(clippy::too_many_arguments)]
    fn monitored_violation(
        &self,
        spec_name: &str,
        sys: &CounterSystem,
        ordinal: &[u32],
        parents: &[(u32, u8, ScheduledStep)],
        num_vals: usize,
        target: (u32, u8),
        states: usize,
        transitions: usize,
        explanation: String,
    ) -> CheckOutcome {
        let mut steps = Vec::new();
        let (mut node, mut bits) = target;
        loop {
            let ord = ordinal[node as usize * num_vals + bits as usize] as usize;
            let (pnode, pbits, step) = parents[ord];
            if pnode == NO_ORD {
                break;
            }
            steps.push(step);
            node = pnode;
            bits = pbits;
        }
        steps.reverse();
        let ce = Counterexample {
            spec: spec_name.to_string(),
            params: sys.params().clone(),
            initial: self.store.decode(node),
            schedule: Schedule::from_steps(steps),
            explanation,
        };
        CheckOutcome::violated(states, transitions, ce)
    }

    /// The `∀ adversary ∃ path` conditions: assemble the
    /// `(node, cumulative bits)` product game graph from cached edges, then
    /// run the shared worklist attractor and strategy extraction.  The
    /// product mirrors the direct game search exactly — including its
    /// pruning of nodes already losing for the coin — so a complete pass
    /// reports the same state and transition counts.
    fn check_exists_avoid(
        &self,
        spec_name: &str,
        sets: &[LocSet],
        sys: &CounterSystem,
        options: &CheckerOptions,
    ) -> CheckOutcome {
        assert!(
            !sets.is_empty() && sets.len() <= 8,
            "between 1 and 8 tracked location sets are supported"
        );
        let all_bits: u8 = ((1u16 << sets.len()) - 1) as u8;
        let occ = self.occupancy(sets);
        let num_vals = 1usize << sets.len();
        let slot = |node: u32, bits: u8| node as usize * num_vals + bits as usize;
        let mut ordinal = vec![NO_ORD; self.store.id_bound() * num_vals];
        // dense product ids in discovery order
        let mut pnodes: Vec<(u32, u8)> = Vec::new();
        let mut transitions = 0usize;

        let mut start_pids: Vec<u32> = Vec::new();
        for &start in &self.start_ids {
            let bits = occ[start as usize];
            let s = slot(start, bits);
            if ordinal[s] == NO_ORD {
                ordinal[s] = pnodes.len() as u32;
                pnodes.push((start, bits));
                if pnodes.len() > options.max_states {
                    return CheckOutcome::unknown(
                        pnodes.len() - 1,
                        transitions,
                        "state bound exhausted",
                    );
                }
            }
            start_pids.push(ordinal[s]);
        }

        // forward product construction in discovery order (the queue is the
        // pnodes arena itself, consumed by a cursor)
        let mut csr = CsrRecorder::default();
        let mut cursor = 0usize;
        while cursor < pnodes.len() {
            let pid = cursor as u32;
            let (node, bits) = pnodes[cursor];
            cursor += 1;
            if bits == all_bits {
                // already losing for the coin; not expanded (mirrors the
                // direct game visitor's `should_expand`)
                continue;
            }
            let actions = self.graph.actions_of(node);
            if actions.is_empty() {
                continue;
            }
            csr.begin_node();
            for a in actions {
                csr.begin_action();
                for &(step, succ) in self.graph.edges_of(a) {
                    transitions += 1;
                    if transitions > options.max_transitions {
                        return CheckOutcome::unknown(
                            pnodes.len(),
                            transitions,
                            "transition bound exhausted",
                        );
                    }
                    let new_bits = bits | occ[succ as usize];
                    let s = slot(succ, new_bits);
                    if ordinal[s] == NO_ORD {
                        ordinal[s] = pnodes.len() as u32;
                        pnodes.push((succ, new_bits));
                        if pnodes.len() > options.max_states {
                            return CheckOutcome::unknown(
                                pnodes.len() - 1,
                                transitions,
                                "state bound exhausted",
                            );
                        }
                    }
                    csr.edge(step, ordinal[s]);
                }
                csr.end_action(pid);
            }
            csr.end_node(pid);
        }

        let pgraph = csr.graph;
        let seeds: Vec<u32> = (0..pnodes.len() as u32)
            .filter(|&p| pnodes[p as usize].1 == all_bits)
            .collect();
        let winning = adversary_winning(&pgraph, pnodes.len(), seeds);
        let (states, transitions) = (pnodes.len(), transitions);
        match start_pids.iter().find(|&&p| winning[p as usize]) {
            None => CheckOutcome::holds(states, transitions),
            Some(&bad_start) => {
                let schedule = extract_strategy_path(
                    &pgraph,
                    &winning,
                    bad_start,
                    all_bits,
                    |p| pnodes[p as usize].1,
                    pnodes.len(),
                );
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: sys.params().clone(),
                    initial: self.store.decode(pnodes[bad_start as usize].0),
                    schedule,
                    explanation: format!(
                        "an adversary can force every coin resolution to occupy all of: {}",
                        sets.iter()
                            .map(|s| s.name().to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                };
                CheckOutcome::violated(states, transitions, ce)
            }
        }
    }

    /// The Theorem-2 side condition: progress-graph acyclicity plus a scan
    /// of the cached terminal nodes (empty CSR action span) for automata
    /// stranded outside the border-copy sinks.  The cached exploration is
    /// the same monitor-free search the per-spec path runs, so a positive
    /// verdict reports identical counts.
    fn check_non_blocking(&self, spec_name: &str, sys: &CounterSystem) -> CheckOutcome {
        if let Some(loc) = find_progress_cycle(sys) {
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: sys.params().clone(),
                initial: self
                    .start_ids
                    .first()
                    .map(|&s| self.store.decode(s))
                    .unwrap_or_else(|| sys.empty_configuration()),
                schedule: Schedule::new(),
                explanation: format!(
                    "the progress graph has a cycle through location {}",
                    sys.model().location(loc).name()
                ),
            };
            return CheckOutcome::violated(0, 0, ce);
        }
        // scan in BFS discovery order — the per-spec search dequeues (and
        // classifies) terminals in exactly this order, so the reported
        // terminal is the same one it would find, at every worker and
        // shard count (`store.ids()` order would depend on the sharding)
        for &id in &self.discovery {
            if !self.graph.actions_of(id).is_empty() {
                continue;
            }
            if let Some(loc) = blocked_location_in_row(sys, self.store.row(id)) {
                let (initial, schedule) = self.store.reconstruct_path(id);
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: sys.params().clone(),
                    initial,
                    schedule,
                    explanation: format!(
                        "a fair execution blocks with an automaton stuck in {}",
                        sys.model().location(loc).name()
                    ),
                };
                return CheckOutcome::violated(self.states, self.transitions, ce);
            }
        }
        CheckOutcome::holds(self.states, self.transitions)
    }
}
