//! Supervised retry with seeded exponential backoff.
//!
//! PR 6 gave a panicking sweep cell exactly one second chance on a fresh
//! [`crate::WorkerPool`]; this module generalises that policy so both the
//! sweep cells and the `ccserve` daemon's check jobs share one supervisor:
//! a [`RetryPolicy`] names the maximum attempt count and the backoff curve,
//! and [`run_with_retry`] drives an attempt closure until it succeeds or
//! the attempts are exhausted.
//!
//! Two properties matter for the callers:
//!
//! * **Per-attempt fresh resources.**  The attempt closure receives the
//!   zero-based attempt index, so a caller can run the first attempt on its
//!   shared pool and every retry on a fresh one (the sweep does exactly
//!   this — a poisoned lane must not serve the retry).  The helper itself
//!   holds no state between attempts.
//! * **Seeded jitter.**  Backoff sleeps are jittered to avoid retry
//!   convoys when many failed jobs back off together, but the jitter is
//!   drawn from a seeded [`rand::rngs::StdRng`] (`jitter_seed ^ task_key`)
//!   so a given task's retry schedule is reproducible — the soak tests rely
//!   on deterministic schedules.  A zero base backoff (the sweep's choice)
//!   never sleeps at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A retry policy: how many attempts a task gets and how the supervisor
/// backs off between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).  Clamped to at least 1.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubled per further retry.
    /// [`Duration::ZERO`] disables sleeping entirely.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Seed of the jitter RNG, mixed with the caller's task key so distinct
    /// tasks de-correlate while a given task stays reproducible.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and no backoff between them —
    /// the sweep-cell policy (`attempts(2)` is PR 6's one-shot retry).
    pub fn attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// This policy with an exponential backoff curve starting at `base`
    /// and capped at `max`.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// This policy with an explicit jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The jittered sleep before retry number `retry` (1-based): the
    /// exponential delay halved plus a seeded draw over the other half, so
    /// the sleep lands in `[delay/2, delay]`.
    pub fn backoff_before(&self, task_key: u64, retry: usize) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(20) as u32;
        let delay = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff.max(self.base_backoff));
        let half = delay / 2;
        let span = delay.saturating_sub(half).as_nanos() as u64;
        if span == 0 {
            return delay;
        }
        let mut rng = StdRng::seed_from_u64(self.jitter_seed ^ task_key ^ retry as u64);
        half + Duration::from_nanos(rng.gen_range(0..=span))
    }
}

impl Default for RetryPolicy {
    /// The historical sweep-cell policy: one retry, no backoff.
    fn default() -> Self {
        RetryPolicy::attempts(2)
    }
}

/// Runs `attempt` until it returns `Ok` or the policy's attempts are
/// exhausted, sleeping the policy's jittered backoff between attempts.
/// The closure receives the zero-based attempt index (0 is the first try),
/// so callers can switch to fresh resources on retries.  Returns the last
/// error when every attempt failed.
pub fn run_with_retry<T, E>(
    policy: &RetryPolicy,
    task_key: u64,
    mut attempt: impl FnMut(usize) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for i in 0..attempts {
        if i > 0 {
            let backoff = policy.backoff_before(task_key, i);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        match attempt(i) {
            Ok(value) => return Ok(value),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let out: Result<i32, &str> = run_with_retry(&RetryPolicy::attempts(3), 0, |i| {
            calls += 1;
            assert_eq!(i, 0);
            Ok(42)
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_pass_the_attempt_index_and_stop_at_the_cap() {
        let mut seen = Vec::new();
        let out: Result<(), String> = run_with_retry(&RetryPolicy::attempts(3), 7, |i| {
            seen.push(i);
            Err(format!("attempt {i} failed"))
        });
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(out, Err("attempt 2 failed".to_string()));
    }

    #[test]
    fn later_attempt_can_recover() {
        let out: Result<usize, &str> = run_with_retry(&RetryPolicy::attempts(4), 1, |i| {
            if i < 2 {
                Err("not yet")
            } else {
                Ok(i)
            }
        });
        assert_eq!(out, Ok(2));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let mut calls = 0;
        let _: Result<(), ()> = run_with_retry(&RetryPolicy::attempts(0), 0, |_| {
            calls += 1;
            Err(())
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_seeded_bounded_and_monotone_in_expectation() {
        let policy = RetryPolicy::attempts(5)
            .with_backoff(Duration::from_millis(8), Duration::from_millis(64))
            .with_jitter_seed(0xDEAD);
        // reproducible for a fixed task key
        assert_eq!(policy.backoff_before(3, 1), policy.backoff_before(3, 1));
        for retry in 1..=6 {
            let d = policy.backoff_before(3, retry);
            let exp = Duration::from_millis(8 << (retry - 1).min(3));
            let capped = exp.min(Duration::from_millis(64));
            assert!(d >= capped / 2, "retry {retry}: {d:?} < {:?}", capped / 2);
            assert!(d <= capped, "retry {retry}: {d:?} > {capped:?}");
        }
        // distinct task keys draw distinct jitter (with overwhelming
        // probability over this span)
        let draws: Vec<Duration> = (0..8).map(|k| policy.backoff_before(k, 2)).collect();
        assert!(draws.iter().any(|d| *d != draws[0]));
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let policy = RetryPolicy::attempts(3);
        for retry in 1..4 {
            assert_eq!(policy.backoff_before(9, retry), Duration::ZERO);
        }
    }
}
