//! Explicit-state checking of universal single-round queries.
//!
//! The checker explores the reachable configurations of the single-round
//! counter system for one concrete admissible parameter valuation, augmented
//! with a small monitor recording which tracked location sets have been
//! occupied so far.  This is the bounded-parameter substitute for ByMC's
//! schema-based parameterized reasoning.
//!
//! # Engine
//!
//! Both query shapes implemented here (the monitored reachability queries
//! and the non-blocking side condition) are visitors over the generic
//! [`crate::explorer::Explorer`] driver: the driver owns the
//! expand → intern → frontier cycle on the packed row substrate (and its
//! deterministic in-check parallelisation), while [`MonitorVisitor`]
//! propagates occupancy bits and detects violating states, and
//! [`NonBlockingVisitor`] classifies terminal states.  See the
//! [`crate::explorer`] docs for the engine and determinism story.

use crate::counterexample::Counterexample;
use crate::explorer::{
    resolved_graph_cache, resolved_incremental_sweep, resolved_workers, row_occupancy_bits,
    Exploration, Explorer, Visitor,
};
use crate::game;
use crate::graph::{BuildStep, GraphLineage, GuardBounds, LineageStep, ReachGraph};
use crate::job::{InterruptKind, JobSignals};
use crate::pool::WorkerPool;
use crate::result::{CheckOutcome, GraphCacheStats, GraphOrigin, GroupCacheRecord};
use crate::spec::{LocSet, Spec, StartRestriction};
use crate::store::StoreStats;
use cccounter::{Configuration, CounterSystem, Schedule, ScheduledStep};
use ccta::{LocClass, ModelKind};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

/// Resource limits and thread configuration of the explicit-state search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerOptions {
    /// Maximum number of distinct (configuration, monitor) states.
    pub max_states: usize,
    /// Maximum number of explored transitions.
    pub max_transitions: usize,
    /// In-check worker threads for a single exploration: `1` forces the
    /// sequential loop, `0` resolves `CC_CHECK_THREADS` and then the
    /// available parallelism.  Any worker count produces identical
    /// verdicts, state counts, transition counts and counterexamples.
    pub workers: usize,
    /// State-store shards: `0` derives one shard per resolved worker.
    /// Like the worker count, the shard count never changes results.
    pub shards: usize,
    /// Frontier nodes per parallel wave: a parallel level buffers (and
    /// recycles) candidate arenas of at most one wave, so peak memory stays
    /// O(wave) instead of O(level).  `0` resolves `CC_WAVE_SIZE` and then
    /// [`crate::explorer::DEFAULT_WAVE_SIZE`].  Like the worker and shard
    /// counts, the wave size never changes results.
    pub wave_size: usize,
    /// Whether batched checks ([`ExplicitChecker::check_all`] and the
    /// sweep) share one reachability graph across all the obligations of a
    /// `(start restriction, valuation)` group instead of re-exploring per
    /// obligation.  `None` resolves the `CC_GRAPH_CACHE` environment
    /// variable (`0` disables) and defaults to enabled.  The cache never
    /// changes a verdict; per-spec state/transition counts under the cache
    /// are derived from the analysis pass (see the "Graph cache" section of
    /// the crate docs).  [`ExplicitChecker::check`] always takes the
    /// per-spec path regardless of this knob.
    pub graph_cache: Option<bool>,
    /// Whether a sweep carries each group's reachability graph *across*
    /// valuations (reusing it outright when the compiled guard bounds are
    /// identical, extending it incrementally when the step is relax-only;
    /// see the "Incremental sweeps" section of the crate docs).  `None`
    /// resolves the `CC_SWEEP_INCREMENTAL` environment variable (`0`
    /// disables) and defaults to enabled.  The lineage never changes a
    /// verdict, a count or a counterexample — an incremental sweep is
    /// bit-identical to a from-scratch one; only the exploration work
    /// differs.  Takes effect only where a lineage exists (sweeps and
    /// [`ExplicitChecker::with_pool_and_lineage`]); single-valuation
    /// checks are unaffected.
    pub incremental_sweep: Option<bool>,
    /// Whether a cached reachability graph memoises its per-obligation
    /// verdicts, so an *identical*-classified lineage step (and any repeat
    /// query of the same group) serves the stored outcome without rerunning
    /// the analysis pass (see the "Verdict memoization & lineage
    /// compaction" section of the crate docs).  `None` resolves the
    /// `CC_VERDICT_MEMO` environment variable (`0` disables) and defaults
    /// to enabled.  The memo never changes a verdict, a count or a
    /// counterexample schedule.
    pub verdict_memo: Option<bool>,
    /// Whether a *tighten-only* lineage step (every changed guard atom
    /// strictly tightened, same structure) prunes the predecessor graph in
    /// place — dropping the actions whose guards no longer hold and
    /// re-deriving reachability with the relink BFS — instead of rebuilding
    /// the group from scratch.  `None` resolves the `CC_TIGHTEN_PRUNE`
    /// environment variable (`0` disables) and defaults to enabled.  A
    /// pruned graph is bit-identical to a fresh build.
    pub tighten_prune: Option<bool>,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            max_states: 2_000_000,
            max_transitions: 30_000_000,
            workers: 0,
            shards: 0,
            wave_size: 0,
            graph_cache: None,
            incremental_sweep: None,
            verdict_memo: None,
            tighten_prune: None,
        }
    }
}

impl CheckerOptions {
    /// Options forcing the plain sequential search loop.
    pub fn sequential() -> Self {
        CheckerOptions {
            workers: 1,
            ..CheckerOptions::default()
        }
    }

    /// These options with an explicit in-check worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// These options with an explicit parallel wave size.
    pub fn with_wave_size(mut self, wave_size: usize) -> Self {
        self.wave_size = wave_size;
        self
    }

    /// These options with the reachability-graph cache explicitly enabled
    /// or disabled (overriding the `CC_GRAPH_CACHE` environment variable).
    pub fn with_graph_cache(mut self, enabled: bool) -> Self {
        self.graph_cache = Some(enabled);
        self
    }

    /// These options with the incremental sweep explicitly enabled or
    /// disabled (overriding the `CC_SWEEP_INCREMENTAL` environment
    /// variable).
    pub fn with_incremental_sweep(mut self, enabled: bool) -> Self {
        self.incremental_sweep = Some(enabled);
        self
    }

    /// These options with verdict memoization explicitly enabled or
    /// disabled (overriding the `CC_VERDICT_MEMO` environment variable).
    pub fn with_verdict_memo(mut self, enabled: bool) -> Self {
        self.verdict_memo = Some(enabled);
        self
    }

    /// These options with the tighten-only prune explicitly enabled or
    /// disabled (overriding the `CC_TIGHTEN_PRUNE` environment variable).
    pub fn with_tighten_prune(mut self, enabled: bool) -> Self {
        self.tighten_prune = Some(enabled);
        self
    }
}

/// The worker pool a checker runs on: its own (one pool per checker, reused
/// across every check and every level), or one shared by the caller — the
/// sweep hands each of its grid workers one pool reused across all the
/// cells that worker processes.
#[derive(Debug)]
enum PoolSource<'a> {
    Owned(WorkerPool),
    Shared(&'a WorkerPool),
}

impl PoolSource<'_> {
    fn get(&self) -> &WorkerPool {
        match self {
            PoolSource::Owned(pool) => pool,
            PoolSource::Shared(pool) => pool,
        }
    }
}

/// The monitored-reachability visitor: propagates the occupancy bits of the
/// tracked location sets along every path and reports a violation as soon
/// as a state carries all `violation_bits`.
struct MonitorVisitor<'s> {
    sets: &'s [LocSet],
    violation_bits: u8,
}

impl Visitor for MonitorVisitor<'_> {
    fn successor_bits(&self, parent_bits: u8, row: &[u8]) -> u8 {
        parent_bits | row_occupancy_bits(self.sets, row)
    }

    fn start_node(&mut self, _node: u32, bits: u8, fresh: bool) -> bool {
        fresh && bits & self.violation_bits == self.violation_bits
    }

    fn edge(
        &mut self,
        _from: u32,
        _step: ScheduledStep,
        _to: u32,
        to_bits: u8,
        fresh: bool,
    ) -> bool {
        fresh && to_bits & self.violation_bits == self.violation_bits
    }
}

/// The non-blocking visitor: carries no monitor bits and flags terminal
/// states that strand an automaton outside the border-copy sinks.
struct NonBlockingVisitor<'a> {
    sys: &'a CounterSystem,
}

impl Visitor for NonBlockingVisitor<'_> {
    fn successor_bits(&self, _parent_bits: u8, _row: &[u8]) -> u8 {
        0
    }

    fn terminal_violates(&self, row: &[u8]) -> bool {
        blocked_location_in_row(self.sys, row).is_some()
    }
}

/// In a terminal state row, returns a location outside the sink set (border
/// copies) that still holds an automaton, if any.  Shared with the
/// graph-cache blocking scan ([`crate::graph`]).
pub(crate) fn blocked_location_in_row(sys: &CounterSystem, row: &[u8]) -> Option<ccta::LocId> {
    let model = sys.model();
    model
        .loc_ids()
        .find(|&l| row[l.0] > 0 && model.location(l).class() != LocClass::BorderCopy)
}

/// Returns a location lying on a cycle of non-self-loop progress rules, if
/// any — the structural half of the non-blocking side condition, shared by
/// the per-spec path and the graph-cache evaluation.
pub(crate) fn find_progress_cycle(sys: &CounterSystem) -> Option<ccta::LocId> {
    let model = sys.model();
    let n = model.locations().len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for rule in model.rules() {
        if rule.is_self_loop() {
            continue;
        }
        for b in rule.branches() {
            adj[rule.from().0].push(b.to.0);
        }
    }
    // iterative DFS with colors
    let mut color = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < adj[node].len() {
                let next = adj[node][*idx];
                *idx += 1;
                match color[next] {
                    0 => {
                        color[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => return Some(ccta::LocId(next)),
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Per-checker memoisation shared by every check: the enumerated start
/// configurations per start restriction (reused even on the per-spec path)
/// and — when the graph cache is enabled — the reachability graph per
/// start restriction, plus its accounting.  The valuation is fixed per
/// checker, so the start restriction alone keys a
/// `(start restriction, valuation)` group.
#[derive(Default)]
struct CheckerMemo {
    starts: Vec<(StartRestriction, Arc<Vec<Configuration>>)>,
    /// Per cached graph: its key and its index into `stats.groups`.
    graphs: Vec<(StartRestriction, Rc<ReachGraph>, usize)>,
    stats: GraphCacheStats,
}

/// Explicit-state checker over a single-round counter system.
pub struct ExplicitChecker<'a> {
    sys: &'a CounterSystem,
    options: CheckerOptions,
    pool: PoolSource<'a>,
    memo: RefCell<CheckerMemo>,
    /// The cross-valuation graph lineage of the surrounding sweep (plus
    /// this system's compiled guard bounds, diffed against the lineage
    /// entries), when the caller opted into incremental sweeps.
    lineage: Option<(&'a GraphLineage, GuardBounds)>,
    /// Job-level cancellation and budget signals, threaded into every
    /// exploration this checker runs.  `None` (the default) costs nothing.
    signals: Option<&'a JobSignals>,
    /// The `(states, transitions, resident bytes)` the surrounding job
    /// already accounted outside this checker, added to the explorers'
    /// counters when evaluating the job budgets.
    signal_base: Cell<(usize, usize, usize)>,
}

impl std::fmt::Debug for ExplicitChecker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplicitChecker")
            .field("options", &self.options)
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}

impl<'a> ExplicitChecker<'a> {
    /// Creates a checker with default options.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model; the
    /// single-round queries are only meaningful on `TA_rd` (Definition 3).
    pub fn new(sys: &'a CounterSystem) -> Self {
        Self::with_options(sys, CheckerOptions::default())
    }

    /// Creates a checker with explicit resource limits.  The checker spawns
    /// its persistent [`WorkerPool`] here — once — and reuses it across
    /// every [`ExplicitChecker::check`] call and every exploration level
    /// (a resolved worker count of 1 spawns no threads at all).
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model.
    pub fn with_options(sys: &'a CounterSystem, options: CheckerOptions) -> Self {
        let pool = PoolSource::Owned(WorkerPool::new(resolved_workers(&options)));
        Self::assemble(sys, options, pool)
    }

    /// Creates a checker running its parallel phases on a caller-owned
    /// pool, whose lane count overrides [`CheckerOptions::workers`].  This
    /// is how [`crate::check_over_sweep`] shares one pool across all the
    /// grid cells a sweep worker processes.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model.
    pub fn with_pool(
        sys: &'a CounterSystem,
        options: CheckerOptions,
        pool: &'a WorkerPool,
    ) -> Self {
        Self::assemble(sys, options, PoolSource::Shared(pool))
    }

    /// [`ExplicitChecker::with_pool`] with a cross-valuation graph lineage:
    /// instead of exploring each `(start restriction, valuation)` group
    /// from scratch, the checker first consults the lineage for a graph of
    /// the same group built at a previous valuation, reusing it outright
    /// when the compiled guard bounds are identical and extending it
    /// incrementally when the step is relax-only (see the "Incremental
    /// sweeps" crate docs).  The sweep gives each of its grid workers one
    /// lineage spanning the worker's contiguous, valuation-ordered block of
    /// cells.  An explicit [`CheckerOptions::incremental_sweep`] of `false`
    /// (or `CC_SWEEP_INCREMENTAL=0`) makes this identical to
    /// [`ExplicitChecker::with_pool`].
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model.
    pub fn with_pool_and_lineage(
        sys: &'a CounterSystem,
        options: CheckerOptions,
        pool: &'a WorkerPool,
        lineage: &'a GraphLineage,
    ) -> Self {
        let mut checker = Self::assemble(sys, options, PoolSource::Shared(pool));
        if resolved_incremental_sweep(&options) {
            checker.lineage = Some((lineage, sys.guard_bounds()));
        }
        checker
    }

    fn assemble(sys: &'a CounterSystem, options: CheckerOptions, pool: PoolSource<'a>) -> Self {
        assert_eq!(
            sys.model().kind(),
            ModelKind::SingleRound,
            "the explicit checker operates on single-round models (Definition 3)"
        );
        ExplicitChecker {
            sys,
            options,
            pool,
            memo: RefCell::new(CheckerMemo::default()),
            lineage: None,
            signals: None,
            signal_base: Cell::new((0, 0, 0)),
        }
    }

    /// Attaches job-level signals: every exploration this checker runs will
    /// poll them (see [`crate::CheckJob`] and the cancellable sweep).
    pub(crate) fn set_signals(&mut self, signals: Option<&'a JobSignals>) {
        self.signals = signals;
    }

    /// Sets the `(states, transitions, resident bytes)` baselines the
    /// surrounding job accounted outside this checker.
    pub(crate) fn set_signal_base(&self, base: (usize, usize, usize)) {
        self.signal_base.set(base);
    }

    /// The counter system under check.
    pub fn system(&self) -> &CounterSystem {
        self.sys
    }

    /// The start configurations of a restriction, enumerated once per
    /// checker and shared by every spec with the same restriction (the
    /// enumeration is combinatorial in the process count, so re-running it
    /// per obligation was pure waste).
    fn starts_for(&self, start: StartRestriction) -> Arc<Vec<Configuration>> {
        let mut memo = self.memo.borrow_mut();
        if let Some((_, cached)) = memo.starts.iter().find(|(s, _)| *s == start) {
            return Arc::clone(cached);
        }
        let configs = Arc::new(start.configurations(self.sys));
        memo.starts.push((start, Arc::clone(&configs)));
        configs
    }

    /// The cached reachability graph of a start-restriction group and its
    /// stats-group index, obtaining it on the first request — from the
    /// sweep lineage when one is attached and usable, from a fresh
    /// exploration otherwise.  The caller records which counter the spec
    /// lands in — served by the group, or fallen back to the per-spec path.
    /// `Err` means a job signal interrupted the build; the partial build is
    /// discarded (the checkpointing build path lives in [`crate::CheckJob`],
    /// which does its own group bookkeeping) and nothing is recorded.
    fn graph_for(&self, start: StartRestriction) -> Result<(Rc<ReachGraph>, usize), InterruptKind> {
        {
            let memo = self.memo.borrow();
            if let Some((_, graph, group)) = memo.graphs.iter().find(|(s, _, _)| *s == start) {
                return Ok((Rc::clone(graph), *group));
            }
        }
        // obtain outside the borrow so the memo is never held across the
        // exploration
        let (graph, origin, seed_frontier, pruned_actions) = self.obtain_graph(start)?;
        if let Some((lineage, bounds)) = &self.lineage {
            lineage.record(self.sys, start, &graph, bounds);
        }
        let mut memo = self.memo.borrow_mut();
        let group = memo.stats.groups.len();
        memo.stats.groups.push(GroupCacheRecord {
            start: start.label(),
            specs: 0,
            states: graph.states(),
            transitions: graph.transitions(),
            origin,
            seed_frontier,
            pruned_actions,
            memo_hits: 0,
            memo_misses: 0,
            resident_bytes: graph.resident_bytes(),
        });
        memo.graphs.push((start, Rc::clone(&graph), group));
        Ok((graph, group))
    }

    /// Resolves a group's graph against the sweep lineage (reuse, extend,
    /// or rebuild), falling back to a from-scratch exploration when no
    /// lineage is attached or no predecessor survives.
    fn obtain_graph(
        &self,
        start: StartRestriction,
    ) -> Result<(Rc<ReachGraph>, GraphOrigin, usize, usize), InterruptKind> {
        let mut fresh_origin = GraphOrigin::Built;
        if let Some((lineage, bounds)) = &self.lineage {
            match lineage.adopt(
                self.sys,
                start,
                bounds,
                &self.options,
                self.pool.get(),
                self.signals,
            ) {
                LineageStep::Reuse(graph) => return Ok((graph, GraphOrigin::Reused, 0, 0)),
                LineageStep::Extend(graph, seeds) => {
                    return Ok((graph, GraphOrigin::Extended, seeds, 0))
                }
                LineageStep::Prune(graph, cut) => return Ok((graph, GraphOrigin::Pruned, 0, cut)),
                LineageStep::Build { rebuilt } => {
                    if rebuilt {
                        fresh_origin = GraphOrigin::Rebuilt;
                    }
                }
            }
        }
        let starts = self.starts_for(start);
        let step = ReachGraph::build_with_signals(
            self.sys,
            &starts,
            &self.options,
            self.pool.get(),
            self.signals,
            self.signal_base.get(),
        );
        match step {
            BuildStep::Done(graph) => Ok((Rc::new(graph), fresh_origin, 0, 0)),
            BuildStep::Suspended(_, kind) => Err(kind),
        }
    }

    /// Checks one query on the per-spec path (its own exploration, exactly
    /// the reference semantics — `engine_equivalence` compares this path
    /// bit-for-bit against [`crate::reference`]).
    pub fn check(&self, spec: &Spec) -> CheckOutcome {
        self.check_impl(spec, false).0
    }

    /// Checks one query through the reachability-graph cache: the first
    /// query of a `(start restriction, valuation)` group pays one
    /// monitor-free exploration, every further query of the group is an
    /// `O(states + edges)` analysis pass over the cached graph.  Falls back
    /// to the per-spec path when the cache is disabled (see
    /// [`CheckerOptions::graph_cache`]), the spec shape is not served by
    /// the cache, or the group's build tripped a resource budget (the
    /// pruned per-spec searches can still produce a definite verdict within
    /// the same budget, so a bounded build must not blanket the group with
    /// `Unknown`).
    pub(crate) fn check_cached(&self, spec: &Spec) -> CheckOutcome {
        // the analysis product over k tracked sets needs 2^k flat slots per
        // node; the catalogue's game specs use at most two sets, so
        // anything wider than k == 3 takes the (pruned) per-spec game
        // search instead of paying the product blow-up
        let cacheable = match spec {
            Spec::ExistsAvoidOneOf { forbidden_sets, .. } => forbidden_sets.len() <= 3,
            _ => true,
        };
        if !resolved_graph_cache(&self.options) || !cacheable {
            self.memo.borrow_mut().stats.uncached_specs += 1;
            return self.check(spec);
        }
        let (graph, group) = match self.graph_for(spec.start()) {
            Ok(found) => found,
            // a job signal interrupted the group build: report the
            // interruption without recording anything (the sweep turns this
            // into an interrupted cell; the checkpointing path is CheckJob's)
            Err(kind) => return CheckOutcome::interrupted(0, 0, kind),
        };
        if graph.is_bounded() {
            self.memo.borrow_mut().stats.uncached_specs += 1;
            return self.check(spec);
        }
        let (outcome, memo_hit) = graph.evaluate_memo(self.sys, spec, &self.options, self.signals);
        let mut memo = self.memo.borrow_mut();
        let record = &mut memo.stats.groups[group];
        record.specs += 1;
        if memo_hit {
            record.memo_hits += 1;
        } else {
            record.memo_misses += 1;
        }
        outcome
    }

    /// Checks a slice of queries, sharing one reachability graph across all
    /// the queries of each `(start restriction, valuation)` group when the
    /// graph cache is enabled (the default; see
    /// [`CheckerOptions::graph_cache`]).  Outcomes are returned in spec
    /// order and verdicts are identical to checking each spec on its own.
    pub fn check_all(&self, specs: &[Spec]) -> Vec<CheckOutcome> {
        specs.iter().map(|spec| self.check_cached(spec)).collect()
    }

    /// [`ExplicitChecker::check_all`] plus the cache accounting accumulated
    /// by this checker so far (including earlier `check_all` calls).
    pub fn check_all_with_stats(&self, specs: &[Spec]) -> (Vec<CheckOutcome>, GraphCacheStats) {
        let outcomes = self.check_all(specs);
        (outcomes, self.cache_stats())
    }

    /// A snapshot of the graph-cache accounting accumulated by this
    /// checker.
    pub fn cache_stats(&self) -> GraphCacheStats {
        self.memo.borrow().stats.clone()
    }

    /// Checks one query and reports the state-store occupancy statistics of
    /// the exploration (to guide shard-count tuning).
    pub fn check_with_stats(&self, spec: &Spec) -> (CheckOutcome, StoreStats) {
        self.check_impl(spec, true)
    }

    fn check_impl(&self, spec: &Spec, want_stats: bool) -> (CheckOutcome, StoreStats) {
        // one start enumeration per (checker, restriction), shared across
        // every spec of the restriction — with or without the graph cache
        let starts = self.starts_for(spec.start());
        match spec {
            Spec::CoverNever {
                name,
                trigger,
                forbidden,
                ..
            } => self.check_monitored(
                name,
                &starts,
                &[trigger.clone(), forbidden.clone()],
                0b11,
                format!(
                    "a path occupies both {} and {}",
                    trigger.name(),
                    forbidden.name()
                ),
                want_stats,
            ),
            Spec::NeverFrom {
                name, forbidden, ..
            } => self.check_monitored(
                name,
                &starts,
                std::slice::from_ref(forbidden),
                0b1,
                format!("a path occupies {}", forbidden.name()),
                want_stats,
            ),
            Spec::ExistsAvoidOneOf {
                name,
                forbidden_sets,
                ..
            } => game::check_exists_avoid_impl(
                self.sys,
                name,
                &starts,
                forbidden_sets,
                &self.options,
                self.pool.get(),
                want_stats,
                self.signals,
                self.signal_base.get(),
            ),
            Spec::NonBlocking { name, .. } => self.check_non_blocking(name, &starts, want_stats),
        }
    }

    /// BFS over (configuration, monitor-bits); reports a violation when a
    /// state with `violation_bits` fully set is reached.
    fn check_monitored(
        &self,
        spec_name: &str,
        starts: &[Configuration],
        sets: &[LocSet],
        violation_bits: u8,
        explanation: String,
        want_stats: bool,
    ) -> (CheckOutcome, StoreStats) {
        let mut explorer = Explorer::new(self.sys, &self.options, self.pool.get())
            .with_signals(self.signals, self.signal_base.get());
        let mut visitor = MonitorVisitor {
            sets,
            violation_bits,
        };
        let outcome = match explorer.run(starts, &mut visitor) {
            Exploration::Complete => CheckOutcome::holds(explorer.states(), explorer.transitions()),
            Exploration::TransitionBound => CheckOutcome::unknown(
                explorer.states(),
                explorer.transitions(),
                "transition bound exhausted",
            ),
            // the over-budget state was counted before the bound tripped;
            // report the budget like the reference engine, which stops
            // before storing it
            Exploration::StateBound => CheckOutcome::unknown(
                explorer.states() - 1,
                explorer.transitions(),
                "state bound exhausted",
            ),
            Exploration::Violation(id) => self.violation(spec_name, &explorer, id, explanation),
            // a per-spec search is not checkpointed: the suspended frontier
            // is dropped and the search redone from scratch on resume
            Exploration::Interrupted => {
                let kind = explorer
                    .take_suspended()
                    .map(|s| s.kind)
                    .unwrap_or(InterruptKind::Cancelled);
                CheckOutcome::interrupted(explorer.states(), explorer.transitions(), kind)
            }
        };
        let stats = if want_stats {
            explorer.store().stats()
        } else {
            StoreStats::default()
        };
        (outcome, stats)
    }

    fn violation(
        &self,
        spec_name: &str,
        explorer: &Explorer<'_>,
        violating: u32,
        explanation: String,
    ) -> CheckOutcome {
        let (initial, schedule) = explorer.store().reconstruct_path(violating);
        CheckOutcome::violated(
            explorer.states(),
            explorer.transitions(),
            Counterexample {
                spec: spec_name.to_string(),
                params: self.sys.params().clone(),
                initial,
                schedule,
                explanation,
            },
        )
    }

    /// Checks the Theorem-2 side condition: the progress graph is acyclic and
    /// every reachable terminal configuration has all automata parked in
    /// border-copy (sink) locations.
    fn check_non_blocking(
        &self,
        spec_name: &str,
        starts: &[Configuration],
        want_stats: bool,
    ) -> (CheckOutcome, StoreStats) {
        // 1. structural acyclicity of the progress graph
        if let Some(loc) = find_progress_cycle(self.sys) {
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: self.sys.params().clone(),
                initial: starts
                    .first()
                    .cloned()
                    .unwrap_or_else(|| self.sys.empty_configuration()),
                schedule: Schedule::new(),
                explanation: format!(
                    "the progress graph has a cycle through location {}",
                    self.sys.model().location(loc).name()
                ),
            };
            return (CheckOutcome::violated(0, 0, ce), StoreStats::default());
        }

        // 2. every reachable terminal configuration is a sink configuration
        let mut explorer = Explorer::new(self.sys, &self.options, self.pool.get())
            .with_signals(self.signals, self.signal_base.get());
        let mut visitor = NonBlockingVisitor { sys: self.sys };
        let outcome = match explorer.run(starts, &mut visitor) {
            Exploration::Complete => CheckOutcome::holds(explorer.states(), explorer.transitions()),
            Exploration::TransitionBound => CheckOutcome::unknown(
                explorer.states(),
                explorer.transitions(),
                "transition bound exhausted",
            ),
            // match the reference, which stops before storing the
            // over-budget state
            Exploration::StateBound => CheckOutcome::unknown(
                explorer.states() - 1,
                explorer.transitions(),
                "state bound exhausted",
            ),
            Exploration::Interrupted => {
                let kind = explorer
                    .take_suspended()
                    .map(|s| s.kind)
                    .unwrap_or(InterruptKind::Cancelled);
                CheckOutcome::interrupted(explorer.states(), explorer.transitions(), kind)
            }
            Exploration::Violation(node) => {
                let loc = blocked_location_in_row(self.sys, explorer.store().row(node))
                    .expect("a violating terminal state has a blocked location");
                let (initial, schedule) = explorer.store().reconstruct_path(node);
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: self.sys.params().clone(),
                    initial,
                    schedule,
                    explanation: format!(
                        "a fair execution blocks with an automaton stuck in {}",
                        self.sys.model().location(loc).name()
                    ),
                };
                CheckOutcome::violated(explorer.states(), explorer.transitions(), ce)
            }
        };
        let stats = if want_stats {
            explorer.store().stats()
        } else {
            StoreStats::default()
        };
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::StartRestriction;
    use ccta::{BinValue, ParamValuation};

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    #[test]
    #[should_panic(expected = "single-round")]
    fn checker_rejects_multi_round_models() {
        let sys = CounterSystem::new(fixtures::voting_model(), fixtures::small_params()).unwrap();
        let _ = ExplicitChecker::new(&sys);
    }

    #[test]
    fn validity_style_query_holds() {
        // from a unanimous-0 start the majority-1 final location E1 can only
        // be reached through the coin; D-style locations do not exist in the
        // fixture, so check that "no process ends in E1 while cc1 == 0" via
        // the never-from query on the always-unreachable M1 analogue: here we
        // check that location I1 is never occupied.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
        assert!(outcome.states_explored > 1);
    }

    #[test]
    fn never_from_detects_violations_with_counterexample() {
        // E0 is clearly reachable from a unanimous-0 start
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NeverFrom {
            name: "reachable-E0".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        assert!(!ce.schedule.is_empty());
        // replay the counterexample: it must reach a configuration occupying E0
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let e0 = sys.model().location_id("E0").unwrap();
        assert!(path.visits(|c| c.counter(e0, 0) > 0));
        assert!(!ce.describe(&sys).is_empty());
    }

    #[test]
    fn cover_never_holds_when_sets_are_mutually_exclusive() {
        // Once every process reached E0 (trigger = all final zero), no process
        // can be in I1: trivially true for unanimous-0 starts.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::CoverNever {
            name: "cover-holds".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            trigger: LocSet::from_names(sys.model(), "E0", &["E0"]),
            forbidden: LocSet::from_names(sys.model(), "E1", &["E1"]),
        };
        // NOTE: from a unanimous-0 start the coin may still land 1 and push
        // processes to E1 while others are in E0, so this spec is *violated*
        // in the fixture model — which is exactly what makes the fixture a
        // useful negative test.
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let e0 = sys.model().location_id("E0").unwrap();
        let e1 = sys.model().location_id("E1").unwrap();
        assert!(path.visits(|c| c.counter(e0, 0) > 0));
        assert!(path.visits(|c| c.counter(e1, 0) > 0));
    }

    #[test]
    fn cover_never_holds_for_disjoint_behaviour() {
        // trigger = E1 under a unanimous-0 start with the coin forced to 0 is
        // unreachable, hence the implication holds vacuously.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::CoverNever {
            name: "vacuous".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            trigger: LocSet::from_names(sys.model(), "I1", &["I1"]),
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn non_blocking_holds_for_the_fixture() {
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn non_blocking_detects_deadlocks() {
        let model = fixtures::blocking_model().single_round().unwrap();
        let sys = CounterSystem::new(model, ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        assert!(ce.explanation.contains("stuck"));
        // the deadlocking schedule replays on the counter system
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        assert!(sys.is_terminal(path.last()));
    }

    #[test]
    fn state_bound_produces_unknown() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                max_states: 2,
                max_transitions: 1_000,
                ..CheckerOptions::default()
            },
        );
        let spec = Spec::NeverFrom {
            name: "bounded".into(),
            start: StartRestriction::RoundStart,
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert_eq!(outcome.status, crate::CheckStatus::Unknown);
        assert_eq!(checker.system().num_processes(), 3);
    }

    #[test]
    fn transition_bound_produces_unknown() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                max_states: 1_000,
                max_transitions: 3,
                ..CheckerOptions::default()
            },
        );
        let spec = Spec::NeverFrom {
            name: "bounded".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert_eq!(outcome.status, crate::CheckStatus::Unknown);
        assert!(outcome.detail.contains("transition"));
    }

    /// One spec of every catalogue shape over the voting fixture, with two
    /// different start restrictions so the cache forms two groups.
    fn catalogue(sys: &CounterSystem) -> Vec<Spec> {
        let model = sys.model();
        vec![
            Spec::NeverFrom {
                name: "unreachable-I1".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(model, "I1", &["I1"]),
            },
            Spec::NeverFrom {
                name: "reachable-E0".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                forbidden: LocSet::from_names(model, "E0", &["E0"]),
            },
            Spec::CoverNever {
                name: "cover".into(),
                start: StartRestriction::Unanimous(BinValue::Zero),
                trigger: LocSet::from_names(model, "E0", &["E0"]),
                forbidden: LocSet::from_names(model, "E1", &["E1"]),
            },
            Spec::ExistsAvoidOneOf {
                name: "C1".into(),
                start: StartRestriction::RoundStart,
                forbidden_sets: vec![
                    LocSet::from_names(model, "F0", &["E0"]),
                    LocSet::from_names(model, "F1", &["E1"]),
                ],
            },
            Spec::NonBlocking {
                name: "termination".into(),
                start: StartRestriction::RoundStart,
            },
        ]
    }

    #[test]
    fn cached_catalogue_agrees_with_the_per_spec_path() {
        let sys = sys();
        let specs = catalogue(&sys);
        let cached_checker =
            ExplicitChecker::with_options(&sys, CheckerOptions::default().with_graph_cache(true));
        let (cached, stats) = cached_checker.check_all_with_stats(&specs);
        let per_spec: Vec<_> = specs
            .iter()
            .map(|s| ExplicitChecker::new(&sys).check(s))
            .collect();
        for ((spec, c), p) in specs.iter().zip(&cached).zip(&per_spec) {
            assert_eq!(c.status, p.status, "{}", spec.name());
            if let Some(ce) = &c.counterexample {
                // the cached counterexample replays to a genuine violation
                let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
                match spec {
                    Spec::NeverFrom { forbidden, .. } => {
                        assert!(path.visits(|cfg| forbidden.is_occupied(cfg)))
                    }
                    Spec::CoverNever {
                        trigger, forbidden, ..
                    } => {
                        assert!(path.visits(|cfg| trigger.is_occupied(cfg)));
                        assert!(path.visits(|cfg| forbidden.is_occupied(cfg)));
                    }
                    _ => {}
                }
            } else {
                assert!(p.counterexample.is_none(), "{}", spec.name());
            }
        }
        // two start restrictions -> two graphs, serving all five specs
        assert_eq!(stats.graphs_built(), 2);
        assert_eq!(stats.specs_served(), specs.len());
        assert_eq!(stats.uncached_specs, 0);
        assert!(stats.cached_states() > 0);
        assert!(stats.amortization() > 1.0);
        assert!(format!("{stats}").contains("amortization"));
    }

    #[test]
    fn disabled_cache_takes_the_per_spec_path() {
        let sys = sys();
        let specs = catalogue(&sys);
        let checker =
            ExplicitChecker::with_options(&sys, CheckerOptions::default().with_graph_cache(false));
        let (outcomes, stats) = checker.check_all_with_stats(&specs);
        assert_eq!(stats.graphs_built(), 0);
        assert_eq!(stats.uncached_specs, specs.len());
        assert!(format!("{stats}").contains("per-spec path"));
        // the uncached batch matches checking each spec individually exactly
        for ((spec, o), direct) in specs
            .iter()
            .zip(&outcomes)
            .zip(specs.iter().map(|s| ExplicitChecker::new(&sys).check(s)))
        {
            assert_eq!(o.status, direct.status, "{}", spec.name());
            assert_eq!(o.states_explored, direct.states_explored, "{}", spec.name());
            assert_eq!(
                o.transitions_explored,
                direct.transitions_explored,
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn cached_checks_are_worker_independent() {
        let sys = sys();
        let specs = catalogue(&sys);
        let baseline = ExplicitChecker::with_options(
            &sys,
            CheckerOptions::sequential().with_graph_cache(true),
        )
        .check_all(&specs);
        for workers in [2, 4] {
            let options = CheckerOptions::default()
                .with_workers(workers)
                .with_wave_size(1)
                .with_graph_cache(true);
            let parallel = ExplicitChecker::with_options(&sys, options).check_all(&specs);
            for ((spec, b), p) in specs.iter().zip(&baseline).zip(&parallel) {
                assert_eq!(b.status, p.status, "{} at {workers} workers", spec.name());
                assert_eq!(
                    b.states_explored,
                    p.states_explored,
                    "{} at {workers} workers",
                    spec.name()
                );
                assert_eq!(
                    b.transitions_explored,
                    p.transitions_explored,
                    "{} at {workers} workers",
                    spec.name()
                );
                match (&b.counterexample, &p.counterexample) {
                    (None, None) => {}
                    (Some(bc), Some(pc)) => {
                        assert_eq!(bc.initial, pc.initial);
                        assert_eq!(bc.schedule.steps(), pc.schedule.steps());
                    }
                    _ => panic!("{}: counterexample presence differs", spec.name()),
                }
            }
        }
    }

    #[test]
    fn bounded_cache_builds_fall_back_to_the_per_spec_path() {
        // a budget that trips during the monitor-free build must not turn
        // the group's obligations Unknown wholesale: the spec re-runs on
        // the per-spec path, so the outcome matches it exactly
        let sys = sys();
        let options = CheckerOptions {
            max_states: 2,
            ..CheckerOptions::default()
        };
        let spec = Spec::NeverFrom {
            name: "bounded".into(),
            start: StartRestriction::RoundStart,
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let checker = ExplicitChecker::with_options(&sys, options.with_graph_cache(true));
        let (outcomes, stats) = checker.check_all_with_stats(std::slice::from_ref(&spec));
        let direct = ExplicitChecker::with_options(&sys, options.with_graph_cache(false));
        assert_eq!(outcomes[0], direct.check(&spec));
        assert_eq!(outcomes[0].status, crate::CheckStatus::Unknown);
        assert!(outcomes[0].detail.contains("bound"));
        // the bounded build is recorded as a miss serving nothing; the spec
        // counts as uncached
        assert_eq!(stats.graphs_built(), 1);
        assert_eq!(stats.specs_served(), 0);
        assert_eq!(stats.uncached_specs, 1);
    }

    #[test]
    fn stats_report_the_explored_store() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                shards: 4,
                ..CheckerOptions::default()
            },
        );
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let (outcome, stats) = checker.check_with_stats(&spec);
        assert!(outcome.is_holds());
        assert_eq!(stats.states, outcome.states_explored);
        assert_eq!(stats.shards, 4);
        assert!(stats.row_bytes > 0);
        assert!(stats.index_load > 0.0);
    }
}
