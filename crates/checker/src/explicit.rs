//! Explicit-state checking of universal single-round queries.
//!
//! The checker explores the reachable configurations of the single-round
//! counter system for one concrete admissible parameter valuation, augmented
//! with a small monitor recording which tracked location sets have been
//! occupied so far.  This is the bounded-parameter substitute for ByMC's
//! schema-based parameterized reasoning.
//!
//! # Engine
//!
//! Both query shapes implemented here (the monitored reachability queries
//! and the non-blocking side condition) are visitors over the generic
//! [`crate::explorer::Explorer`] driver: the driver owns the
//! expand → intern → frontier cycle on the packed row substrate (and its
//! deterministic in-check parallelisation), while [`MonitorVisitor`]
//! propagates occupancy bits and detects violating states, and
//! [`NonBlockingVisitor`] classifies terminal states.  See the
//! [`crate::explorer`] docs for the engine and determinism story.

use crate::counterexample::Counterexample;
use crate::explorer::{resolved_workers, row_occupancy_bits, Exploration, Explorer, Visitor};
use crate::game;
use crate::pool::WorkerPool;
use crate::result::CheckOutcome;
use crate::spec::{LocSet, Spec};
use crate::store::StoreStats;
use cccounter::{Configuration, CounterSystem, Schedule, ScheduledStep};
use ccta::{LocClass, ModelKind};

/// Resource limits and thread configuration of the explicit-state search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerOptions {
    /// Maximum number of distinct (configuration, monitor) states.
    pub max_states: usize,
    /// Maximum number of explored transitions.
    pub max_transitions: usize,
    /// In-check worker threads for a single exploration: `1` forces the
    /// sequential loop, `0` resolves `CC_CHECK_THREADS` and then the
    /// available parallelism.  Any worker count produces identical
    /// verdicts, state counts, transition counts and counterexamples.
    pub workers: usize,
    /// State-store shards: `0` derives one shard per resolved worker.
    /// Like the worker count, the shard count never changes results.
    pub shards: usize,
    /// Frontier nodes per parallel wave: a parallel level buffers (and
    /// recycles) candidate arenas of at most one wave, so peak memory stays
    /// O(wave) instead of O(level).  `0` resolves `CC_WAVE_SIZE` and then
    /// [`crate::explorer::DEFAULT_WAVE_SIZE`].  Like the worker and shard
    /// counts, the wave size never changes results.
    pub wave_size: usize,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            max_states: 2_000_000,
            max_transitions: 30_000_000,
            workers: 0,
            shards: 0,
            wave_size: 0,
        }
    }
}

impl CheckerOptions {
    /// Options forcing the plain sequential search loop.
    pub fn sequential() -> Self {
        CheckerOptions {
            workers: 1,
            ..CheckerOptions::default()
        }
    }

    /// These options with an explicit in-check worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// These options with an explicit parallel wave size.
    pub fn with_wave_size(mut self, wave_size: usize) -> Self {
        self.wave_size = wave_size;
        self
    }
}

/// The worker pool a checker runs on: its own (one pool per checker, reused
/// across every check and every level), or one shared by the caller — the
/// sweep hands each of its grid workers one pool reused across all the
/// cells that worker processes.
#[derive(Debug)]
enum PoolSource<'a> {
    Owned(WorkerPool),
    Shared(&'a WorkerPool),
}

impl PoolSource<'_> {
    fn get(&self) -> &WorkerPool {
        match self {
            PoolSource::Owned(pool) => pool,
            PoolSource::Shared(pool) => pool,
        }
    }
}

/// The monitored-reachability visitor: propagates the occupancy bits of the
/// tracked location sets along every path and reports a violation as soon
/// as a state carries all `violation_bits`.
struct MonitorVisitor<'s> {
    sets: &'s [LocSet],
    violation_bits: u8,
}

impl Visitor for MonitorVisitor<'_> {
    fn successor_bits(&self, parent_bits: u8, row: &[u8]) -> u8 {
        parent_bits | row_occupancy_bits(self.sets, row)
    }

    fn start_node(&mut self, _node: u32, bits: u8, fresh: bool) -> bool {
        fresh && bits & self.violation_bits == self.violation_bits
    }

    fn edge(
        &mut self,
        _from: u32,
        _step: ScheduledStep,
        _to: u32,
        to_bits: u8,
        fresh: bool,
    ) -> bool {
        fresh && to_bits & self.violation_bits == self.violation_bits
    }
}

/// The non-blocking visitor: carries no monitor bits and flags terminal
/// states that strand an automaton outside the border-copy sinks.
struct NonBlockingVisitor<'a> {
    sys: &'a CounterSystem,
}

impl Visitor for NonBlockingVisitor<'_> {
    fn successor_bits(&self, _parent_bits: u8, _row: &[u8]) -> u8 {
        0
    }

    fn terminal_violates(&self, row: &[u8]) -> bool {
        blocked_location_in_row(self.sys, row).is_some()
    }
}

/// In a terminal state row, returns a location outside the sink set (border
/// copies) that still holds an automaton, if any.
fn blocked_location_in_row(sys: &CounterSystem, row: &[u8]) -> Option<ccta::LocId> {
    let model = sys.model();
    model
        .loc_ids()
        .find(|&l| row[l.0] > 0 && model.location(l).class() != LocClass::BorderCopy)
}

/// Explicit-state checker over a single-round counter system.
#[derive(Debug)]
pub struct ExplicitChecker<'a> {
    sys: &'a CounterSystem,
    options: CheckerOptions,
    pool: PoolSource<'a>,
}

impl<'a> ExplicitChecker<'a> {
    /// Creates a checker with default options.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model; the
    /// single-round queries are only meaningful on `TA_rd` (Definition 3).
    pub fn new(sys: &'a CounterSystem) -> Self {
        Self::with_options(sys, CheckerOptions::default())
    }

    /// Creates a checker with explicit resource limits.  The checker spawns
    /// its persistent [`WorkerPool`] here — once — and reuses it across
    /// every [`ExplicitChecker::check`] call and every exploration level
    /// (a resolved worker count of 1 spawns no threads at all).
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model.
    pub fn with_options(sys: &'a CounterSystem, options: CheckerOptions) -> Self {
        let pool = PoolSource::Owned(WorkerPool::new(resolved_workers(&options)));
        Self::assemble(sys, options, pool)
    }

    /// Creates a checker running its parallel phases on a caller-owned
    /// pool, whose lane count overrides [`CheckerOptions::workers`].  This
    /// is how [`crate::check_over_sweep`] shares one pool across all the
    /// grid cells a sweep worker processes.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model.
    pub fn with_pool(
        sys: &'a CounterSystem,
        options: CheckerOptions,
        pool: &'a WorkerPool,
    ) -> Self {
        Self::assemble(sys, options, PoolSource::Shared(pool))
    }

    fn assemble(sys: &'a CounterSystem, options: CheckerOptions, pool: PoolSource<'a>) -> Self {
        assert_eq!(
            sys.model().kind(),
            ModelKind::SingleRound,
            "the explicit checker operates on single-round models (Definition 3)"
        );
        ExplicitChecker { sys, options, pool }
    }

    /// The counter system under check.
    pub fn system(&self) -> &CounterSystem {
        self.sys
    }

    /// Checks one query.
    pub fn check(&self, spec: &Spec) -> CheckOutcome {
        self.check_impl(spec, false).0
    }

    /// Checks one query and reports the state-store occupancy statistics of
    /// the exploration (to guide shard-count tuning).
    pub fn check_with_stats(&self, spec: &Spec) -> (CheckOutcome, StoreStats) {
        self.check_impl(spec, true)
    }

    fn check_impl(&self, spec: &Spec, want_stats: bool) -> (CheckOutcome, StoreStats) {
        match spec {
            Spec::CoverNever {
                name,
                start,
                trigger,
                forbidden,
            } => self.check_monitored(
                name,
                &start.configurations(self.sys),
                &[trigger.clone(), forbidden.clone()],
                0b11,
                format!(
                    "a path occupies both {} and {}",
                    trigger.name(),
                    forbidden.name()
                ),
                want_stats,
            ),
            Spec::NeverFrom {
                name,
                start,
                forbidden,
            } => self.check_monitored(
                name,
                &start.configurations(self.sys),
                std::slice::from_ref(forbidden),
                0b1,
                format!("a path occupies {}", forbidden.name()),
                want_stats,
            ),
            Spec::ExistsAvoidOneOf {
                name,
                start,
                forbidden_sets,
            } => game::check_exists_avoid_impl(
                self.sys,
                name,
                &start.configurations(self.sys),
                forbidden_sets,
                &self.options,
                self.pool.get(),
                want_stats,
            ),
            Spec::NonBlocking { name, start } => {
                self.check_non_blocking(name, &start.configurations(self.sys), want_stats)
            }
        }
    }

    /// BFS over (configuration, monitor-bits); reports a violation when a
    /// state with `violation_bits` fully set is reached.
    fn check_monitored(
        &self,
        spec_name: &str,
        starts: &[Configuration],
        sets: &[LocSet],
        violation_bits: u8,
        explanation: String,
        want_stats: bool,
    ) -> (CheckOutcome, StoreStats) {
        let mut explorer = Explorer::new(self.sys, &self.options, self.pool.get());
        let mut visitor = MonitorVisitor {
            sets,
            violation_bits,
        };
        let outcome = match explorer.run(starts, &mut visitor) {
            Exploration::Complete => CheckOutcome::holds(explorer.states(), explorer.transitions()),
            Exploration::TransitionBound => CheckOutcome::unknown(
                explorer.states(),
                explorer.transitions(),
                "transition bound exhausted",
            ),
            // the over-budget state was counted before the bound tripped;
            // report the budget like the reference engine, which stops
            // before storing it
            Exploration::StateBound => CheckOutcome::unknown(
                explorer.states() - 1,
                explorer.transitions(),
                "state bound exhausted",
            ),
            Exploration::Violation(id) => self.violation(spec_name, &explorer, id, explanation),
        };
        let stats = if want_stats {
            explorer.store().stats()
        } else {
            StoreStats::default()
        };
        (outcome, stats)
    }

    fn violation(
        &self,
        spec_name: &str,
        explorer: &Explorer<'_>,
        violating: u32,
        explanation: String,
    ) -> CheckOutcome {
        let (initial, schedule) = explorer.store().reconstruct_path(violating);
        CheckOutcome::violated(
            explorer.states(),
            explorer.transitions(),
            Counterexample {
                spec: spec_name.to_string(),
                params: self.sys.params().clone(),
                initial,
                schedule,
                explanation,
            },
        )
    }

    /// Checks the Theorem-2 side condition: the progress graph is acyclic and
    /// every reachable terminal configuration has all automata parked in
    /// border-copy (sink) locations.
    fn check_non_blocking(
        &self,
        spec_name: &str,
        starts: &[Configuration],
        want_stats: bool,
    ) -> (CheckOutcome, StoreStats) {
        // 1. structural acyclicity of the progress graph
        if let Some(loc) = self.find_progress_cycle() {
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: self.sys.params().clone(),
                initial: starts
                    .first()
                    .cloned()
                    .unwrap_or_else(|| self.sys.empty_configuration()),
                schedule: Schedule::new(),
                explanation: format!(
                    "the progress graph has a cycle through location {}",
                    self.sys.model().location(loc).name()
                ),
            };
            return (CheckOutcome::violated(0, 0, ce), StoreStats::default());
        }

        // 2. every reachable terminal configuration is a sink configuration
        let mut explorer = Explorer::new(self.sys, &self.options, self.pool.get());
        let mut visitor = NonBlockingVisitor { sys: self.sys };
        let outcome = match explorer.run(starts, &mut visitor) {
            Exploration::Complete => CheckOutcome::holds(explorer.states(), explorer.transitions()),
            Exploration::TransitionBound => CheckOutcome::unknown(
                explorer.states(),
                explorer.transitions(),
                "transition bound exhausted",
            ),
            // match the reference, which stops before storing the
            // over-budget state
            Exploration::StateBound => CheckOutcome::unknown(
                explorer.states() - 1,
                explorer.transitions(),
                "state bound exhausted",
            ),
            Exploration::Violation(node) => {
                let loc = blocked_location_in_row(self.sys, explorer.store().row(node))
                    .expect("a violating terminal state has a blocked location");
                let (initial, schedule) = explorer.store().reconstruct_path(node);
                let ce = Counterexample {
                    spec: spec_name.to_string(),
                    params: self.sys.params().clone(),
                    initial,
                    schedule,
                    explanation: format!(
                        "a fair execution blocks with an automaton stuck in {}",
                        self.sys.model().location(loc).name()
                    ),
                };
                CheckOutcome::violated(explorer.states(), explorer.transitions(), ce)
            }
        };
        let stats = if want_stats {
            explorer.store().stats()
        } else {
            StoreStats::default()
        };
        (outcome, stats)
    }

    /// Returns a location lying on a cycle of non-self-loop rules, if any.
    fn find_progress_cycle(&self) -> Option<ccta::LocId> {
        let model = self.sys.model();
        let n = model.locations().len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for rule in model.rules() {
            if rule.is_self_loop() {
                continue;
            }
            for b in rule.branches() {
                adj[rule.from().0].push(b.to.0);
            }
        }
        // iterative DFS with colors
        let mut color = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                if *idx < adj[node].len() {
                    let next = adj[node][*idx];
                    *idx += 1;
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => return Some(ccta::LocId(next)),
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::StartRestriction;
    use ccta::{BinValue, ParamValuation};

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    #[test]
    #[should_panic(expected = "single-round")]
    fn checker_rejects_multi_round_models() {
        let sys = CounterSystem::new(fixtures::voting_model(), fixtures::small_params()).unwrap();
        let _ = ExplicitChecker::new(&sys);
    }

    #[test]
    fn validity_style_query_holds() {
        // from a unanimous-0 start the majority-1 final location E1 can only
        // be reached through the coin; D-style locations do not exist in the
        // fixture, so check that "no process ends in E1 while cc1 == 0" via
        // the never-from query on the always-unreachable M1 analogue: here we
        // check that location I1 is never occupied.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
        assert!(outcome.states_explored > 1);
    }

    #[test]
    fn never_from_detects_violations_with_counterexample() {
        // E0 is clearly reachable from a unanimous-0 start
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NeverFrom {
            name: "reachable-E0".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        assert!(!ce.schedule.is_empty());
        // replay the counterexample: it must reach a configuration occupying E0
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let e0 = sys.model().location_id("E0").unwrap();
        assert!(path.visits(|c| c.counter(e0, 0) > 0));
        assert!(!ce.describe(&sys).is_empty());
    }

    #[test]
    fn cover_never_holds_when_sets_are_mutually_exclusive() {
        // Once every process reached E0 (trigger = all final zero), no process
        // can be in I1: trivially true for unanimous-0 starts.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::CoverNever {
            name: "cover-holds".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            trigger: LocSet::from_names(sys.model(), "E0", &["E0"]),
            forbidden: LocSet::from_names(sys.model(), "E1", &["E1"]),
        };
        // NOTE: from a unanimous-0 start the coin may still land 1 and push
        // processes to E1 while others are in E0, so this spec is *violated*
        // in the fixture model — which is exactly what makes the fixture a
        // useful negative test.
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let e0 = sys.model().location_id("E0").unwrap();
        let e1 = sys.model().location_id("E1").unwrap();
        assert!(path.visits(|c| c.counter(e0, 0) > 0));
        assert!(path.visits(|c| c.counter(e1, 0) > 0));
    }

    #[test]
    fn cover_never_holds_for_disjoint_behaviour() {
        // trigger = E1 under a unanimous-0 start with the coin forced to 0 is
        // unreachable, hence the implication holds vacuously.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::CoverNever {
            name: "vacuous".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            trigger: LocSet::from_names(sys.model(), "I1", &["I1"]),
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn non_blocking_holds_for_the_fixture() {
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn non_blocking_detects_deadlocks() {
        let model = fixtures::blocking_model().single_round().unwrap();
        let sys = CounterSystem::new(model, ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        assert!(ce.explanation.contains("stuck"));
        // the deadlocking schedule replays on the counter system
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        assert!(sys.is_terminal(path.last()));
    }

    #[test]
    fn state_bound_produces_unknown() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                max_states: 2,
                max_transitions: 1_000,
                ..CheckerOptions::default()
            },
        );
        let spec = Spec::NeverFrom {
            name: "bounded".into(),
            start: StartRestriction::RoundStart,
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert_eq!(outcome.status, crate::CheckStatus::Unknown);
        assert_eq!(checker.system().num_processes(), 3);
    }

    #[test]
    fn transition_bound_produces_unknown() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                max_states: 1_000,
                max_transitions: 3,
                ..CheckerOptions::default()
            },
        );
        let spec = Spec::NeverFrom {
            name: "bounded".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert_eq!(outcome.status, crate::CheckStatus::Unknown);
        assert!(outcome.detail.contains("transition"));
    }

    #[test]
    fn stats_report_the_explored_store() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                shards: 4,
                ..CheckerOptions::default()
            },
        );
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let (outcome, stats) = checker.check_with_stats(&spec);
        assert!(outcome.is_holds());
        assert_eq!(stats.states, outcome.states_explored);
        assert_eq!(stats.shards, 4);
        assert!(stats.row_bytes > 0);
        assert!(stats.index_load > 0.0);
    }
}
