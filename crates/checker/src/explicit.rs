//! Explicit-state checking of universal single-round queries.
//!
//! The checker explores the reachable configurations of the single-round
//! counter system for one concrete admissible parameter valuation, augmented
//! with a small monitor recording which tracked location sets have been
//! occupied so far.  This is the bounded-parameter substitute for ByMC's
//! schema-based parameterized reasoning.

use crate::counterexample::Counterexample;
use crate::game;
use crate::result::CheckOutcome;
use crate::spec::{LocSet, Spec};
use ccta::{LocClass, ModelKind};
use cccounter::{Configuration, CounterSystem, Schedule, ScheduledStep};
use std::collections::HashMap;

/// Resource limits of the explicit-state search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerOptions {
    /// Maximum number of distinct (configuration, monitor) states.
    pub max_states: usize,
    /// Maximum number of explored transitions.
    pub max_transitions: usize,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            max_states: 2_000_000,
            max_transitions: 30_000_000,
        }
    }
}

/// Explicit-state checker over a single-round counter system.
#[derive(Debug)]
pub struct ExplicitChecker<'a> {
    sys: &'a CounterSystem,
    options: CheckerOptions,
}

/// A node of the explored (configuration, monitor) graph.
struct Node {
    config: Configuration,
    bits: u8,
    parent: Option<(usize, ScheduledStep)>,
}

impl<'a> ExplicitChecker<'a> {
    /// Creates a checker with default options.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model; the
    /// single-round queries are only meaningful on `TA_rd` (Definition 3).
    pub fn new(sys: &'a CounterSystem) -> Self {
        Self::with_options(sys, CheckerOptions::default())
    }

    /// Creates a checker with explicit resource limits.
    ///
    /// # Panics
    ///
    /// Panics if the counter system is built over a multi-round model.
    pub fn with_options(sys: &'a CounterSystem, options: CheckerOptions) -> Self {
        assert_eq!(
            sys.model().kind(),
            ModelKind::SingleRound,
            "the explicit checker operates on single-round models (Definition 3)"
        );
        ExplicitChecker { sys, options }
    }

    /// The counter system under check.
    pub fn system(&self) -> &CounterSystem {
        self.sys
    }

    /// Checks one query.
    pub fn check(&self, spec: &Spec) -> CheckOutcome {
        match spec {
            Spec::CoverNever {
                name,
                start,
                trigger,
                forbidden,
            } => self.check_monitored(
                name,
                &start.configurations(self.sys),
                &[trigger.clone(), forbidden.clone()],
                0b11,
                format!(
                    "a path occupies both {} and {}",
                    trigger.name(),
                    forbidden.name()
                ),
            ),
            Spec::NeverFrom {
                name,
                start,
                forbidden,
            } => self.check_monitored(
                name,
                &start.configurations(self.sys),
                &[forbidden.clone()],
                0b1,
                format!("a path occupies {}", forbidden.name()),
            ),
            Spec::ExistsAvoidOneOf {
                name,
                start,
                forbidden_sets,
            } => game::check_exists_avoid(
                self.sys,
                name,
                &start.configurations(self.sys),
                forbidden_sets,
                &self.options,
            ),
            Spec::NonBlocking { name, start } => {
                self.check_non_blocking(name, &start.configurations(self.sys))
            }
        }
    }

    fn occupancy_bits(sets: &[LocSet], cfg: &Configuration) -> u8 {
        let mut bits = 0u8;
        for (i, set) in sets.iter().enumerate() {
            if set.is_occupied(cfg) {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// BFS over (configuration, monitor-bits); reports a violation when a
    /// state with `violation_bits` fully set is reached.
    fn check_monitored(
        &self,
        spec_name: &str,
        starts: &[Configuration],
        sets: &[LocSet],
        violation_bits: u8,
        explanation: String,
    ) -> CheckOutcome {
        let mut index: HashMap<(Vec<u8>, u8), usize> = HashMap::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut transitions = 0usize;

        for cfg in starts {
            let bits = Self::occupancy_bits(sets, cfg);
            let key = (cfg.fingerprint_bytes(), bits);
            if index.contains_key(&key) {
                continue;
            }
            let id = nodes.len();
            index.insert(key, id);
            nodes.push(Node {
                config: cfg.clone(),
                bits,
                parent: None,
            });
            queue.push(id);
            if bits & violation_bits == violation_bits {
                return self.violation(spec_name, &nodes, id, explanation, transitions);
            }
        }

        let mut head = 0usize;
        while head < queue.len() {
            let current = queue[head];
            head += 1;
            let cfg = nodes[current].config.clone();
            let bits = nodes[current].bits;
            for action in self.sys.progress_actions(&cfg) {
                let outcomes = self
                    .sys
                    .outcomes(&cfg, action)
                    .expect("progress actions are applicable");
                for outcome in outcomes {
                    transitions += 1;
                    if transitions > self.options.max_transitions {
                        return CheckOutcome::unknown(
                            nodes.len(),
                            transitions,
                            "transition bound exhausted",
                        );
                    }
                    let new_bits = bits | Self::occupancy_bits(sets, &outcome.config);
                    let key = (outcome.config.fingerprint_bytes(), new_bits);
                    if index.contains_key(&key) {
                        continue;
                    }
                    let id = nodes.len();
                    if id >= self.options.max_states {
                        return CheckOutcome::unknown(
                            nodes.len(),
                            transitions,
                            "state bound exhausted",
                        );
                    }
                    index.insert(key, id);
                    nodes.push(Node {
                        config: outcome.config,
                        bits: new_bits,
                        parent: Some((
                            current,
                            ScheduledStep::with_branch(action, outcome.branch),
                        )),
                    });
                    queue.push(id);
                    if new_bits & violation_bits == violation_bits {
                        return self.violation(spec_name, &nodes, id, explanation, transitions);
                    }
                }
            }
        }
        CheckOutcome::holds(nodes.len(), transitions)
    }

    fn violation(
        &self,
        spec_name: &str,
        nodes: &[Node],
        violating: usize,
        explanation: String,
        transitions: usize,
    ) -> CheckOutcome {
        let (initial, schedule) = reconstruct_path(nodes, violating);
        CheckOutcome::violated(
            nodes.len(),
            transitions,
            Counterexample {
                spec: spec_name.to_string(),
                params: self.sys.params().clone(),
                initial,
                schedule,
                explanation,
            },
        )
    }

    /// Checks the Theorem-2 side condition: the progress graph is acyclic and
    /// every reachable terminal configuration has all automata parked in
    /// border-copy (sink) locations.
    fn check_non_blocking(&self, spec_name: &str, starts: &[Configuration]) -> CheckOutcome {
        // 1. structural acyclicity of the progress graph
        if let Some(loc) = self.find_progress_cycle() {
            let ce = Counterexample {
                spec: spec_name.to_string(),
                params: self.sys.params().clone(),
                initial: starts
                    .first()
                    .cloned()
                    .unwrap_or_else(|| self.sys.empty_configuration()),
                schedule: Schedule::new(),
                explanation: format!(
                    "the progress graph has a cycle through location {}",
                    self.sys.model().location(loc).name()
                ),
            };
            return CheckOutcome::violated(0, 0, ce);
        }

        // 2. every reachable terminal configuration is a sink configuration
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut transitions = 0usize;
        for cfg in starts {
            let key = cfg.fingerprint_bytes();
            if index.contains_key(&key) {
                continue;
            }
            let id = nodes.len();
            index.insert(key, id);
            nodes.push(Node {
                config: cfg.clone(),
                bits: 0,
                parent: None,
            });
            queue.push(id);
        }
        let mut head = 0usize;
        while head < queue.len() {
            let current = queue[head];
            head += 1;
            let cfg = nodes[current].config.clone();
            let actions = self.sys.progress_actions(&cfg);
            if actions.is_empty() {
                if let Some(loc) = self.blocked_location(&cfg) {
                    let (initial, schedule) = reconstruct_path(&nodes, current);
                    let ce = Counterexample {
                        spec: spec_name.to_string(),
                        params: self.sys.params().clone(),
                        initial,
                        schedule,
                        explanation: format!(
                            "a fair execution blocks with an automaton stuck in {}",
                            self.sys.model().location(loc).name()
                        ),
                    };
                    return CheckOutcome::violated(nodes.len(), transitions, ce);
                }
                continue;
            }
            for action in actions {
                let outcomes = self
                    .sys
                    .outcomes(&cfg, action)
                    .expect("progress actions are applicable");
                for outcome in outcomes {
                    transitions += 1;
                    if transitions > self.options.max_transitions {
                        return CheckOutcome::unknown(
                            nodes.len(),
                            transitions,
                            "transition bound exhausted",
                        );
                    }
                    let key = outcome.config.fingerprint_bytes();
                    if index.contains_key(&key) {
                        continue;
                    }
                    let id = nodes.len();
                    if id >= self.options.max_states {
                        return CheckOutcome::unknown(
                            nodes.len(),
                            transitions,
                            "state bound exhausted",
                        );
                    }
                    index.insert(key, id);
                    nodes.push(Node {
                        config: outcome.config,
                        bits: 0,
                        parent: Some((
                            current,
                            ScheduledStep::with_branch(action, outcome.branch),
                        )),
                    });
                    queue.push(id);
                }
            }
        }
        CheckOutcome::holds(nodes.len(), transitions)
    }

    /// Returns a location lying on a cycle of non-self-loop rules, if any.
    fn find_progress_cycle(&self) -> Option<ccta::LocId> {
        let model = self.sys.model();
        let n = model.locations().len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for rule in model.rules() {
            if rule.is_self_loop() {
                continue;
            }
            for b in rule.branches() {
                adj[rule.from().0].push(b.to.0);
            }
        }
        // iterative DFS with colors
        let mut color = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                if *idx < adj[node].len() {
                    let next = adj[node][*idx];
                    *idx += 1;
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => return Some(ccta::LocId(next)),
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// In a terminal configuration, returns a location outside the sink set
    /// (border copies) that still holds an automaton, if any.
    fn blocked_location(&self, cfg: &Configuration) -> Option<ccta::LocId> {
        let model = self.sys.model();
        model.loc_ids().find(|&l| {
            cfg.counter(l, 0) > 0 && model.location(l).class() != LocClass::BorderCopy
        })
    }
}

/// Rebuilds the initial configuration and schedule leading to `target`.
fn reconstruct_path(nodes: &[Node], target: usize) -> (Configuration, Schedule) {
    let mut steps = Vec::new();
    let mut current = target;
    while let Some((parent, step)) = nodes[current].parent {
        steps.push(step);
        current = parent;
    }
    steps.reverse();
    (nodes[current].config.clone(), Schedule::from_steps(steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::StartRestriction;
    use ccta::{BinValue, ParamValuation};

    fn sys() -> CounterSystem {
        let model = fixtures::voting_model().single_round().unwrap();
        CounterSystem::new(model, fixtures::small_params()).unwrap()
    }

    #[test]
    #[should_panic(expected = "single-round")]
    fn checker_rejects_multi_round_models() {
        let sys = CounterSystem::new(fixtures::voting_model(), fixtures::small_params()).unwrap();
        let _ = ExplicitChecker::new(&sys);
    }

    #[test]
    fn validity_style_query_holds() {
        // from a unanimous-0 start the majority-1 final location E1 can only
        // be reached through the coin; D-style locations do not exist in the
        // fixture, so check that "no process ends in E1 while cc1 == 0" via
        // the never-from query on the always-unreachable M1 analogue: here we
        // check that location I1 is never occupied.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NeverFrom {
            name: "unreachable-I1".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
        assert!(outcome.states_explored > 1);
    }

    #[test]
    fn never_from_detects_violations_with_counterexample() {
        // E0 is clearly reachable from a unanimous-0 start
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NeverFrom {
            name: "reachable-E0".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        assert!(!ce.schedule.is_empty());
        // replay the counterexample: it must reach a configuration occupying E0
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let e0 = sys.model().location_id("E0").unwrap();
        assert!(path.visits(|c| c.counter(e0, 0) > 0));
        assert!(!ce.describe(&sys).is_empty());
    }

    #[test]
    fn cover_never_holds_when_sets_are_mutually_exclusive() {
        // Once every process reached E0 (trigger = all final zero), no process
        // can be in I1: trivially true for unanimous-0 starts.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::CoverNever {
            name: "cover-holds".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            trigger: LocSet::from_names(sys.model(), "E0", &["E0"]),
            forbidden: LocSet::from_names(sys.model(), "E1", &["E1"]),
        };
        // NOTE: from a unanimous-0 start the coin may still land 1 and push
        // processes to E1 while others are in E0, so this spec is *violated*
        // in the fixture model — which is exactly what makes the fixture a
        // useful negative test.
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        let path = ce.schedule.apply(&sys, &ce.initial).unwrap();
        let e0 = sys.model().location_id("E0").unwrap();
        let e1 = sys.model().location_id("E1").unwrap();
        assert!(path.visits(|c| c.counter(e0, 0) > 0));
        assert!(path.visits(|c| c.counter(e1, 0) > 0));
    }

    #[test]
    fn cover_never_holds_for_disjoint_behaviour() {
        // trigger = E1 under a unanimous-0 start with the coin forced to 0 is
        // unreachable, hence the implication holds vacuously.
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::CoverNever {
            name: "vacuous".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            trigger: LocSet::from_names(sys.model(), "I1", &["I1"]),
            forbidden: LocSet::from_names(sys.model(), "E0", &["E0"]),
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn non_blocking_holds_for_the_fixture() {
        let sys = sys();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_holds(), "{outcome}");
    }

    #[test]
    fn non_blocking_detects_deadlocks() {
        let model = fixtures::blocking_model().single_round().unwrap();
        let sys = CounterSystem::new(model, ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
        let checker = ExplicitChecker::new(&sys);
        let spec = Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        };
        let outcome = checker.check(&spec);
        assert!(outcome.is_violated());
        let ce = outcome.counterexample.unwrap();
        assert!(ce.explanation.contains("stuck"));
    }

    #[test]
    fn state_bound_produces_unknown() {
        let sys = sys();
        let checker = ExplicitChecker::with_options(
            &sys,
            CheckerOptions {
                max_states: 2,
                max_transitions: 1_000,
            },
        );
        let spec = Spec::NeverFrom {
            name: "bounded".into(),
            start: StartRestriction::RoundStart,
            forbidden: LocSet::from_names(sys.model(), "I1", &["I1"]),
        };
        let outcome = checker.check(&spec);
        assert_eq!(outcome.status, crate::CheckStatus::Unknown);
        assert_eq!(checker.system().num_processes(), 3);
    }
}
