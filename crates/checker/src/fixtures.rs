//! Small models used by the unit tests of this crate.

use ccta::prelude::*;

/// Adds the standard fair-coin automaton (border, initial, toss, publish,
/// round switch) to a builder and returns nothing; the coin publishes its
/// outcome through the given coin variables.
pub fn add_fair_coin(b: &mut SystemBuilder, cc0: VarId, cc1: VarId) {
    let jc = b.coin_location("JC", LocClass::Border, None);
    let ic = b.coin_location("IC", LocClass::Initial, None);
    let h0 = b.coin_location("H0", LocClass::Intermediate, None);
    let h1 = b.coin_location("H1", LocClass::Intermediate, None);
    let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
    let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
    b.start_rule(jc, ic);
    b.coin_toss(
        "toss",
        ic,
        vec![(h0, Probability::HALF), (h1, Probability::HALF)],
        Guard::top(),
        Update::none(),
    );
    b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
    b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
    b.round_switch(c0, jc);
    b.round_switch(c1, jc);
}

/// A small common-coin voting protocol: broadcast the value, adopt the
/// majority value if a quorum of `n - t` is observed, otherwise adopt the
/// coin value.
pub fn voting_model() -> SystemModel {
    let env = ccta::env::byzantine_common_coin_env(3);
    let k = env.num_params();
    let n = env.param_id("n").unwrap();
    let t = env.param_id("t").unwrap();
    let f = env.param_id("f").unwrap();
    let mut b = SystemBuilder::new("checker-voting", env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    b.rule("bcast0", i0, s, Guard::top(), Update::increment(v0));
    b.rule("bcast1", i1, s, Guard::top(), Update::increment(v1));
    let quorum = LinearExpr::param(k, n)
        .sub(&LinearExpr::param(k, t))
        .sub(&LinearExpr::param(k, f));
    b.rule("maj0", s, e0, Guard::ge(v0, quorum.clone()), Update::none());
    b.rule("maj1", s, e1, Guard::ge(v1, quorum), Update::none());
    b.rule(
        "coin0",
        s,
        e0,
        Guard::ge(cc0, LinearExpr::constant(k, 1)),
        Update::none(),
    );
    b.rule(
        "coin1",
        s,
        e1,
        Guard::ge(cc1, LinearExpr::constant(k, 1)),
        Update::none(),
    );
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    add_fair_coin(&mut b, cc0, cc1);
    b.build().expect("voting fixture must validate")
}

/// A deliberately broken model: the exit guard of the waiting location is
/// `v0 >= n`, which only correct processes can raise to at most `n - f`, so
/// processes that wait there block forever.
pub fn blocking_model() -> SystemModel {
    let env = ccta::env::byzantine_common_coin_env(3);
    let k = env.num_params();
    let n = env.param_id("n").unwrap();
    let mut b = SystemBuilder::new("checker-blocking", env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    b.rule("bcast0", i0, s, Guard::top(), Update::increment(v0));
    b.rule("bcast1", i1, e1, Guard::top(), Update::increment(v1));
    // unsatisfiable for correct processes alone: v0 can reach at most n - f
    b.rule(
        "impossible",
        s,
        e0,
        Guard::ge(v0, LinearExpr::param(k, n)),
        Update::none(),
    );
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    add_fair_coin(&mut b, cc0, cc1);
    b.build().expect("blocking fixture must validate")
}

/// The standard small admissible valuation `n = 4, t = 1, f = 1, cc = 1`.
pub fn small_params() -> ParamValuation {
    ParamValuation::new(vec![4, 1, 1, 1])
}

/// The benchmark valuation of a single-round model: the smallest admissible
/// valuation (parameter values up to 8) with two or three modelled
/// processes and at most one coin, using the same Byzantine-first
/// preference key as `cccore::VerifierConfig::select_valuations` (which
/// lives a layer above this crate and applies its own configured bounds).
/// Shared by the `engine_equivalence` and `parallel_determinism` suites so
/// both pin the same state spaces.
pub fn benchmark_valuation(model: &SystemModel) -> ParamValuation {
    let env = model.env();
    let f_id = env.param_id("f");
    env.admissible_valuations(8)
        .into_iter()
        .filter(|v| {
            env.system_size(v)
                .is_some_and(|s| s.processes >= 2 && s.processes <= 3 && s.coins <= 1)
        })
        .min_by_key(|v| {
            let byz = f_id.map(|f| v.value(f) >= 1).unwrap_or(false);
            let procs = env.system_size(v).map(|s| s.processes).unwrap_or(u64::MAX);
            (std::cmp::Reverse(byz as u8), procs, v.values().to_vec())
        })
        .expect("admissible benchmark valuation")
}
