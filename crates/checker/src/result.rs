//! Outcomes of checking a query.

use crate::counterexample::Counterexample;
use std::fmt;

/// The verdict of a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// The query holds (for the checked parameter valuation).
    Holds,
    /// The query is violated; a counterexample is attached.
    Violated,
    /// The check was inconclusive (state bound exhausted).
    Unknown,
}

impl fmt::Display for CheckStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckStatus::Holds => f.write_str("holds"),
            CheckStatus::Violated => f.write_str("violated"),
            CheckStatus::Unknown => f.write_str("unknown"),
        }
    }
}

/// The full outcome of checking one query on one counter system.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The verdict.
    pub status: CheckStatus,
    /// Number of explored states (the cost of the check).
    pub states_explored: usize,
    /// Number of explored transitions.
    pub transitions_explored: usize,
    /// Counterexample, present iff `status == Violated`.
    pub counterexample: Option<Counterexample>,
    /// Additional details (e.g. why the check was inconclusive).
    pub detail: String,
}

impl CheckOutcome {
    /// A positive outcome.
    pub fn holds(states: usize, transitions: usize) -> Self {
        CheckOutcome {
            status: CheckStatus::Holds,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: None,
            detail: String::new(),
        }
    }

    /// A violation with counterexample.
    pub fn violated(states: usize, transitions: usize, ce: Counterexample) -> Self {
        CheckOutcome {
            status: CheckStatus::Violated,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: Some(ce),
            detail: String::new(),
        }
    }

    /// An inconclusive outcome.
    pub fn unknown(states: usize, transitions: usize, detail: impl Into<String>) -> Self {
        CheckOutcome {
            status: CheckStatus::Unknown,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: None,
            detail: detail.into(),
        }
    }

    /// Whether the query holds.
    pub fn is_holds(&self) -> bool {
        self.status == CheckStatus::Holds
    }

    /// Whether the query is violated.
    pub fn is_violated(&self) -> bool {
        self.status == CheckStatus::Violated
    }
}

impl fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} states, {} transitions)",
            self.status, self.states_explored, self.transitions_explored
        )?;
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        Ok(())
    }
}

/// One reachability graph built by the graph cache (a cache *miss*): the
/// start-restriction group it serves and the exploration cost paid once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupCacheRecord {
    /// Label of the start restriction keying the group.
    pub start: String,
    /// Number of obligations evaluated on this graph (the first of which
    /// paid for the build).
    pub specs: usize,
    /// Distinct configurations explored once for the graph.
    pub states: usize,
    /// Transitions explored once for the graph.
    pub transitions: usize,
}

/// Cache accounting of the reachability-graph cache (see the "Graph cache"
/// section of the crate docs): one [`GroupCacheRecord`] per graph built,
/// plus the number of obligations that bypassed the cache entirely.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphCacheStats {
    /// One record per graph built, in build order.
    pub groups: Vec<GroupCacheRecord>,
    /// Obligations checked on the per-spec path (cache disabled, or a spec
    /// shape the cache does not serve).
    pub uncached_specs: usize,
}

impl GraphCacheStats {
    /// Number of graphs built — the cache misses.
    pub fn graphs_built(&self) -> usize {
        self.groups.len()
    }

    /// Number of obligations answered from a cached graph (the cache hits
    /// are `specs_served() - graphs_built()`).
    pub fn specs_served(&self) -> usize {
        self.groups.iter().map(|g| g.specs).sum()
    }

    /// States explored once across all built graphs.
    pub fn cached_states(&self) -> usize {
        self.groups.iter().map(|g| g.states).sum()
    }

    /// Transitions explored once across all built graphs.
    pub fn cached_transitions(&self) -> usize {
        self.groups.iter().map(|g| g.transitions).sum()
    }

    /// Obligations served per exploration paid: the amortization factor of
    /// the cache (1.0 when every graph served a single obligation; 0.0 when
    /// nothing was cached).
    pub fn amortization(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            self.specs_served() as f64 / self.groups.len() as f64
        }
    }

    /// Folds another stats record into this one (sweeps aggregate the
    /// per-valuation records in valuation order).
    pub fn merge(&mut self, other: &GraphCacheStats) {
        self.groups.extend(other.groups.iter().cloned());
        self.uncached_specs += other.uncached_specs;
    }
}

impl fmt::Display for GraphCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.groups.is_empty() {
            return write!(
                f,
                "graph cache unused ({} obligation(s) on the per-spec path)",
                self.uncached_specs
            );
        }
        write!(
            f,
            "{} graph(s) served {} obligation(s) ({:.1}x amortization, \
             {} states / {} transitions explored once",
            self.graphs_built(),
            self.specs_served(),
            self.amortization(),
            self.cached_states(),
            self.cached_transitions(),
        )?;
        if self.uncached_specs > 0 {
            write!(f, "; {} uncached obligation(s)", self.uncached_specs)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccounter::{Configuration, Schedule};
    use ccta::ParamValuation;

    #[test]
    fn constructors_set_status() {
        assert!(CheckOutcome::holds(10, 20).is_holds());
        assert!(!CheckOutcome::holds(10, 20).is_violated());
        let ce = Counterexample {
            spec: "x".into(),
            params: ParamValuation::new(vec![1]),
            initial: Configuration::zero(1, 1),
            schedule: Schedule::new(),
            explanation: String::new(),
        };
        let v = CheckOutcome::violated(5, 9, ce);
        assert!(v.is_violated());
        assert!(v.counterexample.is_some());
        let u = CheckOutcome::unknown(1, 2, "bound");
        assert_eq!(u.status, CheckStatus::Unknown);
        assert_eq!(u.detail, "bound");
    }

    #[test]
    fn display_contains_costs() {
        let s = format!("{}", CheckOutcome::holds(10, 20));
        assert!(s.contains("holds"));
        assert!(s.contains("10 states"));
        let s = format!("{}", CheckOutcome::unknown(1, 2, "cap"));
        assert!(s.contains("[cap]"));
        assert_eq!(format!("{}", CheckStatus::Violated), "violated");
    }
}
