//! Outcomes of checking a query.

use crate::counterexample::Counterexample;
use std::fmt;

/// Detail prefix marking an [`CheckStatus::Unknown`] outcome that was cut
/// short by a job signal (cancellation or budget) rather than a per-check
/// state/transition bound.  See [`CheckOutcome::is_interrupted`].
pub(crate) const INTERRUPTED_PREFIX: &str = "interrupted: ";

/// The verdict of a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// The query holds (for the checked parameter valuation).
    Holds,
    /// The query is violated; a counterexample is attached.
    Violated,
    /// The check was inconclusive (state bound exhausted).
    Unknown,
}

impl fmt::Display for CheckStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckStatus::Holds => f.write_str("holds"),
            CheckStatus::Violated => f.write_str("violated"),
            CheckStatus::Unknown => f.write_str("unknown"),
        }
    }
}

/// The full outcome of checking one query on one counter system.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The verdict.
    pub status: CheckStatus,
    /// Number of explored states (the cost of the check).
    pub states_explored: usize,
    /// Number of explored transitions.
    pub transitions_explored: usize,
    /// Counterexample, present iff `status == Violated`.
    pub counterexample: Option<Counterexample>,
    /// Additional details (e.g. why the check was inconclusive).
    pub detail: String,
}

impl CheckOutcome {
    /// A positive outcome.
    pub fn holds(states: usize, transitions: usize) -> Self {
        CheckOutcome {
            status: CheckStatus::Holds,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: None,
            detail: String::new(),
        }
    }

    /// A violation with counterexample.
    pub fn violated(states: usize, transitions: usize, ce: Counterexample) -> Self {
        CheckOutcome {
            status: CheckStatus::Violated,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: Some(ce),
            detail: String::new(),
        }
    }

    /// An inconclusive outcome.
    pub fn unknown(states: usize, transitions: usize, detail: impl Into<String>) -> Self {
        CheckOutcome {
            status: CheckStatus::Unknown,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: None,
            detail: detail.into(),
        }
    }

    /// An outcome cut short by a job signal: cancellation, deadline, or a
    /// job-level budget.  Distinguished from an ordinary bound-exhausted
    /// `unknown` so the sweep can account the cell as
    /// interrupted-with-checkpoint rather than inconclusive.
    pub(crate) fn interrupted(
        states: usize,
        transitions: usize,
        kind: crate::job::InterruptKind,
    ) -> Self {
        CheckOutcome::unknown(
            states,
            transitions,
            format!("{INTERRUPTED_PREFIX}{}", kind.describe()),
        )
    }

    /// Whether this outcome was cut short by a job signal (see
    /// [`crate::job::CheckJob`]); such outcomes are `Unknown` with an
    /// `interrupted: …` detail.
    pub fn is_interrupted(&self) -> bool {
        self.status == CheckStatus::Unknown && self.detail.starts_with(INTERRUPTED_PREFIX)
    }

    /// Whether the query holds.
    pub fn is_holds(&self) -> bool {
        self.status == CheckStatus::Holds
    }

    /// Whether the query is violated.
    pub fn is_violated(&self) -> bool {
        self.status == CheckStatus::Violated
    }
}

impl fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} states, {} transitions)",
            self.status, self.states_explored, self.transitions_explored
        )?;
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        Ok(())
    }
}

/// How a group's reachability graph was obtained: built from scratch, or —
/// under the incremental sweep (see the "Incremental sweeps" section of the
/// crate docs) — inherited from the previous valuation of the group's
/// lineage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GraphOrigin {
    /// Explored from scratch; no lineage predecessor existed.
    #[default]
    Built,
    /// The guard bounds were identical to the lineage predecessor's: the
    /// cached graph served as-is, paying no exploration at all.
    Reused,
    /// The valuation step was relax-only: the predecessor graph was
    /// extended from a seeded frontier instead of re-explored.
    Extended,
    /// The valuation step was tighten-only: the predecessor graph was
    /// pruned in place (dead actions re-validated against the tightened
    /// bounds and cut) instead of re-explored.
    Pruned,
    /// A lineage predecessor existed but could not be carried over (the
    /// step was mixed, the system size changed, or the extension tripped a
    /// budget): explored from scratch.
    Rebuilt,
}

impl fmt::Display for GraphOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphOrigin::Built => "built",
            GraphOrigin::Reused => "reused",
            GraphOrigin::Extended => "extended",
            GraphOrigin::Pruned => "pruned",
            GraphOrigin::Rebuilt => "rebuilt",
        })
    }
}

/// One reachability graph the cache served obligations from: the
/// start-restriction group, how the graph was obtained (see
/// [`GraphOrigin`]), and its cost.  `Built`/`Rebuilt` records paid a full
/// exploration, `Extended` ones paid a seeded partial exploration, and
/// `Reused` ones paid nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupCacheRecord {
    /// Label of the start restriction keying the group.
    pub start: String,
    /// Number of obligations evaluated on this graph (the first of which
    /// paid for the build).
    pub specs: usize,
    /// Distinct configurations the graph holds.
    pub states: usize,
    /// Transitions the graph holds.
    pub transitions: usize,
    /// How the graph was obtained.
    pub origin: GraphOrigin,
    /// Size of the seeded frontier an `Extended` graph was re-explored
    /// from (0 for every other origin).
    pub seed_frontier: usize,
    /// Dead actions a `Pruned` graph cut against the tightened bounds
    /// (0 for every other origin).
    pub pruned_actions: usize,
    /// Obligations answered from this graph's verdict memo without running
    /// an analysis pass (see the "Verdict memoization & lineage compaction"
    /// crate docs).
    pub memo_hits: usize,
    /// Obligations that ran a real analysis pass on this graph.
    pub memo_misses: usize,
    /// Resident bytes of the cached graph (deduplicated rows + side arrays
    /// + index + CSR arenas + lineage bookkeeping).
    pub resident_bytes: usize,
}

/// Cache accounting of the reachability-graph cache (see the "Graph cache"
/// section of the crate docs): one [`GroupCacheRecord`] per graph built,
/// plus the number of obligations that bypassed the cache entirely.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphCacheStats {
    /// One record per graph built, in build order.
    pub groups: Vec<GroupCacheRecord>,
    /// Obligations checked on the per-spec path (cache disabled, or a spec
    /// shape the cache does not serve).
    pub uncached_specs: usize,
    /// Resident bytes of the lineage graphs *before* they were parked
    /// between valuations (0 when nothing was parked — parking only runs
    /// under the incremental sweep).
    pub parked_full_bytes: usize,
    /// Resident bytes of the same graphs *after* parking (delta-encoded
    /// rows, dropped index tables, compacted CSR arenas).  Together with
    /// `parked_full_bytes` this is the sweep's steady-state compression
    /// ratio.
    pub parked_compact_bytes: usize,
}

impl GraphCacheStats {
    /// Number of group records — one per `(start restriction, valuation)`
    /// group a graph served, whether it was explored or inherited from the
    /// sweep lineage.
    pub fn graphs_built(&self) -> usize {
        self.groups.len()
    }

    fn count_origin(&self, origin: GraphOrigin) -> usize {
        self.groups.iter().filter(|g| g.origin == origin).count()
    }

    /// Groups whose graph was served as-is from the sweep lineage
    /// (identical guard bounds: zero exploration paid).
    pub fn reused_groups(&self) -> usize {
        self.count_origin(GraphOrigin::Reused)
    }

    /// Groups whose graph was incrementally extended across a relax-only
    /// valuation step.
    pub fn extended_groups(&self) -> usize {
        self.count_origin(GraphOrigin::Extended)
    }

    /// Groups whose graph was pruned in place across a tighten-only
    /// valuation step.
    pub fn pruned_groups(&self) -> usize {
        self.count_origin(GraphOrigin::Pruned)
    }

    /// Groups whose lineage predecessor had to be discarded (mixed step,
    /// size change, or a budget-tripped extension).
    pub fn rebuilt_groups(&self) -> usize {
        self.count_origin(GraphOrigin::Rebuilt)
    }

    /// Total seeded-frontier size across all extended groups.
    pub fn seed_frontier_total(&self) -> usize {
        self.groups.iter().map(|g| g.seed_frontier).sum()
    }

    /// Total dead actions cut across all pruned groups.
    pub fn pruned_actions_total(&self) -> usize {
        self.groups.iter().map(|g| g.pruned_actions).sum()
    }

    /// Obligations answered from a graph's verdict memo (zero analysis
    /// passes paid).
    pub fn memo_hits(&self) -> usize {
        self.groups.iter().map(|g| g.memo_hits).sum()
    }

    /// Obligations that paid a real analysis pass.
    pub fn memo_misses(&self) -> usize {
        self.groups.iter().map(|g| g.memo_misses).sum()
    }

    /// Parked-store compression: `compact / full` resident bytes over the
    /// lineage graphs parked between sweep valuations (1.0 when nothing
    /// was parked).
    pub fn parked_compression(&self) -> f64 {
        if self.parked_full_bytes == 0 {
            1.0
        } else {
            self.parked_compact_bytes as f64 / self.parked_full_bytes as f64
        }
    }

    /// Resident bytes across all recorded graphs.  Within one valuation the
    /// figure is live memory; summed over a sweep it counts each surviving
    /// lineage graph once per valuation it served, so read the per-group
    /// records for peak-memory questions.
    pub fn resident_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.resident_bytes).sum()
    }

    /// Number of group records that actually paid exploration work: built,
    /// rebuilt, or (partially, from a seeded frontier) extended.  Reused
    /// groups served their obligations for free, so the cost metrics below
    /// exclude them.
    pub fn explorations_paid(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.origin != GraphOrigin::Reused)
            .count()
    }

    /// Number of obligations answered from a cached graph.
    pub fn specs_served(&self) -> usize {
        self.groups.iter().map(|g| g.specs).sum()
    }

    /// States explored (or, for extended groups, re-linked) across the
    /// groups that paid exploration; reused groups contribute nothing —
    /// their states were already counted when the lineage predecessor was
    /// built.
    pub fn cached_states(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.origin != GraphOrigin::Reused)
            .map(|g| g.states)
            .sum()
    }

    /// Transitions explored across the groups that paid exploration (see
    /// [`GraphCacheStats::cached_states`] for the reused-group convention).
    pub fn cached_transitions(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.origin != GraphOrigin::Reused)
            .map(|g| g.transitions)
            .sum()
    }

    /// Obligations served per exploration paid: the amortization factor of
    /// the cache (1.0 when every explored graph served a single obligation;
    /// 0.0 when nothing was cached).  Reused lineage groups raise the
    /// numerator without touching the denominator — that is exactly the
    /// incremental sweep's win.
    pub fn amortization(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            // max(1): a stats snapshot consisting solely of reused groups
            // (a single later valuation viewed in isolation) paid nothing
            self.specs_served() as f64 / self.explorations_paid().max(1) as f64
        }
    }

    /// Fraction of obligations answered straight from the verdict memo
    /// (`memo_hits / (memo_hits + memo_misses)`, 0.0 when the memo was
    /// never consulted).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits() + self.memo_misses();
        if total == 0 {
            0.0
        } else {
            self.memo_hits() as f64 / total as f64
        }
    }

    /// Fraction of lineage groups carried across a valuation step without a
    /// rebuild (reused + extended + pruned over all groups, 0.0 when no
    /// graph was ever cached).  1.0 means every group of every later
    /// valuation was derived incrementally; fresh first-valuation builds
    /// count against the rate.
    pub fn lineage_reuse_rate(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            (self.reused_groups() + self.extended_groups() + self.pruned_groups()) as f64
                / self.groups.len() as f64
        }
    }

    /// Fraction of obligations served from a cached graph rather than the
    /// per-spec fallback path.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.specs_served() + self.uncached_specs;
        if total == 0 {
            0.0
        } else {
            self.specs_served() as f64 / total as f64
        }
    }

    /// Folds another stats record into this one (sweeps aggregate the
    /// per-valuation records in valuation order).
    pub fn merge(&mut self, other: &GraphCacheStats) {
        self.groups.extend(other.groups.iter().cloned());
        self.uncached_specs += other.uncached_specs;
        self.parked_full_bytes += other.parked_full_bytes;
        self.parked_compact_bytes += other.parked_compact_bytes;
    }
}

impl fmt::Display for GraphCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.groups.is_empty() {
            return write!(
                f,
                "graph cache unused ({} obligation(s) on the per-spec path)",
                self.uncached_specs
            );
        }
        write!(
            f,
            "{} graph(s) ({} explored) served {} obligation(s) ({:.1}x amortization, \
             {} states / {} transitions explored once",
            self.graphs_built(),
            self.explorations_paid(),
            self.specs_served(),
            self.amortization(),
            self.cached_states(),
            self.cached_transitions(),
        )?;
        let (reused, extended, pruned, rebuilt) = (
            self.reused_groups(),
            self.extended_groups(),
            self.pruned_groups(),
            self.rebuilt_groups(),
        );
        if reused + extended + pruned + rebuilt > 0 {
            write!(
                f,
                "; lineage: {reused} reused / {extended} extended / {pruned} pruned / \
                 {rebuilt} rebuilt"
            )?;
            if extended > 0 {
                write!(f, ", {} frontier seed(s)", self.seed_frontier_total())?;
            }
            if pruned > 0 {
                write!(f, ", {} action(s) cut", self.pruned_actions_total())?;
            }
        }
        if self.memo_hits() > 0 {
            write!(
                f,
                "; memo: {} hit(s) / {} miss(es)",
                self.memo_hits(),
                self.memo_misses()
            )?;
        }
        write!(f, "; {} resident bytes", self.resident_bytes())?;
        if self.parked_full_bytes > 0 {
            write!(
                f,
                "; parked {} -> {} bytes ({:.2}x)",
                self.parked_full_bytes,
                self.parked_compact_bytes,
                self.parked_compression()
            )?;
        }
        if self.uncached_specs > 0 {
            write!(f, "; {} uncached obligation(s)", self.uncached_specs)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccounter::{Configuration, Schedule};
    use ccta::ParamValuation;

    #[test]
    fn constructors_set_status() {
        assert!(CheckOutcome::holds(10, 20).is_holds());
        assert!(!CheckOutcome::holds(10, 20).is_violated());
        let ce = Counterexample {
            spec: "x".into(),
            params: ParamValuation::new(vec![1]),
            initial: Configuration::zero(1, 1),
            schedule: Schedule::new(),
            explanation: String::new(),
        };
        let v = CheckOutcome::violated(5, 9, ce);
        assert!(v.is_violated());
        assert!(v.counterexample.is_some());
        let u = CheckOutcome::unknown(1, 2, "bound");
        assert_eq!(u.status, CheckStatus::Unknown);
        assert_eq!(u.detail, "bound");
    }

    #[test]
    fn display_contains_costs() {
        let s = format!("{}", CheckOutcome::holds(10, 20));
        assert!(s.contains("holds"));
        assert!(s.contains("10 states"));
        let s = format!("{}", CheckOutcome::unknown(1, 2, "cap"));
        assert!(s.contains("[cap]"));
        assert_eq!(format!("{}", CheckStatus::Violated), "violated");
    }
}
