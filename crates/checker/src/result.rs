//! Outcomes of checking a query.

use crate::counterexample::Counterexample;
use std::fmt;

/// The verdict of a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// The query holds (for the checked parameter valuation).
    Holds,
    /// The query is violated; a counterexample is attached.
    Violated,
    /// The check was inconclusive (state bound exhausted).
    Unknown,
}

impl fmt::Display for CheckStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckStatus::Holds => f.write_str("holds"),
            CheckStatus::Violated => f.write_str("violated"),
            CheckStatus::Unknown => f.write_str("unknown"),
        }
    }
}

/// The full outcome of checking one query on one counter system.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The verdict.
    pub status: CheckStatus,
    /// Number of explored states (the cost of the check).
    pub states_explored: usize,
    /// Number of explored transitions.
    pub transitions_explored: usize,
    /// Counterexample, present iff `status == Violated`.
    pub counterexample: Option<Counterexample>,
    /// Additional details (e.g. why the check was inconclusive).
    pub detail: String,
}

impl CheckOutcome {
    /// A positive outcome.
    pub fn holds(states: usize, transitions: usize) -> Self {
        CheckOutcome {
            status: CheckStatus::Holds,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: None,
            detail: String::new(),
        }
    }

    /// A violation with counterexample.
    pub fn violated(states: usize, transitions: usize, ce: Counterexample) -> Self {
        CheckOutcome {
            status: CheckStatus::Violated,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: Some(ce),
            detail: String::new(),
        }
    }

    /// An inconclusive outcome.
    pub fn unknown(states: usize, transitions: usize, detail: impl Into<String>) -> Self {
        CheckOutcome {
            status: CheckStatus::Unknown,
            states_explored: states,
            transitions_explored: transitions,
            counterexample: None,
            detail: detail.into(),
        }
    }

    /// Whether the query holds.
    pub fn is_holds(&self) -> bool {
        self.status == CheckStatus::Holds
    }

    /// Whether the query is violated.
    pub fn is_violated(&self) -> bool {
        self.status == CheckStatus::Violated
    }
}

impl fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} states, {} transitions)",
            self.status, self.states_explored, self.transitions_explored
        )?;
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccounter::{Configuration, Schedule};
    use ccta::ParamValuation;

    #[test]
    fn constructors_set_status() {
        assert!(CheckOutcome::holds(10, 20).is_holds());
        assert!(!CheckOutcome::holds(10, 20).is_violated());
        let ce = Counterexample {
            spec: "x".into(),
            params: ParamValuation::new(vec![1]),
            initial: Configuration::zero(1, 1),
            schedule: Schedule::new(),
            explanation: String::new(),
        };
        let v = CheckOutcome::violated(5, 9, ce);
        assert!(v.is_violated());
        assert!(v.counterexample.is_some());
        let u = CheckOutcome::unknown(1, 2, "bound");
        assert_eq!(u.status, CheckStatus::Unknown);
        assert_eq!(u.detail, "bound");
    }

    #[test]
    fn display_contains_costs() {
        let s = format!("{}", CheckOutcome::holds(10, 20));
        assert!(s.contains("holds"));
        assert!(s.contains("10 states"));
        let s = format!("{}", CheckOutcome::unknown(1, 2, "cap"));
        assert!(s.contains("[cap]"));
        assert_eq!(format!("{}", CheckStatus::Violated), "violated");
    }
}
