//! A persistent fork-join worker pool for the in-check parallel phases.
//!
//! The [`crate::explorer::Explorer`] used to spawn scoped worker threads for
//! every wide BFS level — cheap for a handful of deep levels, but a real tax
//! on searches with hundreds of wide levels and on sweeps running thousands
//! of sub-millisecond checks.  [`WorkerPool`] amortises that cost: the
//! threads are spawned once (per check, or once per sweep worker and shared
//! across all the grid cells it processes) and every parallel phase is a
//! *batch* of closures pushed onto the pool's queue.
//!
//! # Design
//!
//! * A pool of `threads` total lanes spawns `threads - 1` OS threads; the
//!   **calling thread always participates** in draining the batch queue, so
//!   a 1-thread pool spawns nothing and runs batches inline — the
//!   sequential path pays no synchronisation at all.
//! * [`WorkerPool::run`] accepts borrowing closures (the explorer's tasks
//!   capture `&RowEngine`, `&StateStore` and `&mut` scratch buffers) and
//!   **joins the whole batch before returning**, which is what makes the
//!   internal lifetime erasure sound: no task can outlive the borrows it
//!   captured.
//! * A panicking task is caught, the batch is still drained to completion,
//!   and the panic is re-raised on the calling thread once the batch is
//!   done — the pool itself stays usable and its queue empty.
//!
//! The pool is deliberately *not* a work-stealing scheduler: it hands out a
//! small number of batch tasks (one lane loop for the expand phase, one per
//! store shard for the intern phase), so a single locked queue drained by
//! all lanes is both simpler and fast enough — the queue is touched a few
//! times per *wave*, not per state.  Work stealing *within* the expand
//! phase lives in the explorer instead: each lane task claims wave chunks
//! through an atomic cursor, so skewed chunk costs balance without the pool
//! needing per-task queues.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Backtrace captured by the chained panic hook for the most recent
    /// panic on this thread; consumed by [`take_thread_backtrace`].
    static LAST_BACKTRACE: Cell<Option<String>> = const { Cell::new(None) };
}

static HOOK_INSTALLED: Once = Once::new();

/// Chains a panic hook (once per process) that snapshots the panicking
/// lane's backtrace into a thread-local, so a caught worker panic can be
/// reported with the backtrace of the lane that actually failed.
fn install_panic_hook() {
    HOOK_INSTALLED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            LAST_BACKTRACE.with(|slot| {
                slot.set(Some(std::backtrace::Backtrace::force_capture().to_string()))
            });
            previous(info);
        }));
    });
}

/// Takes the backtrace of the most recent panic *on the calling thread*
/// (for panics that unwound through the pool's inline fast path, where no
/// lane handed the backtrace to the pool state).
pub(crate) fn take_thread_backtrace() -> Option<String> {
    LAST_BACKTRACE.with(|slot| slot.take())
}

/// A type-erased batch task.  The `'static` is a lie maintained by
/// [`WorkerPool::run`], which joins every task before the borrows it
/// captured can expire.
type Task = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    /// Tasks of the in-flight batch that no lane has picked up yet.
    queue: VecDeque<Task>,
    /// Tasks of the in-flight batch that have not finished yet (queued or
    /// currently running on some lane).
    pending: usize,
    /// The payload of the first task of the current batch that panicked,
    /// re-raised on the batch owner so the original diagnostic survives.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// The panicking lane's backtrace, captured alongside `panic` and held
    /// for [`WorkerPool::take_panic_backtrace`].
    backtrace: Option<String>,
    /// Set by `Drop`; workers exit once the queue is empty.
    shutdown: bool,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

#[derive(Default)]
struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when tasks are queued (or on shutdown).
    work_ready: Condvar,
    /// Signalled when the last pending task of a batch finishes.
    batch_done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        // a panicked task is recorded and re-raised deliberately; don't let
        // mutex poisoning turn it into an unrelated unwrap failure
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs one task, recording a panic instead of unwinding, and wakes the
    /// batch owner when the batch completes.
    fn finish_one(&self, task: Task) {
        let result = catch_unwind(AssertUnwindSafe(task));
        let backtrace = if result.is_err() {
            take_thread_backtrace()
        } else {
            None
        };
        let mut state = self.lock();
        if let Err(payload) = result {
            if state.panic.is_none() {
                state.panic = Some(payload);
                state.backtrace = backtrace;
            }
        }
        state.pending -= 1;
        if state.pending == 0 {
            self.batch_done.notify_all();
        }
    }
}

/// A persistent fork-join pool of `threads` lanes (see the module docs).
///
/// Created once per check by [`crate::ExplicitChecker`] — or once per sweep
/// worker by [`crate::check_over_sweep`], which reuses it across every grid
/// cell that worker processes — and dropped (joining its threads) with its
/// owner.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Spawned lazily by the first multi-task batch: a pool that only ever
    /// serves sequential explorations (or none at all — most checks of a
    /// narrow system never reach the parallel threshold) costs nothing.
    handles: OnceLock<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` total lanes (clamped to at least 1).  The
    /// calling thread is one of the lanes, so at most `threads - 1` OS
    /// threads serve the pool — and they are spawned only when the first
    /// real batch arrives, so a pool that never runs a parallel phase (a
    /// 1-lane pool, or a checker whose frontiers stay narrow) spawns
    /// nothing.
    pub fn new(threads: usize) -> Self {
        install_panic_hook();
        WorkerPool {
            shared: Arc::new(Shared::default()),
            handles: OnceLock::new(),
            threads: threads.max(1),
        }
    }

    fn spawned_handles(&self) -> &[JoinHandle<()>] {
        self.handles.get_or_init(|| {
            (1..self.threads)
                .map(|_| {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || worker_loop(&shared))
                })
                .collect()
        })
    }

    /// Total number of lanes (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Takes the backtrace of the lane whose panic the last batch re-raised
    /// (if a batch panicked and no one consumed the backtrace yet).  Panics
    /// on the inline fast path never reach the pool state; see
    /// [`take_thread_backtrace`] for those.
    pub(crate) fn take_panic_backtrace(&self) -> Option<String> {
        self.shared.lock().backtrace.take()
    }

    /// Runs a batch of tasks across the pool's lanes and the calling
    /// thread, returning when *all* of them have completed.
    ///
    /// Tasks may borrow from the caller's scope: the join-before-return
    /// guarantee is what makes the internal lifetime erasure sound.  If any
    /// task panicked, the panic is re-raised here after the batch drained.
    pub(crate) fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        if self.threads == 1 || tasks.len() == 1 {
            // inline fast path: no queue round-trip, panics unwind directly
            for task in tasks {
                task();
            }
            return;
        }
        self.spawned_handles();
        let batch = tasks.len();
        {
            let mut state = self.shared.lock();
            state.pending += batch;
            for task in tasks {
                // SAFETY: this function does not return until `pending`
                // covering every task of this batch has reached zero, i.e.
                // until each task has run to completion (panics included,
                // via `finish_one`), so no task outlives `'scope`.
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
                state.queue.push_back(task);
            }
        }
        self.shared.work_ready.notify_all();

        // the calling thread is a lane too: drain the queue …
        loop {
            let task = self.shared.lock().queue.pop_front();
            match task {
                Some(task) => self.shared.finish_one(task),
                None => break,
            }
        }
        // … then wait for the stragglers running on the other lanes
        let mut state = self.shared.lock();
        while state.pending > 0 {
            state = self
                .shared
                .batch_done
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        if let Some(handles) = self.handles.take() {
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut state = shared.lock();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.finish_one(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut results = vec![0usize; 3];
        pool.run(
            results
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| boxed(move || *slot = i + 1))
                .collect(),
        );
        assert_eq!(results, vec![1, 2, 3]);
    }

    #[test]
    fn batches_join_before_returning() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        for round in 1..=20usize {
            pool.run(
                (0..8)
                    .map(|_| {
                        let counter = &counter;
                        boxed(move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect(),
            );
            // every task of every batch completed by the time run() returned
            assert_eq!(counter.load(Ordering::Relaxed), round * 8);
        }
    }

    #[test]
    fn tasks_may_mutate_disjoint_borrows() {
        let pool = WorkerPool::new(3);
        let mut slots = [0u64; 16];
        pool.run(
            slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| boxed(move || *slot = (i as u64 + 1) * 10))
                .collect(),
        );
        assert!(slots
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (i as u64 + 1) * 10));
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..4)
                    .map(|i| boxed(move || assert!(i != 2, "boom at task {i}")))
                    .collect(),
            );
        }));
        // the original panic payload is re-raised, not a generic wrapper
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .expect("panic payload survives");
        assert!(message.contains("boom at task 2"), "{message}");
        // the queue drained and the pool is reusable
        let ok = AtomicUsize::new(0);
        pool.run(
            (0..4)
                .map(|_| {
                    let ok = &ok;
                    boxed(move || {
                        ok.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect(),
        );
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }
}
