//! Seeded generation of well-formed threshold-automata protocol families.
//!
//! The eight Table II protocols pin the engine on *known* shapes; this
//! module turns generation into a first-class workload: a [`FamilyParams`]
//! point describes a family (intra-round phase depth, locations per phase,
//! branch fan-out, guard density, shared/coin variable counts, the
//! crash-vs-Byzantine fault model and the resilience factor), and
//! [`FamilyParams::instantiate`] deterministically expands a `(params,
//! seed)` pair into a validated multi-round system model, its single-round
//! form, admissible valuations (plus a guard-adjacent sweep grid where one
//! exists) and a catalogue of proof obligations over the generated
//! locations.
//!
//! # Seeding contract
//!
//! Generation is a pure function of `(params, seed)`: the parameter point is
//! folded into the RNG seed, every random draw comes from one `StdRng`
//! stream, and identical inputs produce byte-identical models, valuations
//! and obligation catalogues across runs and platforms (the in-tree `rand`
//! shim is fully deterministic).
//!
//! # Shape of a generated family
//!
//! Every family is a common-coin consensus skeleton: border locations
//! `J0`/`J1`, initial locations `I0`/`I1`, a DAG of intermediate locations
//! `S<phase>_<slot>` (`phases × width` of them; rules only ever target a
//! *later* phase or a final location, so the intra-round graph is acyclic
//! and canonical), final locations `E0`/`E1`, and the standard fair-coin
//! automaton publishing through the coin variables.  Threshold guards draw
//! from small constants, the environment's quorum expression (`n - t - f`
//! under Byzantine faults, `n - t` under crash-stop faults) and coin
//! observations; a post-pass guarantees every threshold-guarded shared
//! variable has at least one increment site, so all guard bounds are
//! attainable under the declared resilience condition.
//!
//! # Obligations
//!
//! The obligation catalogue covers every query shape of the checker
//! (safety from unanimous starts, cover/forbid pairs, the probabilistic
//! avoid-one-of condition and non-blocking termination) over seeded tracked
//! sets.  Obligations are expressed in checker-neutral terms — location
//! *names* and start-restriction descriptors — so this crate stays
//! independent of `ccchecker`; the checker's `Spec::from_family`
//! constructors resolve them against the model.
//!
//! # Compatibility seed mode
//!
//! [`differential_family`] / [`differential_obligations`] freeze the exact
//! RNG schedule of the historical private generator of the
//! `random_differential` suite, so its ~100-seed corpus (and every verdict,
//! state count and counterexample schedule pinned on it) is reproduced
//! bit-identically through this module.

use ccta::env::{byzantine_common_coin_env, crash_stop_common_coin_env};
use ccta::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The fault model of a generated family, selecting the environment and the
/// quorum expression its threshold guards wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// Byzantine faults: `N(p) = (n - f, 1)` modelled correct processes,
    /// quorum guards wait for `n - t - f` messages.
    Byzantine,
    /// Crash-stop faults: all `n` processes are modelled (a crashed process
    /// simply stops, which asynchrony already covers), quorum guards wait
    /// for `n - t` messages.
    Crash,
    /// Per-seed mix: each instantiated family draws Byzantine or crash-stop
    /// from its seed.
    Mixed,
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultModel::Byzantine => "byz",
            FaultModel::Crash => "crash",
            FaultModel::Mixed => "mixed",
        })
    }
}

/// A point in the protocol-family parameter space.
///
/// All fields are clamped to sane bounds at instantiation time (at least
/// one phase/slot/rule/shared variable, at least two coin variables — the
/// fair coin publishes one per binary value — and a resilience factor of at
/// least 2), so any parameter combination generates a valid family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyParams {
    /// Number of intermediate phases (message-exchange stages) per round.
    pub phases: usize,
    /// Intermediate locations per phase.
    pub width: usize,
    /// Maximum outgoing progress rules per process location (each source
    /// draws 1..=fanout rules).
    pub fanout: usize,
    /// Probability, in percent (0–100), that a progress rule carries a
    /// threshold guard instead of `true`.
    pub guard_density: u8,
    /// Number of shared message-counter variables.
    pub shared_vars: usize,
    /// Number of coin variables (the fair-coin automaton publishes through
    /// all of them, alternating between its two outcomes).
    pub coin_vars: usize,
    /// The fault model (see [`FaultModel`]).
    pub faults: FaultModel,
    /// Resilience factor `a` in the condition `n > a*t`.
    pub resilience: i64,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            phases: 2,
            width: 2,
            fanout: 2,
            guard_density: 60,
            shared_vars: 2,
            coin_vars: 2,
            faults: FaultModel::Byzantine,
            resilience: 2,
        }
    }
}

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

impl FamilyParams {
    /// The parameter point with every field clamped to its supported range.
    pub fn clamped(&self) -> FamilyParams {
        FamilyParams {
            phases: self.phases.clamp(1, 4),
            width: self.width.clamp(1, 4),
            fanout: self.fanout.clamp(1, 4),
            guard_density: self.guard_density.min(100),
            shared_vars: self.shared_vars.clamp(1, 4),
            coin_vars: self.coin_vars.clamp(2, 4),
            faults: self.faults,
            resilience: self.resilience.max(2),
        }
    }

    /// A stable 64-bit fingerprint of the (clamped) parameter point, folded
    /// into the RNG seed so distinct points generate distinct families from
    /// the same seed.
    pub fn fingerprint(&self) -> u64 {
        let p = self.clamped();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv(h, p.phases as u64);
        h = fnv(h, p.width as u64);
        h = fnv(h, p.fanout as u64);
        h = fnv(h, p.guard_density as u64);
        h = fnv(h, p.shared_vars as u64);
        h = fnv(h, p.coin_vars as u64);
        h = fnv(
            h,
            match p.faults {
                FaultModel::Byzantine => 1,
                FaultModel::Crash => 2,
                FaultModel::Mixed => 3,
            },
        );
        fnv(h, p.resilience as u64)
    }

    /// Deterministically expands this parameter point and a seed into a
    /// generated family.
    ///
    /// # Panics
    ///
    /// Panics if the generated model fails validation or the derived
    /// valuation is inadmissible — both would be generator bugs, and the
    /// panic message carries the seed needed to reproduce them.
    pub fn instantiate(&self, seed: u64) -> GeneratedFamily {
        let p = self.clamped();
        let mut rng = StdRng::seed_from_u64(seed ^ p.fingerprint());
        let faults = match p.faults {
            FaultModel::Mixed => {
                if rng.gen_bool(0.5) {
                    FaultModel::Byzantine
                } else {
                    FaultModel::Crash
                }
            }
            other => other,
        };
        let a = p.resilience;
        let env = match faults {
            FaultModel::Byzantine => byzantine_common_coin_env(a),
            _ => crash_stop_common_coin_env(a),
        };
        let k = env.num_params();
        let n = env.param_id("n").unwrap();
        let t = env.param_id("t").unwrap();
        let f = env.param_id("f").unwrap();
        let quorum = match faults {
            FaultModel::Byzantine => LinearExpr::param(k, n)
                .sub(&LinearExpr::param(k, t))
                .sub(&LinearExpr::param(k, f)),
            _ => LinearExpr::param(k, n).sub(&LinearExpr::param(k, t)),
        };

        let name = format!("family-{faults}-a{a}-p{}x{}-{seed:#x}", p.phases, p.width);
        let mut b = SystemBuilder::new(name, env.clone());
        let shared: Vec<VarId> = (0..p.shared_vars)
            .map(|i| b.shared_var(&format!("v{i}")))
            .collect();
        let coins: Vec<VarId> = (0..p.coin_vars)
            .map(|i| b.coin_var(&format!("cc{i}")))
            .collect();

        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
        let mut mids: Vec<(usize, LocId)> = Vec::new();
        let mut mid_names: Vec<String> = Vec::new();
        for phase in 0..p.phases {
            for slot in 0..p.width {
                let name = format!("S{phase}_{slot}");
                let loc = b.process_location(&name, LocClass::Intermediate, None);
                mids.push((phase, loc));
                mid_names.push(name);
            }
        }
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
        b.start_rule(j0, i0);
        b.start_rule(j1, i1);

        // Progress rules are drafted first so the satisfiability post-pass
        // can retarget updates before anything is frozen into the builder.
        struct Draft {
            from: LocId,
            to: LocId,
            guard: Guard,
            update: Update,
        }
        let mut drafts: Vec<Draft> = Vec::new();
        let draw_rules = |rng: &mut StdRng,
                          drafts: &mut Vec<Draft>,
                          from: LocId,
                          min_phase: usize| {
            let mut targets: Vec<LocId> = mids
                .iter()
                .filter(|(phase, _)| *phase >= min_phase)
                .map(|(_, loc)| *loc)
                .collect();
            targets.push(e0);
            targets.push(e1);
            for _ in 0..rng.gen_range(1..=p.fanout) {
                let to = targets[rng.gen_range(0..targets.len())];
                let guard = if rng.gen_range(0..100u32) < p.guard_density as u32 {
                    match rng.gen_range(0..5u32) {
                        0 | 1 => Guard::ge(
                            shared[rng.gen_range(0..shared.len())],
                            LinearExpr::constant(k, rng.gen_range(1..=2u64) as i64),
                        ),
                        2 | 3 => Guard::ge(shared[rng.gen_range(0..shared.len())], quorum.clone()),
                        _ => Guard::ge(
                            coins[rng.gen_range(0..coins.len())],
                            LinearExpr::constant(k, 1),
                        ),
                    }
                } else {
                    Guard::top()
                };
                let update = if rng.gen_bool(0.5) {
                    Update::increment(shared[rng.gen_range(0..shared.len())])
                } else {
                    Update::none()
                };
                drafts.push(Draft {
                    from,
                    to,
                    guard,
                    update,
                });
            }
        };
        draw_rules(&mut rng, &mut drafts, i0, 0);
        draw_rules(&mut rng, &mut drafts, i1, 0);
        for &(phase, loc) in &mids {
            draw_rules(&mut rng, &mut drafts, loc, phase + 1);
        }

        // Satisfiability post-pass: every shared variable appearing in a
        // threshold guard gets at least one increment site, so its bounds
        // (capped at the quorum / small constants) stay attainable by the
        // modelled population.  Deterministic — no further RNG draws.
        for &v in &shared {
            let guarded = drafts
                .iter()
                .any(|d| d.guard.atoms().iter().any(|at| at.vars().any(|x| x == v)));
            let incremented = drafts.iter().any(|d| d.update.increment_of(v) > 0);
            if guarded && !incremented {
                let start = (v.0 * 7) % drafts.len();
                let slot = (0..drafts.len())
                    .map(|i| (start + i) % drafts.len())
                    .find(|&i| drafts[i].update.is_empty());
                match slot {
                    Some(i) => drafts[i].update = Update::increment(v),
                    None => {
                        let i = v.0 % drafts.len();
                        drafts[i].update = drafts[i].update.clone().and_increment(v);
                    }
                }
            }
        }
        for (i, d) in drafts.iter().enumerate() {
            b.rule(
                &format!("r{i}"),
                d.from,
                d.to,
                d.guard.clone(),
                d.update.clone(),
            );
        }
        b.round_switch(e0, j0);
        b.round_switch(e1, j1);

        // the standard fair-coin automaton, publishing through every coin
        // variable (outcome 0 increments the even-indexed ones, outcome 1
        // the odd-indexed ones)
        let jc = b.coin_location("JC", LocClass::Border, None);
        let ic = b.coin_location("IC", LocClass::Initial, None);
        let h0 = b.coin_location("H0", LocClass::Intermediate, None);
        let h1 = b.coin_location("H1", LocClass::Intermediate, None);
        let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
        let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
        b.start_rule(jc, ic);
        b.coin_toss(
            "toss",
            ic,
            vec![(h0, Probability::HALF), (h1, Probability::HALF)],
            Guard::top(),
            Update::none(),
        );
        let mut publish0 = Update::increment(coins[0]);
        let mut publish1 = Update::increment(coins[1]);
        for (i, &cv) in coins.iter().enumerate().skip(2) {
            if i % 2 == 0 {
                publish0 = publish0.and_increment(cv);
            } else {
                publish1 = publish1.and_increment(cv);
            }
        }
        b.rule("publish0", h0, c0, Guard::top(), publish0);
        b.rule("publish1", h1, c1, Guard::top(), publish1);
        b.round_switch(c0, jc);
        b.round_switch(c1, jc);

        let model = b
            .build()
            .unwrap_or_else(|e| panic!("family seed {seed}: generated model must validate: {e:?}"));
        let single_round = model
            .single_round()
            .expect("generated models are multi-round");

        // smallest admissible valuation: n = a + 1, t = f = cc = 1
        let valuation = ParamValuation::new(vec![(a + 1) as u64, 1, 1, 1]);
        assert!(
            env.is_admissible(&valuation),
            "family seed {seed}: base valuation must be admissible"
        );
        // the guard-adjacent sweep grid exists where two t values are
        // admissible at one n without growing past a handful of processes:
        // n = 5 for a = 2 walks relax, identical and tighten steps
        let sweep = if a == 2 {
            let lo = ParamValuation::new(vec![5, 1, 1, 1]);
            let hi = ParamValuation::new(vec![5, 2, 1, 1]);
            vec![lo.clone(), hi.clone(), hi, lo]
        } else {
            vec![valuation.clone()]
        };

        let obligations = draw_obligations(&mut rng, &mid_names);
        GeneratedFamily {
            seed,
            params: p,
            faults,
            model,
            single_round,
            valuation,
            sweep,
            mids: mid_names,
            obligations,
        }
    }
}

/// A named set of locations of a generated family, given by location names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySet {
    /// The set's display name (e.g. `"T0"`).
    pub name: String,
    /// Names of the member locations.
    pub locations: Vec<String>,
}

/// Checker-neutral start restriction of a family obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyStart {
    /// All round-start configurations.
    RoundStart,
    /// Round starts in which every process holds the given value.
    Unanimous(BinValue),
    /// The initial configurations of the multi-round system.
    InitialLocations,
}

/// The temporal shape of a family obligation, mirroring the checker's query
/// catalogue in checker-neutral terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilyObligationKind {
    /// No location of `forbidden` is ever occupied.
    NeverFrom {
        /// The forbidden location set.
        forbidden: FamilySet,
    },
    /// Once `trigger` is occupied, `forbidden` is never occupied on the
    /// same path.
    CoverNever {
        /// The triggering location set.
        trigger: FamilySet,
        /// The forbidden location set.
        forbidden: FamilySet,
    },
    /// Under every adversary some resolution of the coin avoids at least
    /// one of the sets.
    ExistsAvoidOneOf {
        /// The family of sets, one of which must stay unoccupied.
        forbidden_sets: Vec<FamilySet>,
    },
    /// All fair executions of the single-round system terminate.
    NonBlocking,
}

/// One proof obligation of a generated family, in checker-neutral terms
/// (resolve with `ccchecker`'s `Spec::from_family`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyObligation {
    /// The obligation's name.
    pub name: String,
    /// Which configurations the query starts from.
    pub start: FamilyStart,
    /// The temporal shape and its tracked sets.
    pub kind: FamilyObligationKind,
}

/// A deterministically generated protocol family: the validated models, the
/// valuations to check them at, and the obligation catalogue.
#[derive(Debug, Clone)]
pub struct GeneratedFamily {
    /// The generation seed.
    pub seed: u64,
    /// The (clamped) parameter point the family was generated from.
    pub params: FamilyParams,
    /// The resolved fault model (never [`FaultModel::Mixed`]).
    pub faults: FaultModel,
    /// The multi-round system model.
    pub model: SystemModel,
    /// The single-round form `TA_rd` the checker runs on.
    pub single_round: SystemModel,
    /// The smallest admissible valuation of the family's environment.
    pub valuation: ParamValuation,
    /// A guard-adjacent sweep grid (relax / identical / tighten steps) when
    /// the resilience admits one; otherwise just the base valuation.
    pub sweep: Vec<ParamValuation>,
    /// Names of the intermediate locations, for building tracked sets.
    pub mids: Vec<String>,
    /// The obligation catalogue.
    pub obligations: Vec<FamilyObligation>,
}

/// Draws one tracked set of 1–2 locations over the finals and
/// intermediates.
fn draw_set(rng: &mut StdRng, mids: &[String], tag: usize) -> FamilySet {
    let mut pool: Vec<&str> = vec!["E0", "E1"];
    pool.extend(mids.iter().map(String::as_str));
    let size = rng.gen_range(1..=2usize.min(pool.len()));
    let mut names: Vec<&str> = Vec::new();
    while names.len() < size {
        let pick = pool[rng.gen_range(0..pool.len())];
        if !names.contains(&pick) {
            names.push(pick);
        }
    }
    FamilySet {
        name: format!("T{tag}"),
        locations: names.into_iter().map(String::from).collect(),
    }
}

/// The obligation catalogue over a generated family: one obligation per
/// query shape of the checker, over seeded tracked sets.
fn draw_obligations(rng: &mut StdRng, mids: &[String]) -> Vec<FamilyObligation> {
    let value = if rng.gen_bool(0.5) {
        BinValue::Zero
    } else {
        BinValue::One
    };
    vec![
        FamilyObligation {
            name: "never".into(),
            start: FamilyStart::Unanimous(value),
            kind: FamilyObligationKind::NeverFrom {
                forbidden: draw_set(rng, mids, 0),
            },
        },
        FamilyObligation {
            name: "cover".into(),
            start: FamilyStart::RoundStart,
            kind: FamilyObligationKind::CoverNever {
                trigger: draw_set(rng, mids, 1),
                forbidden: draw_set(rng, mids, 2),
            },
        },
        FamilyObligation {
            name: "avoid".into(),
            start: FamilyStart::RoundStart,
            kind: FamilyObligationKind::ExistsAvoidOneOf {
                forbidden_sets: vec![
                    FamilySet {
                        name: "F0".into(),
                        locations: vec!["E0".into()],
                    },
                    FamilySet {
                        name: "F1".into(),
                        locations: vec!["E1".into()],
                    },
                ],
            },
        },
        FamilyObligation {
            name: "nonblocking".into(),
            start: FamilyStart::RoundStart,
            kind: FamilyObligationKind::NonBlocking,
        },
    ]
}

// ---------------------------------------------------------------------
// Compatibility seed mode
// ---------------------------------------------------------------------

/// The compatibility seed mode: reproduces, draw for draw, the historical
/// private generator of the `random_differential` suite, so its seeded
/// corpus stays bit-identical now that the suite consumes this module.
///
/// The model RNG is seeded with `seed` and the obligation RNG with
/// `seed ^ 0x5EC5`, exactly as the suite always did.
pub fn differential_family(seed: u64) -> GeneratedFamily {
    let mut rng = StdRng::seed_from_u64(seed);
    let resilience = rng.gen_range(2..=3u64) as i64;
    let env = byzantine_common_coin_env(resilience);
    let k = env.num_params();
    let n = env.param_id("n").unwrap();
    let t = env.param_id("t").unwrap();
    let f = env.param_id("f").unwrap();
    let quorum = LinearExpr::param(k, n)
        .sub(&LinearExpr::param(k, t))
        .sub(&LinearExpr::param(k, f));

    let mut b = SystemBuilder::new(format!("random-{seed}"), env);
    let shared: Vec<VarId> = (0..rng.gen_range(1..=2usize))
        .map(|i| b.shared_var(&format!("v{i}")))
        .collect();
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");
    let coins = [cc0, cc1];

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let num_mids = rng.gen_range(1..=3usize);
    let mids: Vec<LocId> = (0..num_mids)
        .map(|i| b.process_location(&format!("S{i}"), LocClass::Intermediate, None))
        .collect();
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
    b.start_rule(j0, i0);
    b.start_rule(j1, i1);

    // random acyclic progress rules: a source of rank r only targets mids
    // of rank > r or a final location, so the intra-round graph is a DAG
    let legacy_guard = |rng: &mut StdRng| match rng.gen_range(0..6u32) {
        0 | 1 => Guard::top(),
        2 => Guard::ge(
            shared[rng.gen_range(0..shared.len())],
            LinearExpr::constant(k, rng.gen_range(1..=2u64) as i64),
        ),
        3 => Guard::ge(shared[rng.gen_range(0..shared.len())], quorum.clone()),
        _ => Guard::ge(
            coins[rng.gen_range(0..coins.len())],
            LinearExpr::constant(k, 1),
        ),
    };
    let legacy_update = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            Update::increment(shared[rng.gen_range(0..shared.len())])
        } else {
            Update::none()
        }
    };
    let mut rule_no = 0usize;
    let mut add_random_rules =
        |b: &mut SystemBuilder, from: LocId, rank: usize, rng: &mut StdRng| {
            let mut targets: Vec<LocId> = mids.iter().copied().skip(rank).collect();
            targets.push(e0);
            targets.push(e1);
            for _ in 0..rng.gen_range(1..=2usize) {
                let to = targets[rng.gen_range(0..targets.len())];
                let guard = legacy_guard(rng);
                let update = legacy_update(rng);
                b.rule(&format!("r{rule_no}"), from, to, guard, update);
                rule_no += 1;
            }
        };
    add_random_rules(&mut b, i0, 0, &mut rng);
    add_random_rules(&mut b, i1, 0, &mut rng);
    for (rank, &mid) in mids.iter().enumerate() {
        add_random_rules(&mut b, mid, rank + 1, &mut rng);
    }
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    // the standard fair-coin automaton publishing through cc0/cc1
    let jc = b.coin_location("JC", LocClass::Border, None);
    let ic = b.coin_location("IC", LocClass::Initial, None);
    let h0 = b.coin_location("H0", LocClass::Intermediate, None);
    let h1 = b.coin_location("H1", LocClass::Intermediate, None);
    let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
    let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
    b.start_rule(jc, ic);
    b.coin_toss(
        "toss",
        ic,
        vec![(h0, Probability::HALF), (h1, Probability::HALF)],
        Guard::top(),
        Update::none(),
    );
    b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
    b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
    b.round_switch(c0, jc);
    b.round_switch(c1, jc);

    let model = b
        .build()
        .unwrap_or_else(|e| panic!("seed {seed}: generated model must validate: {e:?}"));
    let single_round = model.single_round().unwrap();
    // the smallest admissible valuations of the two environments: 2 or 3
    // modelled correct processes plus the coin
    let valuation = if resilience == 2 {
        ParamValuation::new(vec![3, 1, 1, 1])
    } else {
        ParamValuation::new(vec![4, 1, 1, 1])
    };
    let sweep = if resilience == 2 {
        let lo = ParamValuation::new(vec![5, 1, 1, 1]);
        let hi = ParamValuation::new(vec![5, 2, 1, 1]);
        vec![lo.clone(), hi.clone(), hi, lo]
    } else {
        vec![valuation.clone()]
    };
    let mid_names: Vec<String> = (0..num_mids).map(|i| format!("S{i}")).collect();
    let obligations = differential_obligations(seed, &mid_names);
    GeneratedFamily {
        seed,
        params: FamilyParams {
            phases: num_mids,
            width: 1,
            fanout: 2,
            guard_density: 67,
            shared_vars: shared.len(),
            coin_vars: 2,
            faults: FaultModel::Byzantine,
            resilience,
        },
        faults: FaultModel::Byzantine,
        model,
        single_round,
        valuation,
        sweep,
        mids: mid_names,
        obligations,
    }
}

/// The compatibility obligation catalogue of [`differential_family`],
/// drawn from a fresh RNG seeded with `seed ^ 0x5EC5`.
pub fn differential_obligations(seed: u64, mids: &[String]) -> Vec<FamilyObligation> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC5);
    differential_obligations_with(&mut rng, mids)
}

/// [`differential_obligations`] drawing from a caller-provided RNG, for
/// suites that continue drawing from the same stream afterwards (the
/// interrupt-resume axis derives its state caps from it).
pub fn differential_obligations_with(rng: &mut StdRng, mids: &[String]) -> Vec<FamilyObligation> {
    draw_obligations(rng, mids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_are_byte_identical() {
        let params = FamilyParams::default();
        let a = params.instantiate(42);
        let b = params.instantiate(42);
        assert_eq!(format!("{:?}", a.model), format!("{:?}", b.model));
        assert_eq!(a.valuation, b.valuation);
        assert_eq!(a.sweep, b.sweep);
        assert_eq!(a.obligations, b.obligations);
    }

    #[test]
    fn distinct_parameter_points_generate_distinct_families() {
        let dense = FamilyParams {
            guard_density: 100,
            ..FamilyParams::default()
        };
        let sparse = FamilyParams {
            guard_density: 0,
            ..FamilyParams::default()
        };
        let a = dense.instantiate(7);
        let b = sparse.instantiate(7);
        assert_ne!(
            format!("{:?}", a.model.rules()),
            format!("{:?}", b.model.rules())
        );
        // a density-0 family carries no guarded progress rule at all
        assert!(b
            .model
            .rules()
            .iter()
            .filter(|r| r.name().starts_with('r'))
            .all(|r| r.guard().is_true()));
    }

    #[test]
    fn mixed_fault_model_resolves_both_ways() {
        let params = FamilyParams {
            faults: FaultModel::Mixed,
            ..FamilyParams::default()
        };
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16 {
            seen.insert(format!("{}", params.instantiate(seed).faults));
        }
        assert!(seen.contains("byz") && seen.contains("crash"), "{seen:?}");
    }

    #[test]
    fn compat_mode_reproduces_the_legacy_shape() {
        let fam = differential_family(0xD1F_F0000);
        assert!(fam.model.name().starts_with("random-"));
        assert!(!fam.mids.is_empty() && fam.mids.len() <= 3);
        assert_eq!(fam.obligations.len(), 4);
        let names: Vec<&str> = fam.obligations.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["never", "cover", "avoid", "nonblocking"]);
        // the obligation stream is independent of the model stream
        let again = differential_obligations(0xD1F_F0000, &fam.mids);
        assert_eq!(fam.obligations, again);
    }
}
