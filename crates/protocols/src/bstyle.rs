//! The one-communication-step category-(B) protocols: CC85(a), CC85(b) and
//! FMR05.
//!
//! All three follow the same per-round skeleton (broadcast the estimate, wait
//! for `n - t` messages, decide if the dominant value agrees with the common
//! coin, otherwise keep the dominant value or adopt the coin); they differ in
//! their resilience condition and in the "dominant value" threshold:
//!
//! * **CC85(a)** — Chor & Coan (1985), optimal resilience `n > 3t`, dominant
//!   value = strict majority of `n + t` (more than `(n+t)/2` messages).
//! * **CC85(b)** — Chor & Coan's adaptation of Rabin83, `n > 6t`, dominant
//!   value supported by at least `n - 2t` messages.
//! * **FMR05** — Friedman, Mostéfaoui & Raynal (2005), `n > 5t`, one
//!   communication step per round, dominant value supported by more than
//!   `(n + 3t)/2` messages.

use crate::common::{install_common_coin, Thresholds};
use crate::ProtocolModel;
use ccta::env::byzantine_common_coin_env;
use ccta::prelude::*;
use ccta::ProtocolCategory;

/// How the "dominant value" guard of a one-step protocol is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DominantThreshold {
    /// `2·v > n + t` (strict majority counting Byzantine padding).
    StrictMajority,
    /// `v >= n - 2t`.
    NMinus2T,
    /// `2·v > n + 3t`.
    ThreeQuarter,
}

impl DominantThreshold {
    fn guard(self, th: &Thresholds, var: VarId) -> Guard {
        match self {
            DominantThreshold::StrictMajority => {
                Guard::ge_scaled(2, var, th.strong_majority_scaled())
            }
            DominantThreshold::NMinus2T => Guard::ge(var, th.n_minus_2t_minus_f()),
            DominantThreshold::ThreeQuarter => {
                // 2·v >= n + 3t + 1 - 2f
                Guard::ge_scaled(2, var, th.combo(1, 3, -2, 1))
            }
        }
    }
}

/// Builds a one-step category-(B) model.
fn one_step_protocol(
    name: &str,
    resilience_factor: i64,
    dominant: DominantThreshold,
    description: &str,
) -> ProtocolModel {
    let env = byzantine_common_coin_env(resilience_factor);
    let th = Thresholds::new(&env);
    let mut b = SystemBuilder::new(name, env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let coin = install_common_coin(&mut b);

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let m0 = b.process_location("M0", LocClass::Intermediate, Some(BinValue::Zero));
    let m1 = b.process_location("M1", LocClass::Intermediate, Some(BinValue::One));
    let mbot = b.process_location("Mbot", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
    let d0 = b.decision_location("D0", BinValue::Zero);
    let d1 = b.decision_location("D1", BinValue::One);

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    b.rule("bcast0", i0, s, Guard::top(), Update::increment(v0));
    b.rule("bcast1", i1, s, Guard::top(), Update::increment(v1));
    // the dominant value is fixed
    b.rule("dom0", s, m0, dominant.guard(&th, v0), Update::none());
    b.rule("dom1", s, m1, dominant.guard(&th, v1), Update::none());
    // both values genuinely supported: no dominant value, adopt the coin
    b.rule(
        "mixed",
        s,
        mbot,
        Guard::ge(v0, th.t_plus_1_minus_f()).and_ge(v1, th.t_plus_1_minus_f()),
        Update::none(),
    );
    // coin agrees with the dominant value: decide it
    b.rule(
        "decide0",
        m0,
        d0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "decide1",
        m1,
        d1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    // coin disagrees: keep the dominant value as the next estimate
    b.rule(
        "keep0",
        m0,
        e0,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "keep1",
        m1,
        e1,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    // no dominant value: adopt the coin as the next estimate
    b.rule(
        "adopt0",
        mbot,
        e0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "adopt1",
        mbot,
        e1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);
    b.round_switch(d0, j0);
    b.round_switch(d1, j1);

    let model = b
        .build()
        .expect("one-step category-(B) model must validate");
    ProtocolModel::new(name, ProtocolCategory::B, model, None, description)
}

/// Chor–Coan randomized Byzantine consensus with optimal resilience (`n > 3t`).
pub fn cc85a() -> ProtocolModel {
    one_step_protocol(
        "CC85(a)",
        3,
        DominantThreshold::StrictMajority,
        "Chor & Coan, A simple and efficient randomized Byzantine agreement algorithm (1985); n > 3t",
    )
}

/// Chor–Coan's adaptation of Rabin83 with `t < n/6`.
pub fn cc85b() -> ProtocolModel {
    one_step_protocol(
        "CC85(b)",
        6,
        DominantThreshold::NMinus2T,
        "Chor & Coan's adaptation of Rabin83 (1985); t < n/6",
    )
}

/// Friedman–Mostéfaoui–Raynal oracle-based consensus with one communication
/// step per round and `t < n/5`.
pub fn fmr05() -> ProtocolModel {
    one_step_protocol(
        "FMR05",
        5,
        DominantThreshold::ThreeQuarter,
        "Friedman, Mostéfaoui & Raynal, Simple and efficient oracle-based consensus (2005); t < n/5",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_close_to_table_ii() {
        // Table II: CC85(a) 9/18, CC85(b) 10/17, FMR05 10/16
        for (p, rules) in [(cc85a(), 17), (cc85b(), 17), (fmr05(), 17)] {
            let stats = p.stats();
            assert_eq!(stats.process_locations, 12, "{}", p.name());
            assert_eq!(stats.process_rules, rules, "{}", p.name());
            assert_eq!(p.category(), ProtocolCategory::B);
            assert_eq!(p.model().decision_locations(None).len(), 2);
        }
    }

    #[test]
    fn resilience_conditions_differ() {
        assert!(cc85a()
            .model()
            .env()
            .is_admissible(&ParamValuation::new(vec![4, 1, 1, 1])));
        assert!(!cc85b()
            .model()
            .env()
            .is_admissible(&ParamValuation::new(vec![6, 1, 1, 1])));
        assert!(cc85b()
            .model()
            .env()
            .is_admissible(&ParamValuation::new(vec![7, 1, 1, 1])));
        assert!(!fmr05()
            .model()
            .env()
            .is_admissible(&ParamValuation::new(vec![5, 1, 1, 1])));
        assert!(fmr05()
            .model()
            .env()
            .is_admissible(&ParamValuation::new(vec![6, 1, 1, 1])));
    }

    #[test]
    fn dominant_thresholds_evaluate_correctly() {
        // CC85(a): strict majority of n + t; n=4, t=1, f=1 -> 2v >= 4, v >= 2
        let p = cc85a();
        let guard = p.model().rule(p.model().rule_id("dom0").unwrap()).guard();
        assert!(guard.holds(&[2, 0, 0, 0], &[4, 1, 1, 1]));
        assert!(!guard.holds(&[1, 0, 0, 0], &[4, 1, 1, 1]));

        // CC85(b): v >= n - 2t - f; n=7, t=1, f=1 -> v >= 4
        let p = cc85b();
        let guard = p.model().rule(p.model().rule_id("dom0").unwrap()).guard();
        assert!(guard.holds(&[4, 0, 0, 0], &[7, 1, 1, 1]));
        assert!(!guard.holds(&[3, 0, 0, 0], &[7, 1, 1, 1]));

        // FMR05: 2v >= n + 3t + 1 - 2f; n=6, t=1, f=1 -> 2v >= 8, v >= 4
        let p = fmr05();
        let guard = p.model().rule(p.model().rule_id("dom0").unwrap()).guard();
        assert!(guard.holds(&[4, 0, 0, 0], &[6, 1, 1, 1]));
        assert!(!guard.holds(&[3, 0, 0, 0], &[6, 1, 1, 1]));
    }

    #[test]
    fn decide_rules_are_coin_based() {
        let p = cc85a();
        let m = p.model();
        let decide0 = m.rule(m.rule_id("decide0").unwrap());
        assert!(decide0.is_coin_based(m.vars()));
        let dom0 = m.rule(m.rule_id("dom0").unwrap());
        assert!(!dom0.is_coin_based(m.vars()));
    }
}
