//! King–Saia style Byzantine agreement with a common coin (KS16), category (B).
//!
//! The benchmark entry builds on Bracha's reliable-broadcast agreement and
//! replaces the local coins by a common coin, keeping the optimal resilience
//! `n > 3t`.  The model has two message layers per round:
//!
//! 1. an **echo** layer (`e0`, `e1`): a process echoes its own estimate, and
//!    echoes the other value once it has seen `t + 1` echoes of it;
//! 2. a **vote** layer (`v0`, `v1`): a process votes for the first value it
//!    has seen `2t + 1` echoes of (at most one vote per process).
//!
//! A process that collects `n - t` votes for a single value proposes to
//! decide it if the common coin agrees; with mixed votes it adopts the coin.

use crate::common::{install_common_coin, Thresholds};
use crate::ProtocolModel;
use ccta::env::byzantine_common_coin_env;
use ccta::prelude::*;
use ccta::ProtocolCategory;

/// Builds the KS16 model.
pub fn ks16() -> ProtocolModel {
    let env = byzantine_common_coin_env(3);
    let th = Thresholds::new(&env);
    let mut b = SystemBuilder::new("KS16", env);
    let e0 = b.shared_var("e0");
    let e1 = b.shared_var("e1");
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let coin = install_common_coin(&mut b);

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s0 = b.process_location("S0", LocClass::Intermediate, Some(BinValue::Zero));
    let s1 = b.process_location("S1", LocClass::Intermediate, Some(BinValue::One));
    let s0b = b.process_location("S0b", LocClass::Intermediate, Some(BinValue::Zero));
    let s1b = b.process_location("S1b", LocClass::Intermediate, Some(BinValue::One));
    let vt0 = b.process_location("V0", LocClass::Intermediate, Some(BinValue::Zero));
    let vt1 = b.process_location("V1", LocClass::Intermediate, Some(BinValue::One));
    let m0 = b.process_location("M0", LocClass::Intermediate, Some(BinValue::Zero));
    let m1 = b.process_location("M1", LocClass::Intermediate, Some(BinValue::One));
    let mbot = b.process_location("Mbot", LocClass::Intermediate, None);
    let fe0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let fe1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
    let d0 = b.decision_location("D0", BinValue::Zero);
    let d1 = b.decision_location("D1", BinValue::One);

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    // echo the own estimate
    b.rule("echo0", i0, s0, Guard::top(), Update::increment(e0));
    b.rule("echo1", i1, s1, Guard::top(), Update::increment(e1));
    // echo amplification of the other value (the estimate is unchanged)
    b.rule(
        "amplify01",
        s0,
        s0b,
        Guard::ge(e1, th.t_plus_1_minus_f()),
        Update::increment(e1),
    );
    b.rule(
        "amplify10",
        s1,
        s1b,
        Guard::ge(e0, th.t_plus_1_minus_f()),
        Update::increment(e0),
    );
    // second broadcast phase: once n - t echoes have been received, the
    // process votes for its own estimate (at most one vote per process)
    for (name, from, var_update) in [
        ("vote0_from_s0", s0, v0),
        ("vote0_from_s0b", s0b, v0),
        ("vote1_from_s1", s1, v1),
        ("vote1_from_s1b", s1b, v1),
    ] {
        let target = if var_update == v0 { vt0 } else { vt1 };
        b.rule(
            name,
            from,
            target,
            Guard::sum_ge(&[e0, e1], th.n_minus_t_minus_f()),
            Update::increment(var_update),
        );
    }
    // collect n - t votes
    for (name, from) in [("collect0_a", vt0), ("collect0_b", vt1)] {
        b.rule(
            name,
            from,
            m0,
            Guard::ge(v0, th.n_minus_t_minus_f()),
            Update::none(),
        );
    }
    for (name, from) in [("collect1_a", vt0), ("collect1_b", vt1)] {
        b.rule(
            name,
            from,
            m1,
            Guard::ge(v1, th.n_minus_t_minus_f()),
            Update::none(),
        );
    }
    // mixed votes with genuine support for both values
    for (name, from) in [("mixed_a", vt0), ("mixed_b", vt1)] {
        b.rule(
            name,
            from,
            mbot,
            Guard::ge(v0, th.t_plus_1_minus_f())
                .and_ge(v1, th.t_plus_1_minus_f())
                .and_sum_ge(&[v0, v1], th.n_minus_t_minus_f()),
            Update::none(),
        );
    }
    // coin resolution
    b.rule(
        "decide0",
        m0,
        d0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "keep0",
        m0,
        fe0,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "decide1",
        m1,
        d1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "keep1",
        m1,
        fe1,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "adopt0",
        mbot,
        fe0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "adopt1",
        mbot,
        fe1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.round_switch(fe0, j0);
    b.round_switch(fe1, j1);
    b.round_switch(d0, j0);
    b.round_switch(d1, j1);

    let model = b.build().expect("KS16 model must validate");
    ProtocolModel::new(
        "KS16",
        ProtocolCategory::B,
        model,
        None,
        "King & Saia, Byzantine agreement in expected polynomial time (2016), Bracha-style echoes with a common coin; n > 3t",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_close_to_table_ii() {
        // Table II: |L| = 11, |R| = 26
        let p = ks16();
        let stats = p.stats();
        assert_eq!(stats.process_locations, 17);
        assert_eq!(stats.process_rules, 26);
        assert_eq!(stats.shared_vars, 4);
    }

    #[test]
    fn votes_follow_the_own_estimate_and_are_cast_at_most_once() {
        // every rule incrementing v0 (resp. v1) leaves an S-layer location
        // whose value tag is 0 (resp. 1) and enters the V-layer, which has no
        // rule back, so a process votes at most once and for its own estimate
        let p = ks16();
        let m = p.model();
        let v0 = m.var_id("v0").unwrap();
        let v1 = m.var_id("v1").unwrap();
        for rid in m.rule_ids() {
            let rule = m.rule(rid);
            let votes0 = rule.update().increment_of(v0);
            let votes1 = rule.update().increment_of(v1);
            if votes0 + votes1 > 0 {
                let dest = m.location(rule.dirac_to().unwrap()).name().to_string();
                assert!(dest == "V0" || dest == "V1", "{dest}");
                let src = m.location(rule.from());
                assert!(src.name().starts_with('S'), "{}", src.name());
                let expected_value = if votes0 > 0 {
                    ccta::BinValue::Zero
                } else {
                    ccta::BinValue::One
                };
                assert_eq!(src.value(), Some(expected_value));
            }
        }
    }

    #[test]
    fn echo_amplification_uses_t_plus_1() {
        let p = ks16();
        let m = p.model();
        let amp = m.rule(m.rule_id("amplify01").unwrap());
        // n=4, t=1, f=1: threshold 1
        assert!(amp.guard().holds(&[0, 1, 0, 0, 0, 0], &[4, 1, 1, 1]));
        assert!(!amp.guard().holds(&[0, 0, 0, 0, 0, 0], &[4, 1, 1, 1]));
    }

    #[test]
    fn vote_rules_wait_for_n_minus_t_echoes() {
        let p = ks16();
        let m = p.model();
        let vote = m.rule(m.rule_id("vote0_from_s0").unwrap());
        // n=4, t=1, f=1: e0 + e1 >= 2
        assert!(vote.guard().holds(&[1, 1, 0, 0, 0, 0], &[4, 1, 1, 1]));
        assert!(!vote.guard().holds(&[1, 0, 0, 0, 0, 0], &[4, 1, 1, 1]));
    }
}
