//! The two *fixed* category-(C) protocols: Miller18 and ABY22.
//!
//! Both repair the binding flaw of MMR14 (Sect. II of the paper).  The
//! original automata are not published, so the models below are
//! reconstructions whose `⊥`-output step carries strengthened support
//! guards (`≥ t + 1` correct votes for the bound value), which is what makes
//! the binding conditions `CB0`–`CB4` provable in counter-system semantics by
//! the vote-once / quorum-intersection argument; see `DESIGN.md` for the
//! substitution note.
//!
//! * **Miller18** — MMR14 with the fixed `⊥` step proposed in Miller's issue
//!   report and used by Dumbo; structurally it is the MMR14 automaton with
//!   the `values = {0, 1}` rule split into `N0`/`N1`/`N⊥` entries guarded by
//!   strong minority support.
//! * **ABY22** — binding crusader agreement of Abraham, Ben-David &
//!   Yandamuri (PODC 2022): an echo layer, a vote-once layer, crusader
//!   outputs with the binding guards, and the common-coin estimate update.
//!
//! The module also provides the ABY22 milestone variants of Table IV:
//! automata of identical size whose guards are progressively merged so that
//! the number of milestones drops by one per variant.

use crate::common::{install_common_coin, Thresholds};
use crate::mmr14::mmr14_base;
use crate::{CrusaderLocations, ProtocolModel};
use ccta::env::byzantine_common_coin_env;
use ccta::prelude::*;
use ccta::refine::{refine_rule_with_cases, RefinementCase};
use ccta::ProtocolCategory;

/// Builds Miller18: the MMR14 automaton with the binding fix applied to the
/// `values = {0, 1}` step.
pub fn miller18() -> ProtocolModel {
    let base = mmr14_base();
    let th = Thresholds::new(base.env());
    let r21 = base.rule_id("r21").expect("r21 exists");
    let a0 = base.var_id("a0").expect("a0 exists");
    let a1 = base.var_id("a1").expect("a1 exists");
    // The fixed protocol adopts ⊥ only with strong support for the value it
    // binds to: at least t+1 correct AUX messages.
    let cases = vec![
        RefinementCase::new("N0", Guard::ge(a0, th.t_plus_1())),
        RefinementCase::new("N1", Guard::ge(a1, th.t_plus_1())),
        RefinementCase::new(
            "Nbot",
            Guard::ge(a0, th.t_plus_1()).and_ge(a1, th.t_plus_1()),
        ),
    ];
    let (refined, locs) =
        refine_rule_with_cases(&base, r21, &cases).expect("Miller18 refinement must validate");
    let model = refined.renamed("Miller18");
    let crusader = CrusaderLocations {
        m0: vec!["M0".to_string()],
        m1: vec!["M1".to_string()],
        mbot: vec!["Mbot".to_string()],
        n0: vec![model.location(locs[0]).name().to_string()],
        n1: vec![model.location(locs[1]).name().to_string()],
        nbot: vec![model.location(locs[2]).name().to_string()],
    };
    ProtocolModel::new(
        "Miller18",
        ProtocolCategory::C,
        model,
        Some(crusader),
        "MMR14 with the binding fix discussed in Miller's issue report (2018), as deployed in HoneyBadger/Dumbo",
    )
}

/// Builds the ABY22 automaton with `merge_level` guard thresholds merged into
/// existing ones (0 = the benchmark protocol, 1–4 = the Table IV variants of
/// identical size but fewer milestones).
pub fn aby22_model(merge_level: usize) -> SystemModel {
    assert!(merge_level <= 4, "only variants 0..=4 exist");
    let env = byzantine_common_coin_env(3);
    let th = Thresholds::new(&env);
    let name = if merge_level == 0 {
        "ABY22".to_string()
    } else {
        format!("ABY22-{merge_level}")
    };
    let mut b = SystemBuilder::new(name, env);
    let e0 = b.shared_var("e0");
    let e1 = b.shared_var("e1");
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let coin = install_common_coin(&mut b);

    // thresholds subject to merging (each merge removes one distinct atom)
    let vote_trigger0 = if merge_level >= 1 {
        th.t_plus_1_minus_f()
    } else {
        th.two_t_plus_1_minus_f()
    };
    let vote_trigger1 = if merge_level >= 2 {
        th.t_plus_1_minus_f()
    } else {
        th.two_t_plus_1_minus_f()
    };
    let bind_support0 = if merge_level >= 3 {
        th.n_minus_t_minus_f()
    } else {
        th.t_plus_1()
    };
    let bind_support1 = if merge_level >= 4 {
        th.n_minus_t_minus_f()
    } else {
        th.t_plus_1()
    };

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s0 = b.process_location("S0", LocClass::Intermediate, Some(BinValue::Zero));
    let s1 = b.process_location("S1", LocClass::Intermediate, Some(BinValue::One));
    let s2 = b.process_location("S2", LocClass::Intermediate, None);
    let vt0 = b.process_location("V0", LocClass::Intermediate, Some(BinValue::Zero));
    let vt1 = b.process_location("V1", LocClass::Intermediate, Some(BinValue::One));
    let m0 = b.process_location("M0", LocClass::Intermediate, Some(BinValue::Zero));
    let m1 = b.process_location("M1", LocClass::Intermediate, Some(BinValue::One));
    let mbot = b.process_location("Mbot", LocClass::Intermediate, None);
    let n0 = b.process_location("N0", LocClass::Intermediate, Some(BinValue::Zero));
    let n1 = b.process_location("N1", LocClass::Intermediate, Some(BinValue::One));
    let nbot = b.process_location("Nbot", LocClass::Intermediate, None);
    let fe0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let fe1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
    let d0 = b.decision_location("D0", BinValue::Zero);
    let d1 = b.decision_location("D1", BinValue::One);

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    // echo layer (binary-value broadcast of the estimate)
    b.rule("echo0", i0, s0, Guard::top(), Update::increment(e0));
    b.rule("echo1", i1, s1, Guard::top(), Update::increment(e1));
    b.rule(
        "amplify01",
        s0,
        s2,
        Guard::ge(e1, th.t_plus_1_minus_f()),
        Update::increment(e1),
    );
    b.rule(
        "amplify10",
        s1,
        s2,
        Guard::ge(e0, th.t_plus_1_minus_f()),
        Update::increment(e0),
    );
    // vote-once layer: vote for the first delivered value
    b.rule(
        "vote0_s0",
        s0,
        vt0,
        Guard::ge(e0, vote_trigger0.clone()),
        Update::increment(v0),
    );
    b.rule(
        "vote1_s1",
        s1,
        vt1,
        Guard::ge(e1, vote_trigger1.clone()),
        Update::increment(v1),
    );
    b.rule(
        "vote0_s2",
        s2,
        vt0,
        Guard::ge(e0, vote_trigger0.clone()),
        Update::increment(v0),
    );
    b.rule(
        "vote1_s2",
        s2,
        vt1,
        Guard::ge(e1, vote_trigger1.clone()),
        Update::increment(v1),
    );
    // crusader outputs with binding guards
    for (name, from) in [("out0_a", vt0), ("out0_b", vt1)] {
        b.rule(
            name,
            from,
            m0,
            Guard::ge(v0, th.n_minus_t_minus_f()),
            Update::none(),
        );
    }
    for (name, from) in [("out1_a", vt0), ("out1_b", vt1)] {
        b.rule(
            name,
            from,
            m1,
            Guard::ge(v1, th.n_minus_t_minus_f()),
            Update::none(),
        );
    }
    // ⊥ with the bound value 0: strong support for 0, the value 1 delivered
    for (name, from) in [("bind0_a", vt0), ("bind0_b", vt1)] {
        b.rule(
            name,
            from,
            n0,
            Guard::sum_ge(&[v0, v1], th.n_minus_t_minus_f())
                .and_ge(v0, bind_support0.clone())
                .and_ge(e1, vote_trigger1.clone()),
            Update::none(),
        );
    }
    // ⊥ with the bound value 1
    for (name, from) in [("bind1_a", vt0), ("bind1_b", vt1)] {
        b.rule(
            name,
            from,
            n1,
            Guard::sum_ge(&[v0, v1], th.n_minus_t_minus_f())
                .and_ge(v1, bind_support1.clone())
                .and_ge(e0, vote_trigger0.clone()),
            Update::none(),
        );
    }
    // ⊥ with both values strongly supported: neither can win later
    for (name, from) in [("bindbot_a", vt0), ("bindbot_b", vt1)] {
        b.rule(
            name,
            from,
            nbot,
            Guard::ge(v0, bind_support0.clone()).and_ge(v1, bind_support1.clone()),
            Update::none(),
        );
    }
    b.rule("settle0", n0, mbot, Guard::top(), Update::none());
    b.rule("settle1", n1, mbot, Guard::top(), Update::none());
    b.rule("settlebot", nbot, mbot, Guard::top(), Update::none());
    // common-coin estimate update / decision
    b.rule(
        "decide0",
        m0,
        d0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "keep0",
        m0,
        fe0,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "decide1",
        m1,
        d1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "keep1",
        m1,
        fe1,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "adopt0",
        mbot,
        fe0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "adopt1",
        mbot,
        fe1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.round_switch(fe0, j0);
    b.round_switch(fe1, j1);
    b.round_switch(d0, j0);
    b.round_switch(d1, j1);

    b.build().expect("ABY22 model must validate")
}

/// Builds the ABY22 benchmark entry.
pub fn aby22() -> ProtocolModel {
    let model = aby22_model(0);
    let crusader = CrusaderLocations {
        m0: vec!["M0".to_string()],
        m1: vec!["M1".to_string()],
        mbot: vec!["Mbot".to_string()],
        n0: vec!["N0".to_string()],
        n1: vec!["N1".to_string()],
        nbot: vec!["Nbot".to_string()],
    };
    ProtocolModel::new(
        "ABY22",
        ProtocolCategory::C,
        model,
        Some(crusader),
        "Abraham, Ben-David & Yandamuri, Asynchronous binary agreement via binding crusader agreement (PODC 2022); n > 3t",
    )
}

/// The ABY22 milestone variants of Table IV: `ABY22`, `ABY22-1`, …,
/// `ABY22-4`, all of identical size but with one fewer milestone each.
pub fn aby22_variants() -> Vec<SystemModel> {
    (0..=4).map(aby22_model).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miller18_matches_table_ii_location_count() {
        let p = miller18();
        let stats = p.stats();
        // Table II: |L| = 22 for the authors' encoding
        assert_eq!(stats.process_locations, 22);
        assert_eq!(p.category(), ProtocolCategory::C);
        let c = p.crusader().unwrap();
        assert_eq!(c.n0, vec!["N0".to_string()]);
        assert!(p.model().rule_id("r21_N0").is_some());
        assert_eq!(p.model().name(), "Miller18");
    }

    #[test]
    fn miller18_binding_guard_requires_strong_support() {
        let p = miller18();
        let m = p.model();
        let rule = m.rule(m.rule_id("r21_N0").unwrap());
        // n = 4, t = 1, f = 1: needs a0 + a1 >= 2 and a0 >= t + 1 = 2
        let mut vars = vec![0u64; m.vars().len()];
        vars[m.var_id("a0").unwrap().0] = 1;
        vars[m.var_id("a1").unwrap().0] = 2;
        assert!(!rule.guard().holds(&vars, &[4, 1, 1, 1]));
        vars[m.var_id("a0").unwrap().0] = 2;
        assert!(rule.guard().holds(&vars, &[4, 1, 1, 1]));
    }

    #[test]
    fn aby22_sizes_match_across_variants() {
        let variants = aby22_variants();
        assert_eq!(variants.len(), 5);
        let base_stats = variants[0].stats();
        assert_eq!(base_stats.process_locations, 19);
        for v in &variants {
            let stats = v.stats();
            assert_eq!(stats.process_locations, base_stats.process_locations);
            assert_eq!(stats.process_rules, base_stats.process_rules);
        }
        assert_eq!(variants[1].name(), "ABY22-1");
        assert_eq!(variants[4].name(), "ABY22-4");
    }

    #[test]
    fn aby22_binding_and_validity_guards() {
        let p = aby22();
        let m = p.model();
        let bind0 = m.rule(m.rule_id("bind0_a").unwrap());
        // n = 4, t = 1, f = 1: v0 + v1 >= 2, v0 >= 2, e1 >= 2
        let mut vars = vec![0u64; m.vars().len()];
        let set = |vars: &mut Vec<u64>, name: &str, val: u64| {
            vars[m.var_id(name).unwrap().0] = val;
        };
        set(&mut vars, "v0", 2);
        set(&mut vars, "v1", 1);
        set(&mut vars, "e1", 2);
        assert!(bind0.guard().holds(&vars, &[4, 1, 1, 1]));
        // without the delivery of value 1 the rule stays locked (validity)
        set(&mut vars, "e1", 0);
        assert!(!bind0.guard().holds(&vars, &[4, 1, 1, 1]));
        // without strong support for 0 the rule stays locked (binding)
        set(&mut vars, "e1", 2);
        set(&mut vars, "v0", 1);
        assert!(!bind0.guard().holds(&vars, &[4, 1, 1, 1]));
    }

    #[test]
    fn aby22_vote_rules_vote_exactly_once() {
        let p = aby22();
        let m = p.model();
        let v0 = m.var_id("v0").unwrap();
        let v1 = m.var_id("v1").unwrap();
        for rid in m.rule_ids() {
            let rule = m.rule(rid);
            let votes = rule.update().increment_of(v0) + rule.update().increment_of(v1);
            if votes > 0 {
                assert_eq!(votes, 1);
                let dest = m.location(rule.dirac_to().unwrap()).name();
                assert!(dest == "V0" || dest == "V1");
            }
        }
    }
}
