//! Shared building blocks for the benchmark models.

use ccta::prelude::*;

/// The coin variables published by the common-coin automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinVars {
    /// Set to 1 when the coin lands 0.
    pub cc0: VarId,
    /// Set to 1 when the coin lands 1.
    pub cc1: VarId,
}

/// Declares the coin variables and installs the standard strong-coin
/// automaton of Fig. 4(b): `J2 → I2 → {H0, H1} (½ each) → C0/C1`, publishing
/// the outcome through `cc0` / `cc1`, with round-switch rules back to `J2`.
pub fn install_common_coin(b: &mut SystemBuilder) -> CoinVars {
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");
    let j2 = b.coin_location("J2", LocClass::Border, None);
    let i2 = b.coin_location("I2", LocClass::Initial, None);
    let h0 = b.coin_location("H0", LocClass::Intermediate, Some(BinValue::Zero));
    let h1 = b.coin_location("H1", LocClass::Intermediate, Some(BinValue::One));
    let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
    let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
    b.start_rule(j2, i2);
    b.coin_toss(
        "toss",
        i2,
        vec![(h0, Probability::HALF), (h1, Probability::HALF)],
        Guard::top(),
        Update::none(),
    );
    b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
    b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
    b.round_switch(c0, j2);
    b.round_switch(c1, j2);
    CoinVars { cc0, cc1 }
}

/// Frequently used threshold expressions over the standard Byzantine
/// environment (`n`, `t`, `f`, `cc`).
#[derive(Debug, Clone)]
pub struct Thresholds {
    num_params: usize,
    n: ParamId,
    t: ParamId,
    f: ParamId,
}

impl Thresholds {
    /// Builds the helper for an environment declaring `n`, `t`, `f`.
    ///
    /// # Panics
    ///
    /// Panics if the environment lacks one of the parameters.
    pub fn new(env: &Environment) -> Self {
        Thresholds {
            num_params: env.num_params(),
            n: env.param_id("n").expect("environment must declare n"),
            t: env.param_id("t").expect("environment must declare t"),
            f: env.param_id("f").expect("environment must declare f"),
        }
    }

    fn n_expr(&self) -> LinearExpr {
        LinearExpr::param(self.num_params, self.n)
    }

    fn t_expr(&self) -> LinearExpr {
        LinearExpr::param(self.num_params, self.t)
    }

    fn f_expr(&self) -> LinearExpr {
        LinearExpr::param(self.num_params, self.f)
    }

    /// The constant `c`.
    pub fn constant(&self, c: i64) -> LinearExpr {
        LinearExpr::constant(self.num_params, c)
    }

    /// `t + 1 - f`: the correct-sender threshold of "received `t + 1`
    /// messages".
    pub fn t_plus_1_minus_f(&self) -> LinearExpr {
        self.t_expr().plus_const(1).sub(&self.f_expr())
    }

    /// `2t + 1 - f`: the correct-sender threshold of "received `2t + 1`
    /// messages".
    pub fn two_t_plus_1_minus_f(&self) -> LinearExpr {
        self.t_expr().scale(2).plus_const(1).sub(&self.f_expr())
    }

    /// `n - t - f`: the correct-sender threshold of "received `n - t`
    /// messages".
    pub fn n_minus_t_minus_f(&self) -> LinearExpr {
        self.n_expr().sub(&self.t_expr()).sub(&self.f_expr())
    }

    /// `n - 2t - f`: the correct-sender threshold of "received `n - 2t`
    /// messages".
    pub fn n_minus_2t_minus_f(&self) -> LinearExpr {
        self.n_expr()
            .sub(&self.t_expr().scale(2))
            .sub(&self.f_expr())
    }

    /// `n + t + 1 - 2f`: the correct-sender threshold (scaled by 2) of
    /// "received more than `(n + t)/2` messages", i.e. the guard
    /// `2·x >= n + t + 1 - 2f`.
    pub fn strong_majority_scaled(&self) -> LinearExpr {
        self.n_expr()
            .add(&self.t_expr())
            .plus_const(1)
            .sub(&self.f_expr().scale(2))
    }

    /// `t + 1`: at least `t + 1` *correct* senders (used by the binding
    /// refinement of the fixed protocols).
    pub fn t_plus_1(&self) -> LinearExpr {
        self.t_expr().plus_const(1)
    }

    /// The general combination `n_c·n + t_c·t + f_c·f + c`.
    pub fn combo(&self, n_c: i64, t_c: i64, f_c: i64, c: i64) -> LinearExpr {
        self.n_expr()
            .scale(n_c)
            .add(&self.t_expr().scale(t_c))
            .add(&self.f_expr().scale(f_c))
            .plus_const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccta::env::byzantine_common_coin_env;

    #[test]
    fn thresholds_evaluate_as_expected() {
        let env = byzantine_common_coin_env(3);
        let th = Thresholds::new(&env);
        // n=7, t=2, f=1
        let p = [7u64, 2, 1, 1];
        assert_eq!(th.t_plus_1_minus_f().eval(&p), 2);
        assert_eq!(th.two_t_plus_1_minus_f().eval(&p), 4);
        assert_eq!(th.n_minus_t_minus_f().eval(&p), 4);
        assert_eq!(th.n_minus_2t_minus_f().eval(&p), 2);
        assert_eq!(th.strong_majority_scaled().eval(&p), 8);
        assert_eq!(th.t_plus_1().eval(&p), 3);
        assert_eq!(th.constant(5).eval(&p), 5);
        // n + 3t + 1 - 2f with n=7, t=2, f=1: 7 + 6 + 1 - 2 = 12
        assert_eq!(th.combo(1, 3, -2, 1).eval(&p), 12);
    }

    #[test]
    fn coin_installation_produces_a_valid_automaton() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("coin-only-plus-process", env);
        let coin = install_common_coin(&mut b);
        assert_ne!(coin.cc0, coin.cc1);
        // add a minimal process automaton so the model validates
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        b.rule(
            "adopt0",
            i0,
            e0,
            Guard::ge(coin.cc0, LinearExpr::constant(4, 1)),
            Update::none(),
        );
        b.round_switch(e0, j0);
        let m = b.build().unwrap();
        assert_eq!(m.locations_of(Owner::Coin).len(), 6);
        assert_eq!(m.rules_of(Owner::Coin).len(), 6);
        assert!(m.has_probabilistic_rules());
    }
}
