//! Threshold-automata models of the eight common-coin consensus protocols
//! verified in the paper (Sect. VI), plus the naive voting example of
//! Fig. 2/3 and the ABY22 milestone variants of Table IV.
//!
//! | Protocol | Category | Resilience | Module |
//! |---|---|---|---|
//! | Rabin83 | (A) | `n > 10t` | [`rabin83`] |
//! | CC85(a) | (B) | `n > 3t` | [`bstyle`] |
//! | CC85(b) | (B) | `n > 6t` | [`bstyle`] |
//! | FMR05 | (B) | `n > 5t` | [`bstyle`] |
//! | KS16 | (B) | `n > 3t` | [`ks16`] |
//! | MMR14 | (C) | `n > 3t` | [`mmr14`] |
//! | Miller18 | (C) | `n > 3t` | [`fixed`] |
//! | ABY22 | (C) | `n > 3t` | [`fixed`] |
//!
//! MMR14 is encoded verbatim from Fig. 4 / Table I of the paper.  The other
//! models are reconstructions from the cited protocol papers (the paper does
//! not publish their automata); see `DESIGN.md` for the substitution notes,
//! in particular for the binding mechanism of the fixed protocols Miller18
//! and ABY22.
//!
//! # Generated families & cross-check oracle
//!
//! Beyond the fixed catalogue, the [`family`] module generates whole
//! *protocol families* on demand: a [`family::FamilyParams`] point (phase
//! depth, locations per phase, branch fan-out, guard density, shared/coin
//! variable counts, crash-vs-Byzantine fault mix, resilience condition)
//! plus a seed deterministically expands into a validated threshold-automata
//! system, admissible valuations/sweep grids and a checker-neutral
//! obligation catalogue — identical inputs are byte-identical across runs.
//! Generated families feed three independent oracles: the optimized engine
//! vs. the preserved `reference` engine, counterexample replay over the
//! counter-system semantics, and `ccsim`'s process-level bridge
//! (`ccsim::bridge`), which executes the same automaton as individual
//! simulator processes under fair and adversarial schedules and must never
//! witness a violation the checker calls safe.

pub mod bstyle;
pub mod common;
pub mod family;
pub mod fixed;
pub mod ks16;
pub mod mmr14;
pub mod naive;
pub mod rabin83;

use ccta::{ModelStats, ProtocolCategory, SystemModel};

/// Names of the crusader-agreement locations of a category-(C) model,
/// needed to state the binding conditions `CB0`–`CB4` (Sect. V-B.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrusaderLocations {
    /// Locations where the crusader output is 0 (`M0`).
    pub m0: Vec<String>,
    /// Locations where the crusader output is 1 (`M1`).
    pub m1: Vec<String>,
    /// Locations where the crusader output is ⊥ (`M⊥`).
    pub mbot: Vec<String>,
    /// Refined locations entered with support for 0 before `M⊥` (`N0`).
    pub n0: Vec<String>,
    /// Refined locations entered with support for 1 before `M⊥` (`N1`).
    pub n1: Vec<String>,
    /// Refined locations entered with support for neither value (`N⊥`).
    pub nbot: Vec<String>,
}

/// A benchmark protocol: its category, its (multi-round) system model and the
/// metadata needed to generate its proof obligations.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolModel {
    name: String,
    category: ProtocolCategory,
    model: SystemModel,
    crusader: Option<CrusaderLocations>,
    description: String,
}

impl ProtocolModel {
    /// Wraps a model with its metadata.
    pub fn new(
        name: impl Into<String>,
        category: ProtocolCategory,
        model: SystemModel,
        crusader: Option<CrusaderLocations>,
        description: impl Into<String>,
    ) -> Self {
        ProtocolModel {
            name: name.into(),
            category,
            model,
            crusader,
            description: description.into(),
        }
    }

    /// The protocol name as used in Table II (e.g. `"MMR14"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protocol category (A), (B) or (C).
    pub fn category(&self) -> ProtocolCategory {
        self.category
    }

    /// The multi-round system model.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// Crusader-agreement location groups (category (C) only).
    pub fn crusader(&self) -> Option<&CrusaderLocations> {
        self.crusader.as_ref()
    }

    /// A one-line description with the source reference.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The single-round model `TA_rd` (Definition 3).
    pub fn single_round(&self) -> SystemModel {
        self.model
            .single_round()
            .expect("protocol models are multi-round")
    }

    /// Size statistics for the Table II columns `|L|` and `|R|`.
    pub fn stats(&self) -> ModelStats {
        self.model.stats()
    }
}

/// All eight benchmark protocols in the order of Table II.
pub fn all_protocols() -> Vec<ProtocolModel> {
    vec![
        rabin83::rabin83(),
        bstyle::cc85a(),
        bstyle::cc85b(),
        bstyle::fmr05(),
        ks16::ks16(),
        mmr14::mmr14(),
        fixed::miller18(),
        fixed::aby22(),
    ]
}

/// Looks up a benchmark protocol by its Table II name (case-insensitive).
pub fn protocol_by_name(name: &str) -> Option<ProtocolModel> {
    all_protocols()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_eight_benchmarks() {
        let protocols = all_protocols();
        assert_eq!(protocols.len(), 8);
        let names: Vec<&str> = protocols.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["Rabin83", "CC85(a)", "CC85(b)", "FMR05", "KS16", "MMR14", "Miller18", "ABY22"]
        );
    }

    #[test]
    fn categories_match_table_ii() {
        use ProtocolCategory::*;
        let expected = vec![A, B, B, B, B, C, C, C];
        let got: Vec<ProtocolCategory> = all_protocols().iter().map(|p| p.category()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn category_c_protocols_carry_crusader_metadata() {
        for p in all_protocols() {
            assert_eq!(
                p.crusader().is_some(),
                p.category() == ProtocolCategory::C,
                "{}",
                p.name()
            );
            if let Some(c) = p.crusader() {
                for name in
                    c.m0.iter()
                        .chain(&c.m1)
                        .chain(&c.mbot)
                        .chain(&c.n0)
                        .chain(&c.n1)
                        .chain(&c.nbot)
                {
                    assert!(
                        p.model().location_id(name).is_some(),
                        "{}: unknown crusader location {name}",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_model_validates_and_has_a_single_round_form() {
        for p in all_protocols() {
            p.model().validate().unwrap();
            let rd = p.single_round();
            assert_eq!(rd.kind(), ccta::ModelKind::SingleRound);
            assert!(!p.description().is_empty());
            assert!(p.stats().process_locations > 5);
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(protocol_by_name("mmr14").is_some());
        assert!(protocol_by_name("ABY22").is_some());
        assert!(protocol_by_name("nonexistent").is_none());
    }
}
