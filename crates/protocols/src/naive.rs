//! The naive voting protocol of Fig. 2 / Fig. 3 of the paper.
//!
//! Every correct process broadcasts its binary input and decides a value `d`
//! as soon as it has received `⌈(n+1)/2⌉` messages carrying `d`.  The model
//! is the running example of Sect. III-A; it is not part of the Table II
//! benchmark (it is not a common-coin protocol) but is used by the quickstart
//! example and the documentation.

use ccta::prelude::*;

/// Builds the threshold automaton of Fig. 3 (no common coin).
pub fn naive_voting() -> SystemModel {
    let mut env = EnvironmentBuilder::new();
    let n = env.param("n");
    let f = env.param("f");
    let k = 2usize;
    // n > 2f  /\  f >= 0
    env.require(LinearConstraint::gt(
        LinearExpr::param(k, n),
        LinearExpr::term(k, f, 2),
    ));
    env.require(LinearConstraint::ge(
        LinearExpr::param(k, f),
        LinearExpr::constant(k, 0),
    ));
    env.processes(LinearExpr::param(k, n).sub(&LinearExpr::param(k, f)));
    env.coins(LinearExpr::constant(k, 0));
    let env = env.build();

    let mut b = SystemBuilder::new("NaiveVoting", env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let d0 = b.decision_location("D0", BinValue::Zero);
    let d1 = b.decision_location("D1", BinValue::One);

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    // r1, r2 of Fig. 3: broadcast the input value
    b.rule("r1", i0, s, Guard::top(), Update::increment(v0));
    b.rule("r2", i1, s, Guard::top(), Update::increment(v1));
    // r3, r4: 2·(v_d + f) >= n + 1, i.e. 2·v_d >= n + 1 - 2f
    let majority = LinearExpr::param(k, n)
        .plus_const(1)
        .sub(&LinearExpr::term(k, f, 2));
    b.rule(
        "r3",
        s,
        d0,
        Guard::ge_scaled(2, v0, majority.clone()),
        Update::none(),
    );
    b.rule(
        "r4",
        s,
        d1,
        Guard::ge_scaled(2, v1, majority),
        Update::none(),
    );
    b.round_switch(d0, j0);
    b.round_switch(d1, j1);

    b.build().expect("naive voting model must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_figure_3_shape() {
        let m = naive_voting();
        // Fig. 3 shows I0, I1, S, D0, D1 plus the border locations
        assert_eq!(m.process_location_count(), 7);
        assert_eq!(m.decision_locations(None).len(), 2);
        assert_eq!(m.locations_of(Owner::Coin).len(), 0);
        assert_eq!(m.shared_vars().len(), 2);
        assert!(m.rule_id("r3").is_some());
    }

    #[test]
    fn majority_guard_requires_a_strict_majority() {
        let m = naive_voting();
        let r3 = m.rule_id("r3").unwrap();
        let guard = m.rule(r3).guard();
        // n = 3, f = 1: 2*v0 >= 2, i.e. one vote (from a correct process)
        // suffices only together with the Byzantine one
        assert!(guard.holds(&[1, 0], &[3, 1]));
        assert!(!guard.holds(&[0, 0], &[3, 1]));
        // n = 5, f = 0: needs three votes
        assert!(!guard.holds(&[2, 0], &[5, 0]));
        assert!(guard.holds(&[3, 0], &[5, 0]));
    }
}
