//! Rabin's randomized Byzantine consensus (Rabin83), category (A).
//!
//! Rabin's protocol [2] tolerates `t < n/10` Byzantine processes and uses a
//! dealer-provided common coin.  Following the paper's benchmark it is
//! modelled as a category-(A) protocol: the decide step is not part of the
//! automaton, only the per-round estimate update is, and almost-sure
//! termination is the property that all correct processes eventually share
//! the same estimate.
//!
//! Per round, every correct process broadcasts its estimate, waits for `n-t`
//! messages, keeps the value if it saw a strong majority (more than
//! `(n+t)/2` messages of that value) and otherwise adopts the common coin.

use crate::common::{install_common_coin, Thresholds};
use crate::ProtocolModel;
use ccta::env::byzantine_common_coin_env;
use ccta::prelude::*;
use ccta::ProtocolCategory;

/// Builds the Rabin83 model.
pub fn rabin83() -> ProtocolModel {
    let env = byzantine_common_coin_env(10);
    let th = Thresholds::new(&env);
    let mut b = SystemBuilder::new("Rabin83", env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let coin = install_common_coin(&mut b);

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let mbot = b.process_location("Mbot", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    // broadcast the current estimate
    b.rule("bcast0", i0, s, Guard::top(), Update::increment(v0));
    b.rule("bcast1", i1, s, Guard::top(), Update::increment(v1));
    // strong majority seen: keep the value
    b.rule(
        "keep0",
        s,
        e0,
        Guard::ge_scaled(2, v0, th.strong_majority_scaled()),
        Update::none(),
    );
    b.rule(
        "keep1",
        s,
        e1,
        Guard::ge_scaled(2, v1, th.strong_majority_scaled()),
        Update::none(),
    );
    // both values genuinely present among the received messages: the process
    // may have seen no strong majority and falls back to the coin
    b.rule(
        "mixed",
        s,
        mbot,
        Guard::ge(v0, th.t_plus_1_minus_f()).and_ge(v1, th.t_plus_1_minus_f()),
        Update::none(),
    );
    b.rule(
        "adopt_coin0",
        mbot,
        e0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "adopt_coin1",
        mbot,
        e1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    let model = b.build().expect("Rabin83 model must validate");
    ProtocolModel::new(
        "Rabin83",
        ProtocolCategory::A,
        model,
        None,
        "Rabin, Randomized Byzantine generals (FOCS 1983); dealer common coin, t < n/10",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_close_to_table_ii() {
        let p = rabin83();
        let stats = p.stats();
        // Table II reports |L| = 7, |R| = 17 for the authors' encoding; the
        // reconstruction differs slightly because the coin fallback is gated
        // by an explicit mixed-support location.
        assert_eq!(stats.process_locations, 8);
        assert_eq!(stats.process_rules, 11);
        assert_eq!(p.category(), ProtocolCategory::A);
        assert!(p.crusader().is_none());
    }

    #[test]
    fn resilience_requires_n_greater_than_10t() {
        let p = rabin83();
        let env = p.model().env();
        assert!(env.is_admissible(&ParamValuation::new(vec![11, 1, 1, 1])));
        assert!(!env.is_admissible(&ParamValuation::new(vec![10, 1, 1, 1])));
        assert!(env.is_admissible(&ParamValuation::new(vec![2, 0, 0, 1])));
    }

    #[test]
    fn no_decision_locations_in_category_a() {
        let p = rabin83();
        assert!(p.model().decision_locations(None).is_empty());
        assert_eq!(p.model().final_locations(Owner::Process, None).len(), 2);
    }

    #[test]
    fn mixed_rule_requires_support_for_both_values() {
        let p = rabin83();
        let m = p.model();
        let mixed = m.rule_id("mixed").unwrap();
        let guard = m.rule(mixed).guard();
        // n=11, t=1, f=1: thresholds t+1-f = 1
        assert!(guard.holds(&[1, 1, 0, 0], &[11, 1, 1, 1]));
        assert!(!guard.holds(&[5, 0, 0, 0], &[11, 1, 1, 1]));
    }
}
