//! The MMR14 protocol of Mostéfaoui, Moumen & Raynal (PODC 2014), category (C).
//!
//! This is the motivating protocol of Sect. II of the paper and the only
//! benchmark whose threshold automaton is published in full (Fig. 4 and
//! Table I); the encoding below follows that automaton:
//!
//! * `b0`, `b1` count the `EST` (BV-broadcast) messages of correct processes;
//! * `a0`, `a1` count their `AUX` messages;
//! * locations `S0`/`S1`/`S2` track which values a process has echoed,
//!   `B0`/`B1`/`B0'`/`B1'`/`B2` track which values have been BV-delivered
//!   (added to `bin_values`) and whether the `AUX` message has been sent;
//! * `M0`/`M1`/`Mbot` are the crusader outcomes `values = {0}`, `{1}`,
//!   `{0,1}`, from which the coin-based rules decide, keep the estimate or
//!   adopt the coin.
//!
//! The binding refinement of Fig. 6 (locations `N0`, `N1`, `N⊥` in front of
//! `Mbot`) is applied with the literal guards `a0 > 0` / `a1 > 0`, which is
//! exactly what makes the adaptive-adversary attack of Sect. II show up as a
//! counterexample to condition `CB2`.

use crate::common::{install_common_coin, Thresholds};
use crate::{CrusaderLocations, ProtocolModel};
use ccta::env::byzantine_common_coin_env;
use ccta::prelude::*;
use ccta::refine::refine_for_binding;
use ccta::ProtocolCategory;

/// Builds the (unrefined) MMR14 model of Fig. 4 / Table I.
pub fn mmr14_base() -> SystemModel {
    let env = byzantine_common_coin_env(3);
    let th = Thresholds::new(&env);
    let mut b = SystemBuilder::new("MMR14", env);
    let b0 = b.shared_var("b0");
    let b1 = b.shared_var("b1");
    let a0 = b.shared_var("a0");
    let a1 = b.shared_var("a1");
    let coin = install_common_coin(&mut b);

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    // echoed {0}, {1}, {0,1}; nothing delivered yet
    let s0 = b.process_location("S0", LocClass::Intermediate, Some(BinValue::Zero));
    let s1 = b.process_location("S1", LocClass::Intermediate, Some(BinValue::One));
    let s2 = b.process_location("S2", LocClass::Intermediate, None);
    // bin_values = {0} / {1} (AUX sent), primed: additionally echoed both
    let bb0 = b.process_location("B0", LocClass::Intermediate, Some(BinValue::Zero));
    let bb1 = b.process_location("B1", LocClass::Intermediate, Some(BinValue::One));
    let bb0p = b.process_location("B0p", LocClass::Intermediate, Some(BinValue::Zero));
    let bb1p = b.process_location("B1p", LocClass::Intermediate, Some(BinValue::One));
    // bin_values = {0, 1}
    let bb2 = b.process_location("B2", LocClass::Intermediate, None);
    // crusader outcomes: values = {0}, {1}, {0, 1}
    let m0 = b.process_location("M0", LocClass::Intermediate, Some(BinValue::Zero));
    let m1 = b.process_location("M1", LocClass::Intermediate, Some(BinValue::One));
    let mbot = b.process_location("Mbot", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
    let d0 = b.decision_location("D0", BinValue::Zero);
    let d1 = b.decision_location("D1", BinValue::One);

    // r1, r2: start the round
    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    // r3, r4: BV-broadcast the estimate
    b.rule("r3", i0, s0, Guard::top(), Update::increment(b0));
    b.rule("r4", i1, s1, Guard::top(), Update::increment(b1));
    // r5, r6: echo the other value after t+1 supporting EST messages
    b.rule(
        "r5",
        s0,
        s2,
        Guard::ge(b1, th.t_plus_1_minus_f()),
        Update::increment(b1),
    );
    b.rule(
        "r6",
        s1,
        s2,
        Guard::ge(b0, th.t_plus_1_minus_f()),
        Update::increment(b0),
    );
    // r7-r10: BV-deliver the first value (2t+1 EST messages) and send AUX
    b.rule(
        "r7",
        s0,
        bb0,
        Guard::ge(b0, th.two_t_plus_1_minus_f()),
        Update::increment(a0),
    );
    b.rule(
        "r8",
        s1,
        bb1,
        Guard::ge(b1, th.two_t_plus_1_minus_f()),
        Update::increment(a1),
    );
    b.rule(
        "r9",
        s2,
        bb0p,
        Guard::ge(b0, th.two_t_plus_1_minus_f()),
        Update::increment(a0),
    );
    b.rule(
        "r10",
        s2,
        bb1p,
        Guard::ge(b1, th.two_t_plus_1_minus_f()),
        Update::increment(a1),
    );
    // r11, r12: echo the other value after delivering the first one
    b.rule(
        "r11",
        bb0,
        bb0p,
        Guard::ge(b1, th.t_plus_1_minus_f()),
        Update::increment(b1),
    );
    b.rule(
        "r12",
        bb1,
        bb1p,
        Guard::ge(b0, th.t_plus_1_minus_f()),
        Update::increment(b0),
    );
    // r13, r14: BV-deliver the second value (no new AUX message)
    b.rule(
        "r13",
        bb0p,
        bb2,
        Guard::ge(b1, th.two_t_plus_1_minus_f()),
        Update::none(),
    );
    b.rule(
        "r14",
        bb1p,
        bb2,
        Guard::ge(b0, th.two_t_plus_1_minus_f()),
        Update::none(),
    );
    // r15-r17: n-t AUX messages all carrying 0 (values = {0})
    b.rule(
        "r15",
        bb0,
        m0,
        Guard::ge(a0, th.n_minus_t_minus_f()),
        Update::none(),
    );
    b.rule(
        "r16",
        bb0p,
        m0,
        Guard::ge(a0, th.n_minus_t_minus_f()),
        Update::none(),
    );
    b.rule(
        "r17",
        bb2,
        m0,
        Guard::ge(a0, th.n_minus_t_minus_f()),
        Update::none(),
    );
    // r18-r20: n-t AUX messages all carrying 1 (values = {1})
    b.rule(
        "r18",
        bb1,
        m1,
        Guard::ge(a1, th.n_minus_t_minus_f()),
        Update::none(),
    );
    b.rule(
        "r19",
        bb1p,
        m1,
        Guard::ge(a1, th.n_minus_t_minus_f()),
        Update::none(),
    );
    b.rule(
        "r20",
        bb2,
        m1,
        Guard::ge(a1, th.n_minus_t_minus_f()),
        Update::none(),
    );
    // r21: n-t AUX messages with both values present (values = {0, 1})
    b.rule(
        "r21",
        bb2,
        mbot,
        Guard::sum_ge(&[a0, a1], th.n_minus_t_minus_f()),
        Update::none(),
    );
    // r22-r27: coin-based rules
    b.rule(
        "r22",
        m0,
        d0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "r23",
        m0,
        e0,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "r24",
        m1,
        d1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "r25",
        m1,
        e1,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "r26",
        mbot,
        e0,
        Guard::ge(coin.cc0, th.constant(1)),
        Update::none(),
    );
    b.rule(
        "r27",
        mbot,
        e1,
        Guard::ge(coin.cc1, th.constant(1)),
        Update::none(),
    );
    // round-switch rules (dashed in Fig. 4)
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);
    b.round_switch(d0, j0);
    b.round_switch(d1, j1);

    b.build().expect("MMR14 model must validate")
}

/// Builds the MMR14 benchmark entry with the Fig. 6 binding refinement
/// applied to rule `r21`.
pub fn mmr14() -> ProtocolModel {
    let base = mmr14_base();
    let r21 = base.rule_id("r21").expect("r21 exists");
    let a0 = base.var_id("a0").expect("a0 exists");
    let a1 = base.var_id("a1").expect("a1 exists");
    let (refined, locs) =
        refine_for_binding(&base, r21, a0, a1).expect("MMR14 binding refinement must validate");
    let crusader = CrusaderLocations {
        m0: vec!["M0".to_string()],
        m1: vec!["M1".to_string()],
        mbot: vec!["Mbot".to_string()],
        n0: vec![refined.location(locs.n0).name().to_string()],
        n1: vec![refined.location(locs.n1).name().to_string()],
        nbot: vec![refined.location(locs.nbot).name().to_string()],
    };
    ProtocolModel::new(
        "MMR14",
        ProtocolCategory::C,
        refined,
        Some(crusader),
        "Mostéfaoui, Moumen & Raynal, Signature-free asynchronous Byzantine consensus (PODC 2014); subject to the adaptive-adversary attack of Sect. II",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_model_matches_figure_4() {
        let m = mmr14_base();
        let stats = m.stats();
        // Fig. 4(a): 19 process locations, 27 labelled rules + 4 round
        // switches (Table II reports |L| = 17, |R| = 29 for the authors'
        // encoding, which omits the border locations)
        assert_eq!(stats.process_locations, 19);
        assert_eq!(stats.process_rules, 31);
        assert_eq!(stats.shared_vars, 4);
        assert_eq!(stats.coin_vars, 2);
        assert_eq!(stats.coin_locations, 6);
        assert_eq!(m.decision_locations(None).len(), 2);
    }

    #[test]
    fn refined_model_adds_the_n_locations() {
        let p = mmr14();
        let stats = p.stats();
        assert_eq!(stats.process_locations, 22);
        let c = p.crusader().unwrap();
        assert_eq!(c.n0, vec!["N0".to_string()]);
        assert!(p.model().rule_id("r21").is_none());
        assert!(p.model().rule_id("r21_N0").is_some());
    }

    #[test]
    fn aux_messages_are_sent_at_most_once_per_process() {
        let m = mmr14_base();
        let a0 = m.var_id("a0").unwrap();
        let a1 = m.var_id("a1").unwrap();
        // rules incrementing a0/a1 leave the S-layer and enter the B-layer;
        // no rule of the B-layer increments them again
        for rid in m.rule_ids() {
            let rule = m.rule(rid);
            let incr = rule.update().increment_of(a0) + rule.update().increment_of(a1);
            if incr > 0 {
                let src = m.location(rule.from()).name().to_string();
                assert!(src.starts_with('S'), "{src}");
            }
        }
    }

    #[test]
    fn the_attack_scenario_unlocks_r21_and_r20_together() {
        // n = 4, t = 1, f = 1: thresholds t+1-f = 1, 2t+1-f = 2, n-t-f = 2.
        // With a0 = 1 and a1 = 2 both the values={0,1} rule (r21) and the
        // values={1} rule (r20) are unlocked, which is the root cause of the
        // CB2 violation.
        let m = mmr14_base();
        let params = [4u64, 1, 1, 1];
        let vars = {
            let mut v = vec![0u64; m.vars().len()];
            v[m.var_id("a0").unwrap().0] = 1;
            v[m.var_id("a1").unwrap().0] = 2;
            v
        };
        let r21 = m.rule(m.rule_id("r21").unwrap());
        let r20 = m.rule(m.rule_id("r20").unwrap());
        assert!(r21.guard().holds(&vars, &params));
        assert!(r20.guard().holds(&vars, &params));
    }

    #[test]
    fn unanimous_zero_never_unlocks_the_one_side() {
        let m = mmr14_base();
        let params = [4u64, 1, 1, 1];
        // with no correct process echoing 1, b1 = 0 and the echo rule for 1
        // (r5) as well as the delivery rules for 1 (r8/r10/r13) stay locked
        let vars = {
            let mut v = vec![0u64; m.vars().len()];
            v[m.var_id("b0").unwrap().0] = 3;
            v[m.var_id("a0").unwrap().0] = 3;
            v
        };
        for name in ["r5", "r8", "r10", "r13", "r18", "r19", "r20"] {
            let rule = m.rule(m.rule_id(name).unwrap());
            assert!(
                !rule.guard().holds(&vars, &params),
                "{name} should be locked"
            );
        }
        for name in ["r7", "r15", "r6"] {
            let rule = m.rule(m.rule_id(name).unwrap());
            assert!(
                rule.guard().holds(&vars, &params),
                "{name} should be unlocked"
            );
        }
    }
}
