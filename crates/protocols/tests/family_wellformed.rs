//! Well-formedness of the protocol-family generator: every emitted system
//! must be a valid threshold-automata model, instantiable as a counter
//! system at every generated valuation, with every threshold guard
//! attainable under the declared resilience condition — and generation
//! must be a pure function of `(params, seed)`.

use cccounter::CounterSystem;
use ccprotocols::family::{FamilyParams, FaultModel};
use ccta::{GuardRel, Owner};

/// A grid over the parameter space: fault models × structure shapes ×
/// guard densities × resilience factors.
fn grid() -> Vec<FamilyParams> {
    let mut points = Vec::new();
    for faults in [FaultModel::Byzantine, FaultModel::Crash, FaultModel::Mixed] {
        for (phases, width, fanout) in [(1, 1, 1), (2, 2, 2), (3, 1, 3), (2, 3, 2)] {
            for guard_density in [0, 50, 100] {
                for resilience in [2, 3] {
                    points.push(FamilyParams {
                        phases,
                        width,
                        fanout,
                        guard_density,
                        shared_vars: 1 + (phases % 3),
                        coin_vars: 2 + (width % 2),
                        faults,
                        resilience,
                    });
                }
            }
        }
    }
    points
}

const SEEDS: u64 = 5;

#[test]
fn every_generated_system_validates_and_instantiates() {
    for params in grid() {
        for seed in 0..SEEDS {
            let fam = params.instantiate(seed);
            let ctx = format!("{params:?} seed {seed}");
            fam.model
                .validate()
                .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
            fam.single_round
                .validate()
                .unwrap_or_else(|e| panic!("{ctx}: single-round: {e:?}"));
            assert_eq!(
                fam.single_round.kind(),
                ccta::ModelKind::SingleRound,
                "{ctx}"
            );
            // every generated valuation must build a counter system
            for v in std::iter::once(&fam.valuation).chain(&fam.sweep) {
                CounterSystem::new(fam.single_round.clone(), v.clone())
                    .unwrap_or_else(|e| panic!("{ctx}: valuation {v} must instantiate: {e:?}"));
            }
            // the obligation catalogue resolves: every referenced location
            // exists in both model forms
            for o in &fam.obligations {
                use ccprotocols::family::FamilyObligationKind as K;
                let sets: Vec<&ccprotocols::family::FamilySet> = match &o.kind {
                    K::NeverFrom { forbidden } => vec![forbidden],
                    K::CoverNever { trigger, forbidden } => vec![trigger, forbidden],
                    K::ExistsAvoidOneOf { forbidden_sets } => forbidden_sets.iter().collect(),
                    K::NonBlocking => vec![],
                };
                for set in sets {
                    for loc in &set.locations {
                        assert!(
                            fam.model.location_id(loc).is_some()
                                && fam.single_round.location_id(loc).is_some(),
                            "{ctx}: obligation {} references unknown location {loc}",
                            o.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_threshold_guard_is_attainable_at_the_base_valuation() {
    // Capacity invariant: for every `x >= bound` guard on a process rule,
    // the bound at the base valuation must not exceed what the modelled
    // population can pump into `x` — the sum over incrementing rules of
    // increment × copies of the incrementing automaton.  The generator's
    // post-pass guarantees an increment site for every guarded shared
    // variable; this pins the arithmetic under both fault models.
    for params in grid() {
        for seed in 0..SEEDS {
            let fam = params.instantiate(seed);
            let ctx = format!("{params:?} seed {seed}");
            let model = &fam.model;
            let env = model.env();
            let size = env
                .system_size(&fam.valuation)
                .unwrap_or_else(|| panic!("{ctx}: base valuation must be admissible"));
            for rule in model.rules() {
                for atom in rule.guard().atoms() {
                    if atom.rel() != GuardRel::Ge {
                        continue;
                    }
                    let bound = atom.bound().eval(fam.valuation.values());
                    for var in atom.vars() {
                        let attainable: i128 = model
                            .rules()
                            .iter()
                            .map(|r| {
                                let copies = match r.owner() {
                                    Owner::Process => size.processes,
                                    Owner::Coin => size.coins,
                                };
                                (r.update().increment_of(var) * copies) as i128
                            })
                            .sum();
                        assert!(
                            bound <= attainable,
                            "{ctx}: guard of {} needs {bound} in var {var:?} but the \
                             population can only reach {attainable}",
                            rule.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn identical_seeds_are_byte_identical_across_runs() {
    for params in grid().into_iter().step_by(7) {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let a = params.instantiate(seed);
            let b = params.instantiate(seed);
            assert_eq!(
                format!("{:?}", a.model),
                format!("{:?}", b.model),
                "{params:?} seed {seed}: models differ"
            );
            assert_eq!(a.valuation, b.valuation);
            assert_eq!(a.sweep, b.sweep);
            assert_eq!(a.mids, b.mids);
            assert_eq!(a.obligations, b.obligations);
            assert_eq!(a.faults, b.faults);
        }
    }
}

#[test]
fn out_of_range_parameters_are_clamped_not_rejected() {
    let wild = FamilyParams {
        phases: 99,
        width: 0,
        fanout: 77,
        guard_density: 255,
        shared_vars: 0,
        coin_vars: 0,
        faults: FaultModel::Byzantine,
        resilience: -5,
    };
    let fam = wild.instantiate(3);
    fam.model
        .validate()
        .expect("clamped params must generate a valid model");
    assert_eq!(fam.params, wild.clamped());
    assert!(fam.params.phases <= 4 && fam.params.width >= 1);
    assert!(fam.params.coin_vars >= 2 && fam.params.resilience >= 2);
    CounterSystem::new(fam.single_round, fam.valuation).expect("instantiable");
}

#[test]
fn fault_models_select_their_environments() {
    let byz = FamilyParams {
        faults: FaultModel::Byzantine,
        ..FamilyParams::default()
    }
    .instantiate(11);
    let crash = FamilyParams {
        faults: FaultModel::Crash,
        ..FamilyParams::default()
    }
    .instantiate(11);
    // Byzantine: n - f modelled processes; crash-stop: all n modelled
    let b = byz.model.env().system_size(&byz.valuation).unwrap();
    let c = crash.model.env().system_size(&crash.valuation).unwrap();
    assert_eq!(
        b.processes + 1,
        c.processes,
        "crash must model the faulty process too"
    );
    assert_eq!(b.coins, 1);
    assert_eq!(c.coins, 1);
}
