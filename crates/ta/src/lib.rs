//! Threshold automata and probabilistic threshold automata extended with
//! common coins.
//!
//! This crate implements the modelling formalism of *"Verifying Randomized
//! Consensus Protocols with Common Coins"* (DSN 2024):
//!
//! * [`Environment`] — parameters, resilience conditions and the function `N`
//!   mapping admissible parameter valuations to the number of modelled
//!   processes and common coins (Sect. III-B(a) of the paper).
//! * [`SystemModel`] — a combined model holding the (non-probabilistic)
//!   threshold automaton for correct processes *and* the probabilistic
//!   threshold automaton for the common coin.  Both automata share the same
//!   variable alphabet and have disjoint location sets (Sect. III-B(b,c)).
//! * [`SystemModel::to_nonprobabilistic`] — Definition 1: probabilistic
//!   branching replaced by non-determinism.
//! * [`SystemModel::single_round`] — Definition 3: the single-round automaton
//!   `TA_rd` with border-location copies and redirected round-switch rules.
//! * [`refine::refine_for_binding`] — the Fig. 6 refinement that introduces
//!   the `N0/N1/N⊥` locations needed to express the binding hyperproperty.
//!
//! # Example
//!
//! The naive voting protocol of Fig. 2/3 of the paper:
//!
//! ```
//! use ccta::prelude::*;
//!
//! # fn main() -> Result<(), ModelError> {
//! let mut env = EnvironmentBuilder::new();
//! let n = env.param("n");
//! let f = env.param("f");
//! // resilience: n > 2f  and  f >= 0
//! env.require(LinearConstraint::gt(
//!     LinearExpr::param(2, n),
//!     LinearExpr::term(2, f, 2),
//! ));
//! env.processes(LinearExpr::param(2, n).sub(&LinearExpr::param(2, f)));
//! env.coins(LinearExpr::constant(2, 0));
//! let env = env.build();
//!
//! let mut b = SystemBuilder::new("naive-voting", env);
//! let v0 = b.shared_var("v0");
//! let v1 = b.shared_var("v1");
//! let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
//! let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
//! let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
//! let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
//! let s = b.process_location("S", LocClass::Intermediate, None);
//! let d0 = b.decision_location("D0", BinValue::Zero);
//! let d1 = b.decision_location("D1", BinValue::One);
//!
//! b.start_rule(j0, i0);
//! b.start_rule(j1, i1);
//! b.rule("r1", i0, s, Guard::top(), Update::increment(v0));
//! b.rule("r2", i1, s, Guard::top(), Update::increment(v1));
//! // 2 * (v0 + f) >= n + 1, rearranged to 2*v0 >= n + 1 - 2f
//! let bound0 = LinearExpr::param(2, n)
//!     .sub(&LinearExpr::term(2, f, 2))
//!     .add(&LinearExpr::constant(2, 1));
//! b.rule("r3", s, d0, Guard::ge_scaled(2, v0, bound0.clone()), Update::none());
//! b.rule("r4", s, d1, Guard::ge_scaled(2, v1, bound0), Update::none());
//! b.round_switch(d0, j0);
//! b.round_switch(d1, j1);
//!
//! let model = b.build()?;
//! assert_eq!(model.process_location_count(), 7);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod category;
pub mod dot;
pub mod env;
pub mod error;
pub mod expr;
pub mod guard;
pub mod location;
pub mod refine;
pub mod rule;
pub mod system;
pub mod variable;

pub use builder::SystemBuilder;
pub use category::ProtocolCategory;
pub use env::{Environment, EnvironmentBuilder, ParamValuation, SystemSize};
pub use error::ModelError;
pub use expr::{LinearConstraint, LinearExpr, ParamId, Rel};
pub use guard::{AtomicGuard, Guard, GuardKind, GuardRel};
pub use location::{BinValue, LocClass, LocId, Location, Owner};
pub use rule::{Branch, Probability, Rule, RuleId, Update};
pub use system::{ModelKind, ModelStats, SystemModel};
pub use variable::{VarId, VarKind, Variable};

/// Convenience re-exports for building models.
pub mod prelude {
    pub use crate::builder::SystemBuilder;
    pub use crate::category::ProtocolCategory;
    pub use crate::env::{Environment, EnvironmentBuilder, ParamValuation, SystemSize};
    pub use crate::error::ModelError;
    pub use crate::expr::{LinearConstraint, LinearExpr, ParamId, Rel};
    pub use crate::guard::{AtomicGuard, Guard, GuardKind, GuardRel};
    pub use crate::location::{BinValue, LocClass, LocId, Location, Owner};
    pub use crate::rule::{Branch, Probability, Rule, RuleId, Update};
    pub use crate::system::{ModelKind, ModelStats, SystemModel};
    pub use crate::variable::{VarId, VarKind, Variable};
}
