//! Model validation errors.

use std::error::Error;
use std::fmt;

/// Errors raised when a system model violates the structural restrictions of
/// threshold automata extended with common coins (Sect. III-B of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A process-automaton rule has more than one probabilistic branch.
    ProcessRuleNotDirac { rule: String },
    /// A rule guard mixes shared-variable and coin-variable atoms.
    MixedGuard { rule: String },
    /// A correct-process rule updates a coin variable.
    ProcessUpdatesCoinVariable { rule: String },
    /// A coin-automaton rule updates a shared variable.
    CoinUpdatesSharedVariable { rule: String },
    /// A coin-automaton rule has a coin guard (coin rules may only carry
    /// simple guards).
    CoinRuleWithCoinGuard { rule: String },
    /// The probabilities of a rule's branches do not sum to 1.
    ProbabilitiesDoNotSumToOne { rule: String },
    /// A rule on a cycle carries a non-zero update (the automaton is not
    /// canonical).
    NotCanonical { rule: String },
    /// The number of border locations does not match the number of initial
    /// locations.
    BorderInitialMismatch { owner: String },
    /// A border location has an outgoing rule that is not of the form
    /// `(border, initial, true, 0)`.
    BadBorderRule { rule: String },
    /// A final location has an outgoing non-round-switch rule, or more than
    /// one outgoing rule.
    BadFinalLocation { location: String },
    /// A round-switch rule does not go from a final location to a border
    /// location.
    BadRoundSwitchRule { rule: String },
    /// A rule connecting border/initial or final/border locations does not
    /// respect the binary-value partition.
    PartitionViolation { rule: String },
    /// A decision location is not a final location.
    DecisionNotFinal { location: String },
    /// A rule references a location owned by the other automaton.
    CrossAutomatonRule { rule: String },
    /// The model declares no location of a required class.
    MissingLocations { detail: String },
    /// A name was used twice.
    DuplicateName { name: String },
    /// A referenced entity does not exist.
    UnknownEntity { name: String },
    /// The operation only applies to multi-round models.
    NotMultiRound,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ProcessRuleNotDirac { rule } => {
                write!(f, "process rule {rule} is not a Dirac rule")
            }
            ModelError::MixedGuard { rule } => {
                write!(f, "rule {rule} mixes shared and coin guards")
            }
            ModelError::ProcessUpdatesCoinVariable { rule } => {
                write!(f, "process rule {rule} updates a coin variable")
            }
            ModelError::CoinUpdatesSharedVariable { rule } => {
                write!(f, "coin rule {rule} updates a shared variable")
            }
            ModelError::CoinRuleWithCoinGuard { rule } => {
                write!(f, "coin rule {rule} carries a coin guard")
            }
            ModelError::ProbabilitiesDoNotSumToOne { rule } => {
                write!(f, "probabilities of rule {rule} do not sum to one")
            }
            ModelError::NotCanonical { rule } => {
                write!(f, "rule {rule} lies on a cycle but has a non-zero update")
            }
            ModelError::BorderInitialMismatch { owner } => {
                write!(f, "{owner} automaton has |B| != |I|")
            }
            ModelError::BadBorderRule { rule } => {
                write!(
                    f,
                    "border rule {rule} is not of the form (border, initial, true, 0)"
                )
            }
            ModelError::BadFinalLocation { location } => {
                write!(
                    f,
                    "final location {location} must have exactly one outgoing round-switch rule"
                )
            }
            ModelError::BadRoundSwitchRule { rule } => {
                write!(
                    f,
                    "round-switch rule {rule} must go from a final to a border location"
                )
            }
            ModelError::PartitionViolation { rule } => {
                write!(f, "rule {rule} does not respect the binary-value partition")
            }
            ModelError::DecisionNotFinal { location } => {
                write!(f, "decision location {location} is not a final location")
            }
            ModelError::CrossAutomatonRule { rule } => {
                write!(f, "rule {rule} connects locations of different automata")
            }
            ModelError::MissingLocations { detail } => {
                write!(f, "missing locations: {detail}")
            }
            ModelError::DuplicateName { name } => write!(f, "duplicate name {name:?}"),
            ModelError::UnknownEntity { name } => write!(f, "unknown entity {name:?}"),
            ModelError::NotMultiRound => {
                write!(f, "operation requires a multi-round model")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errors = vec![
            ModelError::ProcessRuleNotDirac {
                rule: "r1".to_string(),
            },
            ModelError::MixedGuard {
                rule: "r2".to_string(),
            },
            ModelError::NotCanonical {
                rule: "r3".to_string(),
            },
            ModelError::BorderInitialMismatch {
                owner: "process".to_string(),
            },
            ModelError::DuplicateName {
                name: "D0".to_string(),
            },
            ModelError::NotMultiRound,
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(ModelError::NotMultiRound);
    }
}
