//! Shared variables and coin variables.
//!
//! The variable set `V` of a model is partitioned into shared variables `Γ`
//! (message counters incremented by correct processes) and coin variables `Ω`
//! (written only by the common-coin automaton, read by correct processes via
//! coin guards).

use std::fmt;

/// Index of a variable inside a [`crate::SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Whether a variable belongs to the shared set `Γ` or the coin set `Ω`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A shared message counter, incremented by correct-process rules.
    Shared,
    /// A coin variable, incremented by the common-coin automaton and tested
    /// by coin guards of correct processes.
    Coin,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarKind::Shared => f.write_str("shared"),
            VarKind::Coin => f.write_str("coin"),
        }
    }
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Variable {
    name: String,
    kind: VarKind,
}

impl Variable {
    /// Creates a new variable declaration.
    pub fn new(name: impl Into<String>, kind: VarKind) -> Self {
        Variable {
            name: name.into(),
            kind,
        }
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared or coin.
    pub fn kind(&self) -> VarKind {
        self.kind
    }

    /// Whether this is a coin variable.
    pub fn is_coin(&self) -> bool {
        self.kind == VarKind::Coin
    }

    /// Whether this is a shared variable.
    pub fn is_shared(&self) -> bool {
        self.kind == VarKind::Shared
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_kind_predicates() {
        let s = Variable::new("a0", VarKind::Shared);
        let c = Variable::new("cc0", VarKind::Coin);
        assert!(s.is_shared());
        assert!(!s.is_coin());
        assert!(c.is_coin());
        assert!(!c.is_shared());
        assert_eq!(s.name(), "a0");
        assert_eq!(c.kind(), VarKind::Coin);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Variable::new("a0", VarKind::Shared);
        assert_eq!(format!("{s}"), "a0 (shared)");
        assert_eq!(format!("{}", VarId(3)), "x3");
    }
}
