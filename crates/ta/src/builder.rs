//! Ergonomic construction of [`SystemModel`]s.

use crate::env::Environment;
use crate::error::ModelError;
use crate::guard::Guard;
use crate::location::{BinValue, LocClass, LocId, Location, Owner};
use crate::rule::{Branch, Probability, Rule, RuleId, Update};
use crate::system::{ModelKind, SystemModel};
use crate::variable::{VarId, VarKind, Variable};

/// Builder for a combined process + common-coin model.
///
/// Declaration methods panic on duplicate names (a programming error);
/// structural problems are reported by [`SystemBuilder::build`].
#[derive(Debug)]
pub struct SystemBuilder {
    name: String,
    env: Environment,
    vars: Vec<Variable>,
    locations: Vec<Location>,
    rules: Vec<Rule>,
    auto_rule_counter: usize,
}

impl SystemBuilder {
    /// Creates a builder for a model with the given name and environment.
    pub fn new(name: impl Into<String>, env: Environment) -> Self {
        SystemBuilder {
            name: name.into(),
            env,
            vars: Vec::new(),
            locations: Vec::new(),
            rules: Vec::new(),
            auto_rule_counter: 0,
        }
    }

    /// The environment the model is being built for.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    fn check_new_var(&self, name: &str) {
        assert!(
            !self.vars.iter().any(|v| v.name() == name),
            "duplicate variable name {name:?}"
        );
    }

    fn check_new_loc(&self, name: &str) {
        assert!(
            !self.locations.iter().any(|l| l.name() == name),
            "duplicate location name {name:?}"
        );
    }

    /// Declares a shared variable.
    pub fn shared_var(&mut self, name: &str) -> VarId {
        self.check_new_var(name);
        self.vars.push(Variable::new(name, VarKind::Shared));
        VarId(self.vars.len() - 1)
    }

    /// Declares a coin variable.
    pub fn coin_var(&mut self, name: &str) -> VarId {
        self.check_new_var(name);
        self.vars.push(Variable::new(name, VarKind::Coin));
        VarId(self.vars.len() - 1)
    }

    /// Declares a location of the correct-process automaton.
    pub fn process_location(
        &mut self,
        name: &str,
        class: LocClass,
        value: Option<BinValue>,
    ) -> LocId {
        self.check_new_loc(name);
        self.locations
            .push(Location::new(name, class, value, false, Owner::Process));
        LocId(self.locations.len() - 1)
    }

    /// Declares a decision location (a final location marked accepting).
    pub fn decision_location(&mut self, name: &str, value: BinValue) -> LocId {
        self.check_new_loc(name);
        self.locations.push(Location::new(
            name,
            LocClass::Final,
            Some(value),
            true,
            Owner::Process,
        ));
        LocId(self.locations.len() - 1)
    }

    /// Declares a location of the common-coin automaton.
    pub fn coin_location(&mut self, name: &str, class: LocClass, value: Option<BinValue>) -> LocId {
        self.check_new_loc(name);
        self.locations
            .push(Location::new(name, class, value, false, Owner::Coin));
        LocId(self.locations.len() - 1)
    }

    fn owner_of(&self, loc: LocId) -> Owner {
        self.locations[loc.0].owner()
    }

    fn auto_name(&mut self, prefix: &str) -> String {
        self.auto_rule_counter += 1;
        format!("{prefix}{}", self.auto_rule_counter)
    }

    /// Adds a Dirac rule; the owning automaton is inferred from the source
    /// location.
    pub fn rule(
        &mut self,
        name: &str,
        from: LocId,
        to: LocId,
        guard: Guard,
        update: Update,
    ) -> RuleId {
        let owner = self.owner_of(from);
        self.rules
            .push(Rule::dirac(name, from, to, guard, update, owner));
        RuleId(self.rules.len() - 1)
    }

    /// Adds the rule `(border, initial, true, 0)` that starts a round.
    pub fn start_rule(&mut self, from: LocId, to: LocId) -> RuleId {
        let owner = self.owner_of(from);
        let name = self.auto_name("start_");
        self.rules.push(Rule::dirac(
            name,
            from,
            to,
            Guard::top(),
            Update::none(),
            owner,
        ));
        RuleId(self.rules.len() - 1)
    }

    /// Adds a round-switch rule `(final, border, true, 0)`.
    pub fn round_switch(&mut self, from: LocId, to: LocId) -> RuleId {
        let owner = self.owner_of(from);
        let name = self.auto_name("switch_");
        self.rules.push(Rule::round_switch(name, from, to, owner));
        RuleId(self.rules.len() - 1)
    }

    /// Adds a probabilistic rule of the common-coin automaton.
    pub fn coin_toss(
        &mut self,
        name: &str,
        from: LocId,
        branches: Vec<(LocId, Probability)>,
        guard: Guard,
        update: Update,
    ) -> RuleId {
        let owner = self.owner_of(from);
        let branches = branches
            .into_iter()
            .map(|(to, prob)| Branch::new(to, prob))
            .collect();
        self.rules.push(Rule::probabilistic(
            name, from, branches, guard, update, owner,
        ));
        RuleId(self.rules.len() - 1)
    }

    /// Number of rules added so far (useful for asserting model sizes).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of locations added so far.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// Finishes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when the assembled model violates the
    /// structural restrictions of threshold automata with common coins.
    pub fn build(self) -> Result<SystemModel, ModelError> {
        SystemModel::new(
            self.name,
            self.env,
            self.vars,
            self.locations,
            self.rules,
            ModelKind::MultiRound,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::byzantine_common_coin_env;

    #[test]
    fn builder_counts_entities() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("m", env);
        let _v = b.shared_var("v0");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        b.rule("go", i0, e0, Guard::top(), Update::none());
        b.round_switch(e0, j0);
        assert_eq!(b.location_count(), 3);
        assert_eq!(b.rule_count(), 3);
        assert_eq!(b.env().num_params(), 4);
        let m = b.build().unwrap();
        assert_eq!(m.process_location_count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_variable_panics() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("m", env);
        b.shared_var("v0");
        b.coin_var("v0");
    }

    #[test]
    #[should_panic(expected = "duplicate location name")]
    fn duplicate_location_panics() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("m", env);
        b.process_location("J0", LocClass::Border, None);
        b.coin_location("J0", LocClass::Border, None);
    }

    #[test]
    fn decision_location_is_final_and_accepting() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("m", env);
        let d0 = b.decision_location("D0", BinValue::Zero);
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        b.rule("go", i0, d0, Guard::top(), Update::none());
        b.round_switch(d0, j0);
        let m = b.build().unwrap();
        let d0 = m.location_id("D0").unwrap();
        assert!(m.location(d0).is_decision());
        assert!(m.location(d0).is_final());
        assert_eq!(m.decision_locations(Some(BinValue::Zero)), vec![d0]);
    }
}
