//! Linear integer arithmetic over protocol parameters.
//!
//! Guards, resilience conditions and the `N` function of an environment are
//! all expressed as linear expressions over the parameter vector `p`
//! (e.g. `n`, `t`, `f`, `cc`).

use std::fmt;

/// Index of a parameter inside an [`crate::Environment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub usize);

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A linear expression `a̅ · p⊤ + a0` over the parameter vector.
///
/// The number of coefficients is fixed when the expression is created and
/// must match the number of parameters of the environment the expression is
/// evaluated against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinearExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl LinearExpr {
    /// A constant expression with `num_params` (zero) parameter coefficients.
    pub fn constant(num_params: usize, constant: i64) -> Self {
        LinearExpr {
            coeffs: vec![0; num_params],
            constant,
        }
    }

    /// The expression consisting of a single parameter with coefficient 1.
    pub fn param(num_params: usize, p: ParamId) -> Self {
        Self::term(num_params, p, 1)
    }

    /// The expression `k * p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for `num_params`.
    pub fn term(num_params: usize, p: ParamId, k: i64) -> Self {
        assert!(p.0 < num_params, "parameter index out of range");
        let mut coeffs = vec![0; num_params];
        coeffs[p.0] = k;
        LinearExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from explicit terms plus a constant.
    pub fn from_terms(num_params: usize, terms: &[(ParamId, i64)], constant: i64) -> Self {
        let mut coeffs = vec![0; num_params];
        for &(p, k) in terms {
            assert!(p.0 < num_params, "parameter index out of range");
            coeffs[p.0] += k;
        }
        LinearExpr { coeffs, constant }
    }

    /// Number of parameter coefficients carried by this expression.
    pub fn num_params(&self) -> usize {
        self.coeffs.len()
    }

    /// The constant term `a0`.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The coefficient of parameter `p`.
    pub fn coeff(&self, p: ParamId) -> i64 {
        self.coeffs.get(p.0).copied().unwrap_or(0)
    }

    /// Pointwise sum of two expressions.
    ///
    /// # Panics
    ///
    /// Panics if the expressions were built for a different number of
    /// parameters.
    pub fn add(&self, other: &LinearExpr) -> LinearExpr {
        assert_eq!(self.coeffs.len(), other.coeffs.len());
        LinearExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    /// Pointwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if the expressions were built for a different number of
    /// parameters.
    pub fn sub(&self, other: &LinearExpr) -> LinearExpr {
        assert_eq!(self.coeffs.len(), other.coeffs.len());
        LinearExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            constant: self.constant - other.constant,
        }
    }

    /// Multiplies every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> LinearExpr {
        LinearExpr {
            coeffs: self.coeffs.iter().map(|a| a * k).collect(),
            constant: self.constant * k,
        }
    }

    /// Adds a constant to the expression.
    pub fn plus_const(&self, k: i64) -> LinearExpr {
        LinearExpr {
            coeffs: self.coeffs.clone(),
            constant: self.constant + k,
        }
    }

    /// Evaluates the expression at the given parameter values.
    ///
    /// The result is returned as `i128` so that intermediate products cannot
    /// overflow for realistic parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `values` has fewer entries than the expression has
    /// coefficients.
    pub fn eval(&self, values: &[u64]) -> i128 {
        assert!(
            values.len() >= self.coeffs.len(),
            "parameter valuation too short"
        );
        let mut acc = self.constant as i128;
        for (i, &c) in self.coeffs.iter().enumerate() {
            acc += c as i128 * values[i] as i128;
        }
        acc
    }

    /// Renders the expression with the given parameter names.
    pub fn display_with(&self, names: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = names.get(i).map(|s| s.as_str()).unwrap_or("?");
            if c == 1 {
                parts.push(name.to_string());
            } else if c == -1 {
                parts.push(format!("-{name}"));
            } else {
                parts.push(format!("{c}*{name}"));
            }
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        parts.join(" + ").replace("+ -", "- ")
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.coeffs.len()).map(|i| format!("p{i}")).collect();
        write!(f, "{}", self.display_with(&names))
    }
}

/// Comparison relations used in resilience conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `lhs >= rhs`
    Ge,
    /// `lhs > rhs`
    Gt,
    /// `lhs <= rhs`
    Le,
    /// `lhs < rhs`
    Lt,
    /// `lhs == rhs`
    Eq,
}

impl Rel {
    /// Applies the relation to two evaluated sides.
    pub fn holds(self, lhs: i128, rhs: i128) -> bool {
        match self {
            Rel::Ge => lhs >= rhs,
            Rel::Gt => lhs > rhs,
            Rel::Le => lhs <= rhs,
            Rel::Lt => lhs < rhs,
            Rel::Eq => lhs == rhs,
        }
    }

    /// Human-readable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Rel::Ge => ">=",
            Rel::Gt => ">",
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Eq => "==",
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A linear constraint `lhs ⋈ rhs` over the parameters, used in resilience
/// conditions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinearConstraint {
    lhs: LinearExpr,
    rel: Rel,
    rhs: LinearExpr,
}

impl LinearConstraint {
    /// Creates a constraint `lhs ⋈ rhs`.
    pub fn new(lhs: LinearExpr, rel: Rel, rhs: LinearExpr) -> Self {
        assert_eq!(
            lhs.num_params(),
            rhs.num_params(),
            "constraint sides built for different parameter counts"
        );
        LinearConstraint { lhs, rel, rhs }
    }

    /// `lhs >= rhs`
    pub fn ge(lhs: LinearExpr, rhs: LinearExpr) -> Self {
        Self::new(lhs, Rel::Ge, rhs)
    }

    /// `lhs > rhs`
    pub fn gt(lhs: LinearExpr, rhs: LinearExpr) -> Self {
        Self::new(lhs, Rel::Gt, rhs)
    }

    /// `lhs <= rhs`
    pub fn le(lhs: LinearExpr, rhs: LinearExpr) -> Self {
        Self::new(lhs, Rel::Le, rhs)
    }

    /// `lhs == rhs`
    pub fn eq(lhs: LinearExpr, rhs: LinearExpr) -> Self {
        Self::new(lhs, Rel::Eq, rhs)
    }

    /// The left-hand side.
    pub fn lhs(&self) -> &LinearExpr {
        &self.lhs
    }

    /// The relation.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// The right-hand side.
    pub fn rhs(&self) -> &LinearExpr {
        &self.rhs
    }

    /// Evaluates the constraint at the given parameter values.
    pub fn holds(&self, values: &[u64]) -> bool {
        self.rel.holds(self.lhs.eval(values), self.rhs.eval(values))
    }

    /// Renders the constraint with the given parameter names.
    pub fn display_with(&self, names: &[String]) -> String {
        format!(
            "{} {} {}",
            self.lhs.display_with(names),
            self.rel,
            self.rhs.display_with(names)
        )
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.rel, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ParamId {
        ParamId(i)
    }

    #[test]
    fn constant_expr_evaluates_to_constant() {
        let e = LinearExpr::constant(3, 7);
        assert_eq!(e.eval(&[10, 20, 30]), 7);
        assert_eq!(e.num_params(), 3);
    }

    #[test]
    fn term_and_param_expressions() {
        let e = LinearExpr::term(2, p(1), 3);
        assert_eq!(e.eval(&[5, 4]), 12);
        let e = LinearExpr::param(2, p(0));
        assert_eq!(e.eval(&[5, 4]), 5);
    }

    #[test]
    fn from_terms_accumulates_duplicate_parameters() {
        let e = LinearExpr::from_terms(2, &[(p(0), 2), (p(0), 3), (p(1), -1)], 4);
        assert_eq!(e.eval(&[10, 7]), 2 * 10 + 3 * 10 - 7 + 4);
    }

    #[test]
    fn arithmetic_combinators() {
        let n = LinearExpr::param(3, p(0));
        let t = LinearExpr::param(3, p(1));
        let f = LinearExpr::param(3, p(2));
        // n - t - f + 1
        let e = n.sub(&t).sub(&f).plus_const(1);
        assert_eq!(e.eval(&[7, 1, 1]), 6);
        // 2 * (t + 1)
        let e2 = t.plus_const(1).scale(2);
        assert_eq!(e2.eval(&[7, 3, 0]), 8);
        let sum = e.add(&e2);
        assert_eq!(sum.eval(&[7, 1, 1]), 6 + 4);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn term_rejects_out_of_range_parameter() {
        let _ = LinearExpr::term(1, p(3), 1);
    }

    #[test]
    fn relations_hold_as_expected() {
        assert!(Rel::Ge.holds(3, 3));
        assert!(!Rel::Gt.holds(3, 3));
        assert!(Rel::Lt.holds(2, 3));
        assert!(Rel::Le.holds(3, 3));
        assert!(Rel::Eq.holds(3, 3));
    }

    #[test]
    fn constraint_evaluation() {
        // n > 3t
        let n = LinearExpr::param(2, p(0));
        let t3 = LinearExpr::term(2, p(1), 3);
        let c = LinearConstraint::gt(n, t3);
        assert!(c.holds(&[4, 1]));
        assert!(!c.holds(&[3, 1]));
    }

    #[test]
    fn display_uses_parameter_names() {
        let names = vec!["n".to_string(), "t".to_string()];
        let e = LinearExpr::from_terms(2, &[(p(0), 1), (p(1), -2)], 1);
        assert_eq!(e.display_with(&names), "n - 2*t + 1");
        let c = LinearConstraint::ge(e, LinearExpr::constant(2, 0));
        assert_eq!(c.display_with(&names), "n - 2*t + 1 >= 0");
    }

    #[test]
    fn display_of_zero_expression_is_nonempty() {
        let e = LinearExpr::constant(2, 0);
        assert_eq!(format!("{e}"), "0");
    }
}
