//! Locations of threshold automata.
//!
//! A multi-round automaton partitions its locations into border locations
//! `B`, initial locations `I`, intermediate locations, and final locations
//! `F`; a subset of the final locations are decision (accepting) locations
//! `D`.  For binary consensus every border/initial/final location carries a
//! binary value tag so that `I = I0 ⊎ I1`, `F = F0 ⊎ F1`, `B = B0 ⊎ B1`
//! (Sect. III-B(b) of the paper).

use std::fmt;

/// Index of a location inside a [`crate::SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub usize);

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A binary consensus value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinValue {
    /// Value 0.
    Zero,
    /// Value 1.
    One,
}

impl BinValue {
    /// Both binary values, in order.
    pub const ALL: [BinValue; 2] = [BinValue::Zero, BinValue::One];

    /// The other value.
    pub fn flip(self) -> BinValue {
        match self {
            BinValue::Zero => BinValue::One,
            BinValue::One => BinValue::Zero,
        }
    }

    /// 0 or 1 as a number.
    pub fn index(self) -> usize {
        match self {
            BinValue::Zero => 0,
            BinValue::One => 1,
        }
    }

    /// Converts 0/1 into a value.
    pub fn from_index(i: usize) -> Option<BinValue> {
        match i {
            0 => Some(BinValue::Zero),
            1 => Some(BinValue::One),
            _ => None,
        }
    }
}

impl fmt::Display for BinValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index())
    }
}

/// Structural class of a location inside the round structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocClass {
    /// Border location (`B`): the location a process occupies between rounds.
    Border,
    /// Initial location (`I`): entered from a border location at the start of
    /// a round.
    Initial,
    /// Any location that is neither border, initial nor final.
    Intermediate,
    /// Final location (`F`): the last location of a round; its only outgoing
    /// rule is a round-switch rule.
    Final,
    /// Copy of a border location introduced by the single-round construction
    /// (the set `B'` of Definition 3).
    BorderCopy,
}

impl fmt::Display for LocClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocClass::Border => "border",
            LocClass::Initial => "initial",
            LocClass::Intermediate => "intermediate",
            LocClass::Final => "final",
            LocClass::BorderCopy => "border-copy",
        };
        f.write_str(s)
    }
}

/// Which automaton a location (or rule) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The non-probabilistic threshold automaton of correct processes.
    Process,
    /// The probabilistic threshold automaton of the common coin.
    Coin,
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Process => f.write_str("process"),
            Owner::Coin => f.write_str("coin"),
        }
    }
}

/// A declared location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Location {
    name: String,
    class: LocClass,
    value: Option<BinValue>,
    decision: bool,
    owner: Owner,
}

impl Location {
    /// Creates a new location.
    pub fn new(
        name: impl Into<String>,
        class: LocClass,
        value: Option<BinValue>,
        decision: bool,
        owner: Owner,
    ) -> Self {
        Location {
            name: name.into(),
            class,
            value,
            decision,
            owner,
        }
    }

    /// The location name (e.g. `"D0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structural class.
    pub fn class(&self) -> LocClass {
        self.class
    }

    /// The binary value tag, if any.
    pub fn value(&self) -> Option<BinValue> {
        self.value
    }

    /// Whether this is a decision (accepting) location.
    pub fn is_decision(&self) -> bool {
        self.decision
    }

    /// Which automaton owns the location.
    pub fn owner(&self) -> Owner {
        self.owner
    }

    /// Whether this is a border location.
    pub fn is_border(&self) -> bool {
        self.class == LocClass::Border
    }

    /// Whether this is an initial location.
    pub fn is_initial(&self) -> bool {
        self.class == LocClass::Initial
    }

    /// Whether this is a final location.
    pub fn is_final(&self) -> bool {
        self.class == LocClass::Final
    }

    /// Whether this is a border copy introduced by the single-round
    /// construction.
    pub fn is_border_copy(&self) -> bool {
        self.class == LocClass::BorderCopy
    }

    /// Re-classifies the location (used by the single-round construction).
    pub(crate) fn with_class(&self, class: LocClass) -> Location {
        Location {
            class,
            ..self.clone()
        }
    }

    /// Renames the location (used by model transformations).
    pub(crate) fn with_name(&self, name: impl Into<String>) -> Location {
        Location {
            name: name.into(),
            ..self.clone()
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.class)?;
        if let Some(v) = self.value {
            write!(f, " value={v}")?;
        }
        if self.decision {
            write!(f, " decision")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_value_flip_and_index() {
        assert_eq!(BinValue::Zero.flip(), BinValue::One);
        assert_eq!(BinValue::One.flip(), BinValue::Zero);
        assert_eq!(BinValue::Zero.index(), 0);
        assert_eq!(BinValue::One.index(), 1);
        assert_eq!(BinValue::from_index(0), Some(BinValue::Zero));
        assert_eq!(BinValue::from_index(1), Some(BinValue::One));
        assert_eq!(BinValue::from_index(2), None);
        assert_eq!(BinValue::ALL.len(), 2);
    }

    #[test]
    fn location_predicates() {
        let d0 = Location::new(
            "D0",
            LocClass::Final,
            Some(BinValue::Zero),
            true,
            Owner::Process,
        );
        assert!(d0.is_final());
        assert!(d0.is_decision());
        assert!(!d0.is_border());
        assert!(!d0.is_initial());
        assert_eq!(d0.value(), Some(BinValue::Zero));
        assert_eq!(d0.owner(), Owner::Process);

        let j = Location::new("J2", LocClass::Border, None, false, Owner::Coin);
        assert!(j.is_border());
        assert!(!j.is_border_copy());
        let copy = j.with_class(LocClass::BorderCopy).with_name("J2'");
        assert!(copy.is_border_copy());
        assert_eq!(copy.name(), "J2'");
    }

    #[test]
    fn display_is_informative() {
        let d0 = Location::new(
            "D0",
            LocClass::Final,
            Some(BinValue::Zero),
            true,
            Owner::Process,
        );
        let s = format!("{d0}");
        assert!(s.contains("D0"));
        assert!(s.contains("final"));
        assert!(s.contains("decision"));
        assert_eq!(format!("{}", LocId(5)), "l5");
        assert_eq!(format!("{}", Owner::Coin), "coin");
    }
}
