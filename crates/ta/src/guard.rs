//! Threshold guards.
//!
//! A *simple guard* has the form `b·x ≥ a̅·p⊤ + a0` or `b·x < a̅·p⊤ + a0`
//! where `x` is a shared variable; a *coin guard* has the same form over a
//! coin variable.  A rule guard is a conjunction of guards that must either
//! all be simple guards or all be coin guards (Sect. III-B(b)).
//!
//! Following ByMC (and the benchmark models of the paper, e.g. rule `r21` of
//! MMR14 whose guard is `a0 + a1 ≥ n − t − f`), the left-hand side may be a
//! linear combination of variables of the same kind, not just a single
//! variable.

use crate::expr::LinearExpr;
use crate::variable::{VarId, VarKind, Variable};
use std::fmt;

/// The two comparison forms allowed in threshold guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardRel {
    /// `lhs >= bound`
    Ge,
    /// `lhs < bound`
    Lt,
}

impl GuardRel {
    /// Applies the comparison.
    pub fn holds(self, lhs: i128, rhs: i128) -> bool {
        match self {
            GuardRel::Ge => lhs >= rhs,
            GuardRel::Lt => lhs < rhs,
        }
    }

    /// Human-readable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            GuardRel::Ge => ">=",
            GuardRel::Lt => "<",
        }
    }
}

impl fmt::Display for GuardRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single threshold comparison `Σᵢ bᵢ·xᵢ ⋈ bound`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtomicGuard {
    /// The left-hand side: variable terms with integer coefficients.
    pub terms: Vec<(i64, VarId)>,
    /// `>=` or `<`.
    pub rel: GuardRel,
    /// The linear expression `a̅·p⊤ + a0` over the parameters.
    pub bound: LinearExpr,
}

impl AtomicGuard {
    /// `var >= bound`.
    pub fn ge(var: VarId, bound: LinearExpr) -> Self {
        AtomicGuard {
            terms: vec![(1, var)],
            rel: GuardRel::Ge,
            bound,
        }
    }

    /// `var < bound`.
    pub fn lt(var: VarId, bound: LinearExpr) -> Self {
        AtomicGuard {
            terms: vec![(1, var)],
            rel: GuardRel::Lt,
            bound,
        }
    }

    /// `coeff·var >= bound`.
    pub fn ge_scaled(coeff: i64, var: VarId, bound: LinearExpr) -> Self {
        AtomicGuard {
            terms: vec![(coeff, var)],
            rel: GuardRel::Ge,
            bound,
        }
    }

    /// `coeff·var < bound`.
    pub fn lt_scaled(coeff: i64, var: VarId, bound: LinearExpr) -> Self {
        AtomicGuard {
            terms: vec![(coeff, var)],
            rel: GuardRel::Lt,
            bound,
        }
    }

    /// `var_1 + … + var_n >= bound`.
    pub fn sum_ge(vars: &[VarId], bound: LinearExpr) -> Self {
        AtomicGuard {
            terms: vars.iter().map(|&v| (1, v)).collect(),
            rel: GuardRel::Ge,
            bound,
        }
    }

    /// `var_1 + … + var_n < bound`.
    pub fn sum_lt(vars: &[VarId], bound: LinearExpr) -> Self {
        AtomicGuard {
            terms: vars.iter().map(|&v| (1, v)).collect(),
            rel: GuardRel::Lt,
            bound,
        }
    }

    /// An atom with explicit terms.
    pub fn linear(terms: Vec<(i64, VarId)>, rel: GuardRel, bound: LinearExpr) -> Self {
        AtomicGuard { terms, rel, bound }
    }

    /// The variables appearing on the left-hand side.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(_, v)| v)
    }

    /// The comparison relation of the atom.
    pub fn rel(&self) -> GuardRel {
        self.rel
    }

    /// The right-hand-side bound of the atom.
    pub fn bound(&self) -> &LinearExpr {
        &self.bound
    }

    /// Evaluates the left-hand side against variable values.
    pub fn lhs_value(&self, var_values: &[u64]) -> i128 {
        self.terms
            .iter()
            .map(|&(c, v)| c as i128 * var_values[v.0] as i128)
            .sum()
    }

    /// Evaluates the left-hand side against byte-packed variable values
    /// (the row representation of explicit-state search).
    pub fn lhs_value_bytes(&self, var_values: &[u8]) -> i128 {
        self.terms
            .iter()
            .map(|&(c, v)| c as i128 * var_values[v.0] as i128)
            .sum()
    }

    /// Evaluates the guard against variable values and parameter values.
    pub fn holds(&self, var_values: &[u64], param_values: &[u64]) -> bool {
        self.rel
            .holds(self.lhs_value(var_values), self.bound.eval(param_values))
    }

    /// Whether this atom becomes *true forever* once it becomes true, as the
    /// shared variables only grow (a "rising" guard in ByMC terminology).
    /// `>=`-guards with non-negative coefficients rise; `<`-guards with
    /// non-negative coefficients fall (become false forever once false).
    pub fn is_rising(&self) -> bool {
        self.rel == GuardRel::Ge && self.terms.iter().all(|&(c, _)| c >= 0)
    }

    /// Whether this atom is monotone falling (`<` over non-negative terms).
    pub fn is_falling(&self) -> bool {
        self.rel == GuardRel::Lt && self.terms.iter().all(|&(c, _)| c >= 0)
    }

    /// Renders the atom with variable and parameter names.
    pub fn display_with(&self, vars: &[Variable], params: &[String]) -> String {
        let lhs = if self.terms.is_empty() {
            "0".to_string()
        } else {
            self.terms
                .iter()
                .map(|&(c, v)| {
                    let name = vars
                        .get(v.0)
                        .map(|x| x.name().to_string())
                        .unwrap_or_else(|| format!("{v}"));
                    if c == 1 {
                        name
                    } else {
                        format!("{c}*{name}")
                    }
                })
                .collect::<Vec<_>>()
                .join(" + ")
        };
        format!("{lhs} {} {}", self.rel, self.bound.display_with(params))
    }
}

/// Classification of a full rule guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardKind {
    /// The trivially-true guard (no conjuncts).
    True,
    /// A conjunction of simple guards over shared variables.
    Shared,
    /// A conjunction of coin guards over coin variables.
    Coin,
    /// Illegal mixture of shared and coin atoms (rejected by validation).
    Mixed,
}

/// A conjunction of atomic threshold guards.
///
/// The empty conjunction is the guard `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Guard {
    atoms: Vec<AtomicGuard>,
}

impl Guard {
    /// The trivially-true guard.
    pub fn top() -> Self {
        Guard { atoms: Vec::new() }
    }

    /// A guard with a single atom `var >= bound`.
    pub fn ge(var: VarId, bound: LinearExpr) -> Self {
        Guard {
            atoms: vec![AtomicGuard::ge(var, bound)],
        }
    }

    /// A guard with a single atom `var < bound`.
    pub fn lt(var: VarId, bound: LinearExpr) -> Self {
        Guard {
            atoms: vec![AtomicGuard::lt(var, bound)],
        }
    }

    /// A guard with a single atom `coeff·var >= bound`.
    pub fn ge_scaled(coeff: i64, var: VarId, bound: LinearExpr) -> Self {
        Guard {
            atoms: vec![AtomicGuard::ge_scaled(coeff, var, bound)],
        }
    }

    /// A guard with a single atom `var_1 + … + var_n >= bound`.
    pub fn sum_ge(vars: &[VarId], bound: LinearExpr) -> Self {
        Guard {
            atoms: vec![AtomicGuard::sum_ge(vars, bound)],
        }
    }

    /// A guard with a single atom `var_1 + … + var_n < bound`.
    pub fn sum_lt(vars: &[VarId], bound: LinearExpr) -> Self {
        Guard {
            atoms: vec![AtomicGuard::sum_lt(vars, bound)],
        }
    }

    /// Adds a conjunct `var >= bound` and returns the extended guard.
    pub fn and_ge(mut self, var: VarId, bound: LinearExpr) -> Self {
        self.atoms.push(AtomicGuard::ge(var, bound));
        self
    }

    /// Adds a conjunct `var < bound` and returns the extended guard.
    pub fn and_lt(mut self, var: VarId, bound: LinearExpr) -> Self {
        self.atoms.push(AtomicGuard::lt(var, bound));
        self
    }

    /// Adds a conjunct `var_1 + … + var_n >= bound` and returns the guard.
    pub fn and_sum_ge(mut self, vars: &[VarId], bound: LinearExpr) -> Self {
        self.atoms.push(AtomicGuard::sum_ge(vars, bound));
        self
    }

    /// Adds an arbitrary atom and returns the extended guard.
    pub fn and(mut self, atom: AtomicGuard) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Conjoins all atoms of another guard.
    pub fn and_all(mut self, other: &Guard) -> Self {
        self.atoms.extend(other.atoms.iter().cloned());
        self
    }

    /// The conjuncts of the guard.
    pub fn atoms(&self) -> &[AtomicGuard] {
        &self.atoms
    }

    /// Whether the guard is trivially true.
    pub fn is_true(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates the guard against variable and parameter values.
    pub fn holds(&self, var_values: &[u64], param_values: &[u64]) -> bool {
        self.atoms.iter().all(|a| a.holds(var_values, param_values))
    }

    /// Classifies the guard as true / shared / coin / mixed with respect to a
    /// variable table.
    pub fn kind(&self, vars: &[Variable]) -> GuardKind {
        if self.atoms.is_empty() {
            return GuardKind::True;
        }
        let mut has_shared = false;
        let mut has_coin = false;
        for a in &self.atoms {
            for v in a.vars() {
                match vars[v.0].kind() {
                    VarKind::Shared => has_shared = true,
                    VarKind::Coin => has_coin = true,
                }
            }
        }
        match (has_shared, has_coin) {
            (true, false) => GuardKind::Shared,
            (false, true) => GuardKind::Coin,
            (true, true) => GuardKind::Mixed,
            (false, false) => GuardKind::True,
        }
    }

    /// Renders the guard with variable and parameter names.
    pub fn display_with(&self, vars: &[Variable], params: &[String]) -> String {
        if self.atoms.is_empty() {
            return "true".to_string();
        }
        self.atoms
            .iter()
            .map(|a| a.display_with(vars, params))
            .collect::<Vec<_>>()
            .join(" /\\ ")
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" /\\ ")?;
            }
            for (j, (c, v)) in a.terms.iter().enumerate() {
                if j > 0 {
                    f.write_str(" + ")?;
                }
                write!(f, "{c}*{v}")?;
            }
            write!(f, " {} {}", a.rel, a.bound)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParamId;

    fn vars() -> Vec<Variable> {
        vec![
            Variable::new("a0", VarKind::Shared),
            Variable::new("a1", VarKind::Shared),
            Variable::new("cc0", VarKind::Coin),
        ]
    }

    #[test]
    fn true_guard_always_holds() {
        let g = Guard::top();
        assert!(g.is_true());
        assert!(g.holds(&[0, 0, 0], &[1, 2]));
        assert_eq!(g.kind(&vars()), GuardKind::True);
        assert_eq!(format!("{g}"), "true");
    }

    #[test]
    fn ge_guard_evaluates_thresholds() {
        // a0 >= n - t   with n = p0, t = p1
        let bound = LinearExpr::param(2, ParamId(0)).sub(&LinearExpr::param(2, ParamId(1)));
        let g = Guard::ge(VarId(0), bound);
        assert!(g.holds(&[3, 0, 0], &[4, 1])); // 3 >= 3
        assert!(!g.holds(&[2, 0, 0], &[4, 1])); // 2 < 3
        assert_eq!(g.kind(&vars()), GuardKind::Shared);
    }

    #[test]
    fn lt_guard_evaluates_thresholds() {
        // a1 < t + 1
        let bound = LinearExpr::param(2, ParamId(1)).plus_const(1);
        let g = Guard::lt(VarId(1), bound);
        assert!(g.holds(&[0, 1, 0], &[4, 1])); // 1 < 2
        assert!(!g.holds(&[0, 2, 0], &[4, 1])); // 2 < 2 fails
    }

    #[test]
    fn scaled_guard_uses_coefficient() {
        // 2*a0 >= n + 1
        let bound = LinearExpr::param(1, ParamId(0)).plus_const(1);
        let g = Guard::ge_scaled(2, VarId(0), bound);
        assert!(g.holds(&[3, 0, 0], &[5])); // 6 >= 6
        assert!(!g.holds(&[2, 0, 0], &[5])); // 4 < 6
    }

    #[test]
    fn sum_guard_adds_variables() {
        // a0 + a1 >= n - t  (the shape of MMR14's r21 guard)
        let bound = LinearExpr::param(2, ParamId(0)).sub(&LinearExpr::param(2, ParamId(1)));
        let g = Guard::sum_ge(&[VarId(0), VarId(1)], bound.clone());
        assert!(g.holds(&[2, 1, 0], &[4, 1])); // 3 >= 3
        assert!(!g.holds(&[1, 1, 0], &[4, 1])); // 2 < 3
        let lt = Guard::sum_lt(&[VarId(0), VarId(1)], bound);
        assert!(lt.holds(&[1, 1, 0], &[4, 1]));
        assert!(!lt.holds(&[2, 1, 0], &[4, 1]));
    }

    #[test]
    fn conjunction_requires_all_atoms() {
        let b1 = LinearExpr::constant(1, 2);
        let b2 = LinearExpr::constant(1, 5);
        let g = Guard::ge(VarId(0), b1).and_lt(VarId(1), b2);
        assert!(g.holds(&[2, 4, 0], &[0]));
        assert!(!g.holds(&[1, 4, 0], &[0]));
        assert!(!g.holds(&[2, 5, 0], &[0]));
        assert_eq!(g.atoms().len(), 2);
    }

    #[test]
    fn and_all_merges_guards() {
        let a = Guard::ge(VarId(0), LinearExpr::constant(1, 1));
        let b = Guard::lt(VarId(1), LinearExpr::constant(1, 3));
        let merged = a.and_all(&b);
        assert_eq!(merged.atoms().len(), 2);
    }

    #[test]
    fn guard_kind_detects_coin_and_mixed() {
        let c = Guard::ge(VarId(2), LinearExpr::constant(1, 1));
        assert_eq!(c.kind(&vars()), GuardKind::Coin);
        let mixed = c.and_ge(VarId(0), LinearExpr::constant(1, 1));
        assert_eq!(mixed.kind(&vars()), GuardKind::Mixed);
    }

    #[test]
    fn rising_and_falling_classification() {
        assert!(AtomicGuard::ge(VarId(0), LinearExpr::constant(1, 1)).is_rising());
        assert!(!AtomicGuard::ge(VarId(0), LinearExpr::constant(1, 1)).is_falling());
        assert!(AtomicGuard::lt(VarId(0), LinearExpr::constant(1, 1)).is_falling());
        assert!(!AtomicGuard::lt(VarId(0), LinearExpr::constant(1, 1)).is_rising());
        let neg = AtomicGuard::linear(
            vec![(-1, VarId(0))],
            GuardRel::Ge,
            LinearExpr::constant(1, 0),
        );
        assert!(!neg.is_rising());
    }

    #[test]
    fn display_with_names() {
        let params = vec!["n".to_string(), "t".to_string()];
        let bound = LinearExpr::param(2, ParamId(0))
            .sub(&LinearExpr::param(2, ParamId(1)))
            .plus_const(-1);
        let g = Guard::ge(VarId(0), bound.clone());
        assert_eq!(g.display_with(&vars(), &params), "a0 >= n - t - 1");
        assert_eq!(Guard::top().display_with(&vars(), &params), "true");
        let sum = Guard::sum_ge(&[VarId(0), VarId(1)], bound);
        assert_eq!(sum.display_with(&vars(), &params), "a0 + a1 >= n - t - 1");
    }

    #[test]
    fn atom_accessors() {
        let a = AtomicGuard::sum_ge(&[VarId(0), VarId(1)], LinearExpr::constant(1, 2));
        assert_eq!(a.vars().collect::<Vec<_>>(), vec![VarId(0), VarId(1)]);
        assert_eq!(a.lhs_value(&[3, 4, 0]), 7);
    }
}
