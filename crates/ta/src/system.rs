//! The combined system model: a threshold automaton for correct processes
//! plus a probabilistic threshold automaton for the common coin, sharing one
//! variable alphabet (Sect. III-B of the paper).

use crate::env::Environment;
use crate::error::ModelError;
use crate::guard::GuardKind;
use crate::location::{BinValue, LocClass, LocId, Location, Owner};
use crate::rule::{Rule, RuleId};
use crate::variable::{VarId, VarKind, Variable};
use std::collections::HashMap;
use std::fmt;

/// Whether a model still has its multi-round structure or has been rewritten
/// into the single-round automaton of Definition 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The original multi-round automaton with round-switch rules.
    MultiRound,
    /// The single-round automaton `TA_rd` with border copies `B'`.
    SingleRound,
}

/// Aggregate size statistics, used for the `|L|` / `|R|` columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Locations of the correct-process automaton.
    pub process_locations: usize,
    /// Rules of the correct-process automaton.
    pub process_rules: usize,
    /// Locations of the common-coin automaton.
    pub coin_locations: usize,
    /// Rules of the common-coin automaton.
    pub coin_rules: usize,
    /// Shared variables.
    pub shared_vars: usize,
    /// Coin variables.
    pub coin_vars: usize,
}

/// A complete model: environment, shared variable alphabet, the locations and
/// rules of both automata.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    name: String,
    env: Environment,
    vars: Vec<Variable>,
    locations: Vec<Location>,
    rules: Vec<Rule>,
    kind: ModelKind,
}

impl SystemModel {
    /// Assembles a model from raw parts and validates it.
    ///
    /// Prefer [`crate::SystemBuilder`] for constructing models by hand.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the model violates the structural
    /// restrictions of threshold automata with common coins.
    pub fn new(
        name: impl Into<String>,
        env: Environment,
        vars: Vec<Variable>,
        locations: Vec<Location>,
        rules: Vec<Rule>,
        kind: ModelKind,
    ) -> Result<Self, ModelError> {
        let model = SystemModel {
            name: name.into(),
            env,
            vars,
            locations,
            rules,
            kind,
        };
        model.validate()?;
        Ok(model)
    }

    /// The model name (protocol name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A copy of the model under a different name (used when a model
    /// transformation produces the automaton of another protocol).
    pub fn renamed(&self, name: impl Into<String>) -> SystemModel {
        SystemModel {
            name: name.into(),
            ..self.clone()
        }
    }

    /// The environment `Env = (Π, RC, N)`.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// All declared variables.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// All locations of both automata.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// All rules of both automata.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Multi-round or single-round.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Looks up a location by id.
    pub fn location(&self, id: LocId) -> &Location {
        &self.locations[id.0]
    }

    /// Looks up a rule by id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.0]
    }

    /// Looks up a variable by id.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// Finds a location by name.
    pub fn location_id(&self, name: &str) -> Option<LocId> {
        self.locations
            .iter()
            .position(|l| l.name() == name)
            .map(LocId)
    }

    /// Finds a variable by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name() == name).map(VarId)
    }

    /// Finds a rule by name.
    pub fn rule_id(&self, name: &str) -> Option<RuleId> {
        self.rules.iter().position(|r| r.name() == name).map(RuleId)
    }

    /// Iterates over all location ids.
    pub fn loc_ids(&self) -> impl Iterator<Item = LocId> + '_ {
        (0..self.locations.len()).map(LocId)
    }

    /// Iterates over all rule ids.
    pub fn rule_ids(&self) -> impl Iterator<Item = RuleId> + '_ {
        (0..self.rules.len()).map(RuleId)
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId)
    }

    /// Ids of all locations matching a predicate.
    pub fn locations_where(&self, mut pred: impl FnMut(&Location) -> bool) -> Vec<LocId> {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, l)| pred(l))
            .map(|(i, _)| LocId(i))
            .collect()
    }

    /// Locations of the given automaton.
    pub fn locations_of(&self, owner: Owner) -> Vec<LocId> {
        self.locations_where(|l| l.owner() == owner)
    }

    /// Border locations of the given automaton (optionally filtered by value).
    pub fn border_locations(&self, owner: Owner, value: Option<BinValue>) -> Vec<LocId> {
        self.locations_where(|l| {
            l.owner() == owner && l.is_border() && (value.is_none() || l.value() == value)
        })
    }

    /// Border-copy locations introduced by the single-round construction.
    pub fn border_copy_locations(&self, owner: Owner) -> Vec<LocId> {
        self.locations_where(|l| l.owner() == owner && l.is_border_copy())
    }

    /// Initial locations of the given automaton (optionally filtered by value).
    pub fn initial_locations(&self, owner: Owner, value: Option<BinValue>) -> Vec<LocId> {
        self.locations_where(|l| {
            l.owner() == owner && l.is_initial() && (value.is_none() || l.value() == value)
        })
    }

    /// Final locations of the given automaton (optionally filtered by value).
    pub fn final_locations(&self, owner: Owner, value: Option<BinValue>) -> Vec<LocId> {
        self.locations_where(|l| {
            l.owner() == owner && l.is_final() && (value.is_none() || l.value() == value)
        })
    }

    /// Decision locations (optionally filtered by value).
    pub fn decision_locations(&self, value: Option<BinValue>) -> Vec<LocId> {
        self.locations_where(|l| l.is_decision() && (value.is_none() || l.value() == value))
    }

    /// Final non-decision locations of the process automaton, optionally
    /// filtered by value (the set `F \ D` used in the termination property).
    pub fn final_non_decision_locations(&self, value: Option<BinValue>) -> Vec<LocId> {
        self.locations_where(|l| {
            l.owner() == Owner::Process
                && l.is_final()
                && !l.is_decision()
                && (value.is_none() || l.value() == value)
        })
    }

    /// Shared variables.
    pub fn shared_vars(&self) -> Vec<VarId> {
        (0..self.vars.len())
            .filter(|&i| self.vars[i].kind() == VarKind::Shared)
            .map(VarId)
            .collect()
    }

    /// Coin variables.
    pub fn coin_vars(&self) -> Vec<VarId> {
        (0..self.vars.len())
            .filter(|&i| self.vars[i].kind() == VarKind::Coin)
            .map(VarId)
            .collect()
    }

    /// Rules whose source is the given location.
    pub fn rules_from(&self, loc: LocId) -> Vec<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.from() == loc)
            .map(|(i, _)| RuleId(i))
            .collect()
    }

    /// Rules with a branch into the given location.
    pub fn rules_into(&self, loc: LocId) -> Vec<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.branches().iter().any(|b| b.to == loc))
            .map(|(i, _)| RuleId(i))
            .collect()
    }

    /// Rules of the given automaton.
    pub fn rules_of(&self, owner: Owner) -> Vec<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.owner() == owner)
            .map(|(i, _)| RuleId(i))
            .collect()
    }

    /// Number of locations of the correct-process automaton (`|L|` in Table II).
    pub fn process_location_count(&self) -> usize {
        self.locations_of(Owner::Process).len()
    }

    /// Number of rules of the correct-process automaton (`|R|` in Table II).
    pub fn process_rule_count(&self) -> usize {
        self.rules_of(Owner::Process).len()
    }

    /// Aggregate statistics for reporting.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            process_locations: self.process_location_count(),
            process_rules: self.process_rule_count(),
            coin_locations: self.locations_of(Owner::Coin).len(),
            coin_rules: self.rules_of(Owner::Coin).len(),
            shared_vars: self.shared_vars().len(),
            coin_vars: self.coin_vars().len(),
        }
    }

    /// Renders a rule with names resolved (location/variable/parameter names).
    pub fn describe_rule(&self, id: RuleId) -> String {
        let r = self.rule(id);
        let from = self.location(r.from()).name();
        let to = if let Some(t) = r.dirac_to() {
            self.location(t).name().to_string()
        } else {
            let branches: Vec<String> = r
                .branches()
                .iter()
                .map(|b| format!("{}: {}", self.location(b.to).name(), b.prob))
                .collect();
            format!("{{{}}}", branches.join(", "))
        };
        format!(
            "{}: {} -> {} [{}] {}",
            r.name(),
            from,
            to,
            r.guard().display_with(&self.vars, self.env.param_names()),
            r.update().display_with(&self.vars)
        )
    }

    // ------------------------------------------------------------------
    // Definition 1: replace probability with non-determinism.
    // ------------------------------------------------------------------

    /// Builds the non-probabilistic model `TA_PTA`: every non-Dirac rule is
    /// split into one Dirac rule per positive-probability branch
    /// (Definition 1 of the paper).
    pub fn to_nonprobabilistic(&self) -> SystemModel {
        let mut rules = Vec::with_capacity(self.rules.len());
        for r in &self.rules {
            if r.is_dirac() {
                rules.push(r.clone());
            } else {
                for b in r.branches() {
                    if b.prob.is_zero() {
                        continue;
                    }
                    let name = format!("{}_to_{}", r.name(), self.location(b.to).name());
                    rules.push(r.dirac_copy_to(name, b.to));
                }
            }
        }
        SystemModel {
            name: self.name.clone(),
            env: self.env.clone(),
            vars: self.vars.clone(),
            locations: self.locations.clone(),
            rules,
            kind: self.kind,
        }
    }

    /// Whether any rule of the model is non-Dirac.
    pub fn has_probabilistic_rules(&self) -> bool {
        self.rules.iter().any(|r| !r.is_dirac())
    }

    // ------------------------------------------------------------------
    // Definition 3: the single-round automaton TA_rd.
    // ------------------------------------------------------------------

    /// Builds the single-round automaton `TA_rd` of Definition 3:
    ///
    /// * every border location `ℓ ∈ B` gets a copy `ℓ' ∈ B'`;
    /// * round-switch rules are redirected to the copies;
    /// * each copy carries a self-loop `(ℓ', ℓ', true, 0)`.
    ///
    /// The construction is applied to both the process and the coin
    /// automaton.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotMultiRound`] if the model is already a
    /// single-round model.
    pub fn single_round(&self) -> Result<SystemModel, ModelError> {
        if self.kind != ModelKind::MultiRound {
            return Err(ModelError::NotMultiRound);
        }
        let mut locations = self.locations.clone();
        let mut copies: HashMap<LocId, LocId> = HashMap::new();
        for (i, loc) in self.locations.iter().enumerate() {
            if loc.is_border() {
                let copy = loc
                    .with_class(LocClass::BorderCopy)
                    .with_name(format!("{}'", loc.name()));
                locations.push(copy);
                copies.insert(LocId(i), LocId(locations.len() - 1));
            }
        }
        let mut rules = Vec::with_capacity(self.rules.len() + copies.len());
        for r in &self.rules {
            if r.is_round_switch() {
                let target = r
                    .dirac_to()
                    .expect("round-switch rules are Dirac by construction");
                let copy = copies
                    .get(&target)
                    .expect("round-switch target must be a border location");
                rules.push(r.redirect_to(*copy).with_name(format!("{}'", r.name())));
            } else {
                rules.push(r.clone());
            }
        }
        for (orig, copy) in &copies {
            let owner = self.location(*orig).owner();
            let name = format!("loop_{}", self.location(*orig).name());
            rules.push(Rule::dirac(
                name,
                *copy,
                *copy,
                crate::guard::Guard::top(),
                crate::rule::Update::none(),
                owner,
            ));
        }
        Ok(SystemModel {
            name: format!("{}_rd", self.name),
            env: self.env.clone(),
            vars: self.vars.clone(),
            locations,
            rules,
            kind: ModelKind::SingleRound,
        })
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks all structural restrictions.  Called by [`SystemModel::new`]
    /// and by [`crate::SystemBuilder::build`].
    pub fn validate(&self) -> Result<(), ModelError> {
        self.validate_names()?;
        self.validate_rule_restrictions()?;
        self.validate_canonicity()?;
        if self.kind == ModelKind::MultiRound {
            self.validate_round_structure()?;
        }
        Ok(())
    }

    fn validate_names(&self) -> Result<(), ModelError> {
        let mut seen = HashMap::new();
        for l in &self.locations {
            if seen.insert(l.name().to_string(), ()).is_some() {
                return Err(ModelError::DuplicateName {
                    name: l.name().to_string(),
                });
            }
        }
        let mut seen = HashMap::new();
        for v in &self.vars {
            if seen.insert(v.name().to_string(), ()).is_some() {
                return Err(ModelError::DuplicateName {
                    name: v.name().to_string(),
                });
            }
        }
        Ok(())
    }

    fn validate_rule_restrictions(&self) -> Result<(), ModelError> {
        for r in &self.rules {
            let rule_name = r.name().to_string();
            // rules stay within one automaton
            let from_owner = self.location(r.from()).owner();
            if from_owner != r.owner()
                || r.branches()
                    .iter()
                    .any(|b| self.location(b.to).owner() != r.owner())
            {
                return Err(ModelError::CrossAutomatonRule { rule: rule_name });
            }
            if !r.probabilities_sum_to_one() {
                return Err(ModelError::ProbabilitiesDoNotSumToOne { rule: rule_name });
            }
            let guard_kind = r.guard().kind(&self.vars);
            if guard_kind == GuardKind::Mixed {
                return Err(ModelError::MixedGuard { rule: rule_name });
            }
            match r.owner() {
                Owner::Process => {
                    if !r.is_dirac() {
                        return Err(ModelError::ProcessRuleNotDirac { rule: rule_name });
                    }
                    if r.update()
                        .touches(|v| self.vars[v.0].kind() == VarKind::Coin)
                    {
                        return Err(ModelError::ProcessUpdatesCoinVariable { rule: rule_name });
                    }
                }
                Owner::Coin => {
                    if guard_kind == GuardKind::Coin {
                        return Err(ModelError::CoinRuleWithCoinGuard { rule: rule_name });
                    }
                    if r.update()
                        .touches(|v| self.vars[v.0].kind() == VarKind::Shared)
                    {
                        return Err(ModelError::CoinUpdatesSharedVariable { rule: rule_name });
                    }
                }
            }
        }
        for (i, l) in self.locations.iter().enumerate() {
            if l.is_decision() && !l.is_final() {
                let _ = i;
                return Err(ModelError::DecisionNotFinal {
                    location: l.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Canonical automata: every rule on a cycle has a zero update.
    ///
    /// Round-switch rules are excluded from the cycle graph: in the
    /// multi-round semantics they connect *different* rounds, whose variable
    /// copies are disjoint, so a cycle through a round-switch rule cannot
    /// pump a shared variable.
    fn validate_canonicity(&self) -> Result<(), ModelError> {
        let scc = self.location_sccs();
        for r in &self.rules {
            if r.update().is_empty() || r.is_round_switch() {
                continue;
            }
            let from_comp = scc[r.from().0];
            let on_cycle = r.branches().iter().any(|b| {
                b.to == r.from() || scc[b.to.0] == from_comp && self.scc_has_cycle(&scc, from_comp)
            });
            if on_cycle {
                return Err(ModelError::NotCanonical {
                    rule: r.name().to_string(),
                });
            }
        }
        Ok(())
    }

    fn scc_has_cycle(&self, scc: &[usize], comp: usize) -> bool {
        // A component has a cycle if it contains more than one location or a
        // self-loop rule.
        let members: Vec<usize> = (0..self.locations.len())
            .filter(|&i| scc[i] == comp)
            .collect();
        if members.len() > 1 {
            return true;
        }
        let only = members[0];
        self.rules.iter().any(|r| {
            !r.is_round_switch()
                && r.from().0 == only
                && r.branches().iter().any(|b| b.to.0 == only)
        })
    }

    /// Computes strongly connected components over the location graph
    /// (edges = rule branches, excluding round-switch rules).  Returns, for
    /// each location, its component id.
    fn location_sccs(&self) -> Vec<usize> {
        let n = self.locations.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in &self.rules {
            if r.is_round_switch() {
                continue;
            }
            for b in r.branches() {
                adj[r.from().0].push(b.to.0);
                radj[b.to.0].push(r.from().0);
            }
        }
        // Kosaraju: first pass - order by finish time (iterative DFS)
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            visited[start] = true;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                if *idx < adj[node].len() {
                    let next = adj[node][*idx];
                    *idx += 1;
                    if !visited[next] {
                        visited[next] = true;
                        stack.push((next, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        // second pass on reverse graph
        let mut comp = vec![usize::MAX; n];
        let mut current = 0usize;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = current;
            while let Some(node) = stack.pop() {
                for &prev in &radj[node] {
                    if comp[prev] == usize::MAX {
                        comp[prev] = current;
                        stack.push(prev);
                    }
                }
            }
            current += 1;
        }
        comp
    }

    fn validate_round_structure(&self) -> Result<(), ModelError> {
        for owner in [Owner::Process, Owner::Coin] {
            let borders = self.border_locations(owner, None);
            let initials = self.initial_locations(owner, None);
            if borders.is_empty() && initials.is_empty() {
                // The owner automaton may be absent (e.g. local-coin models);
                // nothing to check.
                continue;
            }
            if borders.len() != initials.len() {
                return Err(ModelError::BorderInitialMismatch {
                    owner: format!("{owner}"),
                });
            }
            // Border locations: exactly one outgoing rule (ℓ, ℓ', true, 0)
            // into an initial location of matching value.
            for &b in &borders {
                let out = self.rules_from(b);
                if out.len() != 1 {
                    return Err(ModelError::BadBorderRule {
                        rule: format!("outgoing rules of {}", self.location(b).name()),
                    });
                }
                let r = self.rule(out[0]);
                let to = match r.dirac_to() {
                    Some(t) => t,
                    None => {
                        return Err(ModelError::BadBorderRule {
                            rule: r.name().to_string(),
                        })
                    }
                };
                if !r.guard().is_true() || !r.update().is_empty() || !self.location(to).is_initial()
                {
                    return Err(ModelError::BadBorderRule {
                        rule: r.name().to_string(),
                    });
                }
                let (bv, iv) = (self.location(b).value(), self.location(to).value());
                if let (Some(bv), Some(iv)) = (bv, iv) {
                    if bv != iv {
                        return Err(ModelError::PartitionViolation {
                            rule: r.name().to_string(),
                        });
                    }
                }
                // border locations only receive round-switch rules
                for rin in self.rules_into(b) {
                    if !self.rule(rin).is_round_switch() {
                        return Err(ModelError::BadBorderRule {
                            rule: self.rule(rin).name().to_string(),
                        });
                    }
                }
            }
            // Final locations: exactly one outgoing rule, a round-switch rule.
            for &floc in &self.final_locations(owner, None) {
                let out = self.rules_from(floc);
                if out.len() != 1 || !self.rule(out[0]).is_round_switch() {
                    return Err(ModelError::BadFinalLocation {
                        location: self.location(floc).name().to_string(),
                    });
                }
            }
            // Round-switch rules go from final to border locations and respect
            // the value partition.
            for &rid in &self.rules_of(owner) {
                let r = self.rule(rid);
                if !r.is_round_switch() {
                    continue;
                }
                let to = r.dirac_to().ok_or_else(|| ModelError::BadRoundSwitchRule {
                    rule: r.name().to_string(),
                })?;
                if !self.location(r.from()).is_final() || !self.location(to).is_border() {
                    return Err(ModelError::BadRoundSwitchRule {
                        rule: r.name().to_string(),
                    });
                }
                let (fv, bv) = (self.location(r.from()).value(), self.location(to).value());
                if let (Some(fv), Some(bv)) = (fv, bv) {
                    if fv != bv {
                        return Err(ModelError::PartitionViolation {
                            rule: r.name().to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for SystemModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "{} ({:?}): |L|={} |R|={} (+{} coin locations, {} coin rules)",
            self.name,
            self.kind,
            stats.process_locations,
            stats.process_rules,
            stats.coin_locations,
            stats.coin_rules
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::env::byzantine_common_coin_env;
    use crate::expr::LinearExpr;
    use crate::guard::Guard;
    use crate::rule::{Probability, Update};

    /// A tiny but structurally complete model used by several tests:
    /// processes broadcast their value and move to a final location once
    /// enough messages arrived or based on the coin; the coin automaton
    /// tosses a fair coin.
    fn tiny_model() -> SystemModel {
        let env = byzantine_common_coin_env(3);
        let k = env.num_params();
        let n = env.param_id("n").unwrap();
        let t = env.param_id("t").unwrap();
        let f = env.param_id("f").unwrap();
        let mut b = SystemBuilder::new("tiny", env.clone());
        let v0 = b.shared_var("v0");
        let v1 = b.shared_var("v1");
        let cc0 = b.coin_var("cc0");
        let cc1 = b.coin_var("cc1");

        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
        let s = b.process_location("S", LocClass::Intermediate, None);
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));

        b.start_rule(j0, i0);
        b.start_rule(j1, i1);
        b.rule("b0", i0, s, Guard::top(), Update::increment(v0));
        b.rule("b1", i1, s, Guard::top(), Update::increment(v1));
        let quorum = LinearExpr::param(k, n)
            .sub(&LinearExpr::param(k, t))
            .sub(&LinearExpr::param(k, f));
        b.rule("maj0", s, e0, Guard::ge(v0, quorum.clone()), Update::none());
        b.rule("maj1", s, e1, Guard::ge(v1, quorum), Update::none());
        b.rule(
            "coin0",
            s,
            e0,
            Guard::ge(cc0, LinearExpr::constant(k, 1)),
            Update::none(),
        );
        b.rule(
            "coin1",
            s,
            e1,
            Guard::ge(cc1, LinearExpr::constant(k, 1)),
            Update::none(),
        );
        b.round_switch(e0, j0);
        b.round_switch(e1, j1);

        let jc = b.coin_location("JC", LocClass::Border, None);
        let ic = b.coin_location("IC", LocClass::Initial, None);
        let n0 = b.coin_location("N0c", LocClass::Intermediate, None);
        let n1 = b.coin_location("N1c", LocClass::Intermediate, None);
        let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
        let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
        b.start_rule(jc, ic);
        b.coin_toss(
            "toss",
            ic,
            vec![(n0, Probability::HALF), (n1, Probability::HALF)],
            Guard::top(),
            Update::none(),
        );
        b.rule("rc", n0, c0, Guard::top(), Update::increment(cc0));
        b.rule("rd", n1, c1, Guard::top(), Update::increment(cc1));
        b.round_switch(c0, jc);
        b.round_switch(c1, jc);

        b.build().expect("tiny model should validate")
    }

    #[test]
    fn tiny_model_builds_and_reports_stats() {
        let m = tiny_model();
        let stats = m.stats();
        assert_eq!(stats.process_locations, 7);
        assert_eq!(stats.process_rules, 10);
        assert_eq!(stats.coin_locations, 6);
        assert_eq!(stats.coin_rules, 6);
        assert_eq!(stats.shared_vars, 2);
        assert_eq!(stats.coin_vars, 2);
        assert_eq!(m.process_location_count(), 7);
        assert_eq!(m.process_rule_count(), 10);
        assert!(format!("{m}").contains("tiny"));
    }

    #[test]
    fn lookup_by_name_works() {
        let m = tiny_model();
        let s = m.location_id("S").unwrap();
        assert_eq!(m.location(s).name(), "S");
        assert!(m.location_id("nope").is_none());
        let v0 = m.var_id("v0").unwrap();
        assert_eq!(m.var(v0).name(), "v0");
        let r = m.rule_id("maj0").unwrap();
        assert_eq!(m.rule(r).name(), "maj0");
    }

    #[test]
    fn partition_queries() {
        let m = tiny_model();
        assert_eq!(m.border_locations(Owner::Process, None).len(), 2);
        assert_eq!(
            m.border_locations(Owner::Process, Some(BinValue::Zero))
                .len(),
            1
        );
        assert_eq!(m.initial_locations(Owner::Process, None).len(), 2);
        assert_eq!(m.final_locations(Owner::Process, None).len(), 2);
        assert_eq!(m.final_locations(Owner::Coin, None).len(), 2);
        assert_eq!(m.decision_locations(None).len(), 0);
        assert_eq!(m.shared_vars().len(), 2);
        assert_eq!(m.coin_vars().len(), 2);
    }

    #[test]
    fn rules_from_and_into() {
        let m = tiny_model();
        let s = m.location_id("S").unwrap();
        assert_eq!(m.rules_from(s).len(), 4);
        let e0 = m.location_id("E0").unwrap();
        assert_eq!(m.rules_into(e0).len(), 2);
    }

    #[test]
    fn to_nonprobabilistic_splits_coin_toss() {
        let m = tiny_model();
        assert!(m.has_probabilistic_rules());
        let np = m.to_nonprobabilistic();
        assert!(!np.has_probabilistic_rules());
        // toss is replaced by two Dirac rules
        assert_eq!(np.rules().len(), m.rules().len() + 1);
        assert!(np.rule_id("toss_to_N0c").is_some());
        assert!(np.rule_id("toss_to_N1c").is_some());
        np.validate().unwrap();
    }

    #[test]
    fn single_round_construction_follows_definition_3() {
        let m = tiny_model();
        let rd = m.single_round().unwrap();
        assert_eq!(rd.kind(), ModelKind::SingleRound);
        // 3 border locations (J0, J1, JC) get copies
        assert_eq!(rd.locations().len(), m.locations().len() + 3);
        assert_eq!(rd.border_copy_locations(Owner::Process).len(), 2);
        assert_eq!(rd.border_copy_locations(Owner::Coin).len(), 1);
        // round-switch rules are redirected to copies, self-loops added
        let j0_copy = rd.location_id("J0'").unwrap();
        assert!(rd.location(j0_copy).is_border_copy());
        let redirected = rd
            .rules()
            .iter()
            .filter(|r| r.is_round_switch())
            .all(|r| rd.location(r.dirac_to().unwrap()).is_border_copy());
        assert!(redirected);
        let self_loops = rd.rules().iter().filter(|r| r.is_self_loop()).count();
        assert_eq!(self_loops, 3);
        // applying the construction twice is rejected
        assert_eq!(rd.single_round().unwrap_err(), ModelError::NotMultiRound);
    }

    #[test]
    fn validation_rejects_process_coin_variable_update() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("bad", env);
        let cc0 = b.coin_var("cc0");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        b.rule("bad", i0, e0, Guard::top(), Update::increment(cc0));
        b.round_switch(e0, j0);
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            ModelError::ProcessUpdatesCoinVariable {
                rule: "bad".to_string()
            }
        );
    }

    #[test]
    fn validation_rejects_mixed_guards() {
        let env = byzantine_common_coin_env(3);
        let k = env.num_params();
        let mut b = SystemBuilder::new("bad", env);
        let v0 = b.shared_var("v0");
        let cc0 = b.coin_var("cc0");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        let guard =
            Guard::ge(v0, LinearExpr::constant(k, 1)).and_ge(cc0, LinearExpr::constant(k, 1));
        b.rule("mixed", i0, e0, guard, Update::none());
        b.round_switch(e0, j0);
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            ModelError::MixedGuard {
                rule: "mixed".to_string()
            }
        );
    }

    #[test]
    fn validation_rejects_noncanonical_cycles() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("bad", env);
        let v0 = b.shared_var("v0");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let s = b.process_location("S", LocClass::Intermediate, None);
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        b.rule("go", i0, s, Guard::top(), Update::none());
        // self-loop with an update: not canonical
        b.rule("loop", s, s, Guard::top(), Update::increment(v0));
        b.rule("fin", s, e0, Guard::top(), Update::none());
        b.round_switch(e0, j0);
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            ModelError::NotCanonical {
                rule: "loop".to_string()
            }
        );
    }

    #[test]
    fn validation_rejects_bad_round_structure() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("bad", env);
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        b.start_rule(j0, i0);
        // J1 has no outgoing rule at all -> |B| != |I| is detected first
        b.rule("go", i0, e0, Guard::top(), Update::none());
        b.round_switch(e0, j0);
        let _ = j1;
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::BorderInitialMismatch { .. }));
    }

    #[test]
    fn validation_rejects_partition_violation() {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("bad", env);
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
        b.start_rule(j0, i0);
        // J1 -> I1 is fine
        b.start_rule(j1, i1);
        b.rule("a", i0, e0, Guard::top(), Update::none());
        b.rule("b", i1, e1, Guard::top(), Update::none());
        b.round_switch(e0, j0);
        // E1 switches to J0: violates the value partition
        b.round_switch(e1, j0);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::PartitionViolation { .. }));
    }

    #[test]
    fn validation_rejects_decision_outside_final() {
        let env = byzantine_common_coin_env(3);
        let locs = vec![Location::new(
            "D0",
            LocClass::Intermediate,
            Some(BinValue::Zero),
            true,
            Owner::Process,
        )];
        let err =
            SystemModel::new("bad", env, vec![], locs, vec![], ModelKind::MultiRound).unwrap_err();
        assert!(matches!(err, ModelError::DecisionNotFinal { .. }));
    }

    #[test]
    fn describe_rule_resolves_names() {
        let m = tiny_model();
        let r = m.rule_id("maj0").unwrap();
        let desc = m.describe_rule(r);
        assert!(desc.contains("S"));
        assert!(desc.contains("E0"));
        assert!(desc.contains("v0 >= n - t - f"));
        let toss = m.rule_id("toss").unwrap();
        let desc = m.describe_rule(toss);
        assert!(desc.contains("1/2"));
    }
}
