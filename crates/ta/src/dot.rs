//! Graphviz export of system models.
//!
//! The exported diagrams correspond to Figs. 3–6 of the paper: process and
//! coin automata are rendered as separate clusters, round-switch rules as
//! dashed edges, probabilistic branches with their probabilities, and
//! decision locations with a double border.

use crate::location::{LocClass, Owner};
use crate::system::SystemModel;
use std::fmt::Write as _;

/// Renders the model as a Graphviz `digraph`.
pub fn to_dot(model: &SystemModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", model.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\", fontsize=11];");
    let _ = writeln!(out, "  edge [fontname=\"Helvetica\", fontsize=9];");

    for owner in [Owner::Process, Owner::Coin] {
        let locs = model.locations_of(owner);
        if locs.is_empty() {
            continue;
        }
        let cluster = match owner {
            Owner::Process => "cluster_process",
            Owner::Coin => "cluster_coin",
        };
        let label = match owner {
            Owner::Process => "correct processes (TA^n)",
            Owner::Coin => "common coin (PTA^c)",
        };
        let _ = writeln!(out, "  subgraph {cluster} {{");
        let _ = writeln!(out, "    label=\"{label}\";");
        for loc_id in locs {
            let loc = model.location(loc_id);
            let shape = if loc.is_decision() {
                "doubleoctagon"
            } else {
                match loc.class() {
                    LocClass::Border | LocClass::BorderCopy => "box",
                    LocClass::Initial => "circle",
                    LocClass::Final => "doublecircle",
                    LocClass::Intermediate => "ellipse",
                }
            };
            let style = if loc.is_border_copy() {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\", shape={shape}{style}];",
                loc_id.0,
                loc.name()
            );
        }
        let _ = writeln!(out, "  }}");
    }

    for rule_id in model.rule_ids() {
        let rule = model.rule(rule_id);
        let guard = rule
            .guard()
            .display_with(model.vars(), model.env().param_names());
        let update = rule.update().display_with(model.vars());
        let base_label = if rule.guard().is_true() && rule.update().is_empty() {
            rule.name().to_string()
        } else if rule.update().is_empty() {
            format!("{}: {}", rule.name(), guard)
        } else {
            format!("{}: {} / {}", rule.name(), guard, update)
        };
        let style = if rule.is_round_switch() {
            ", style=dashed"
        } else if rule.is_self_loop() {
            ", style=dotted"
        } else {
            ""
        };
        for branch in rule.branches() {
            let label = if rule.is_dirac() {
                base_label.clone()
            } else {
                format!("{base_label} [{}]", branch.prob)
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"{style}];",
                rule.from().0,
                branch.to.0,
                label.replace('"', "'")
            );
        }
    }

    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::env::byzantine_common_coin_env;
    use crate::guard::Guard;
    use crate::location::{BinValue, LocClass};
    use crate::rule::{Probability, Update};

    fn model() -> SystemModel {
        let env = byzantine_common_coin_env(3);
        let mut b = SystemBuilder::new("dot-test", env);
        let cc0 = b.coin_var("cc0");
        let cc1 = b.coin_var("cc1");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let d0 = b.decision_location("D0", BinValue::Zero);
        b.start_rule(j0, i0);
        b.rule("go", i0, d0, Guard::top(), Update::none());
        b.round_switch(d0, j0);
        let jc = b.coin_location("JC", LocClass::Border, None);
        let ic = b.coin_location("IC", LocClass::Initial, None);
        let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
        let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
        b.start_rule(jc, ic);
        b.coin_toss(
            "toss",
            ic,
            vec![(c0, Probability::HALF), (c1, Probability::HALF)],
            Guard::top(),
            Update::none(),
        );
        let _ = (cc0, cc1);
        b.round_switch(c0, jc);
        b.round_switch(c1, jc);
        b.build().unwrap()
    }

    #[test]
    fn dot_export_contains_clusters_and_nodes() {
        let dot = to_dot(&model());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_process"));
        assert!(dot.contains("cluster_coin"));
        assert!(dot.contains("\"D0\""));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.contains("1/2"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_export_of_single_round_marks_border_copies() {
        let rd = model().single_round().unwrap();
        let dot = to_dot(&rd);
        assert!(dot.contains("J0'"));
        assert!(dot.contains("style=dotted"));
    }
}
