//! Transition rules of (probabilistic) threshold automata.
//!
//! A rule of the correct-process automaton is `(from, to, φ, u)`; a rule of
//! the common-coin automaton is `(from, δ_to, φ, u)` where `δ_to` is a
//! distribution over destination locations.  We represent both uniformly as
//! a list of probabilistic [`Branch`]es; Dirac rules have a single branch
//! with probability 1.

use crate::guard::Guard;
use crate::location::{LocId, Owner};
use crate::variable::{VarId, Variable};
use std::fmt;

/// Index of a rule inside a [`crate::SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub usize);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An exact rational probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Probability {
    num: u64,
    den: u64,
}

impl Probability {
    /// Probability 1.
    pub const ONE: Probability = Probability { num: 1, den: 1 };
    /// Probability 1/2.
    pub const HALF: Probability = Probability { num: 1, den: 2 };

    /// Creates a probability `num/den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "probability denominator must be non-zero");
        assert!(num <= den, "probability must not exceed 1");
        let g = gcd(num, den);
        match (num.checked_div(g), den.checked_div(g)) {
            (Some(num), Some(den)) => Probability { num, den },
            _ => Probability { num: 0, den: 1 },
        }
    }

    /// Numerator of the reduced fraction.
    pub fn numerator(&self) -> u64 {
        self.num
    }

    /// Denominator of the reduced fraction.
    pub fn denominator(&self) -> u64 {
        self.den
    }

    /// The probability as an `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Whether this is probability 1.
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// Whether this is probability 0.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Exact sum of probabilities, as a reduced fraction.
    pub fn sum(probs: impl IntoIterator<Item = Probability>) -> Probability {
        let mut acc_num: u128 = 0;
        let mut acc_den: u128 = 1;
        for p in probs {
            // acc_num/acc_den + p.num/p.den
            acc_num = acc_num * p.den as u128 + p.num as u128 * acc_den;
            acc_den *= p.den as u128;
            let g = gcd128(acc_num, acc_den);
            acc_num /= g;
            acc_den /= g;
        }
        Probability::new(acc_num as u64, acc_den as u64)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn gcd128(a: u128, b: u128) -> u128 {
    if b == 0 {
        if a == 0 {
            1
        } else {
            a
        }
    } else {
        gcd128(b, a % b)
    }
}

/// One probabilistic destination of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Branch {
    /// Destination location.
    pub to: LocId,
    /// Probability of this destination.
    pub prob: Probability,
}

impl Branch {
    /// Creates a branch.
    pub fn new(to: LocId, prob: Probability) -> Self {
        Branch { to, prob }
    }
}

/// The update vector `u` of a rule, stored sparsely as per-variable
/// increments.  Updates can only increment variables (threshold automata
/// never decrease shared variables).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Update {
    increments: Vec<(VarId, u64)>,
}

impl Update {
    /// The empty update (all variables unchanged).
    pub fn none() -> Self {
        Update {
            increments: Vec::new(),
        }
    }

    /// Increment a single variable by one.
    pub fn increment(var: VarId) -> Self {
        Update {
            increments: vec![(var, 1)],
        }
    }

    /// Increment a single variable by `amount`.
    pub fn increment_by(var: VarId, amount: u64) -> Self {
        Update {
            increments: vec![(var, amount)],
        }
    }

    /// Adds another increment and returns the extended update.
    pub fn and_increment(mut self, var: VarId) -> Self {
        self.increments.push((var, 1));
        self
    }

    /// The sparse increment list.
    pub fn increments(&self) -> &[(VarId, u64)] {
        &self.increments
    }

    /// Whether the update leaves every variable unchanged.
    pub fn is_empty(&self) -> bool {
        self.increments.iter().all(|&(_, k)| k == 0)
    }

    /// The increment applied to a particular variable.
    pub fn increment_of(&self, var: VarId) -> u64 {
        self.increments
            .iter()
            .filter(|&&(v, _)| v == var)
            .map(|&(_, k)| k)
            .sum()
    }

    /// Applies the update in place to a variable valuation.
    pub fn apply(&self, values: &mut [u64]) {
        for &(v, k) in &self.increments {
            values[v.0] += k;
        }
    }

    /// Whether any incremented variable satisfies `pred`.
    pub fn touches(&self, mut pred: impl FnMut(VarId) -> bool) -> bool {
        self.increments.iter().any(|&(v, k)| k > 0 && pred(v))
    }

    /// Renders the update with variable names.
    pub fn display_with(&self, vars: &[Variable]) -> String {
        if self.is_empty() {
            return "-".to_string();
        }
        self.increments
            .iter()
            .filter(|&&(_, k)| k > 0)
            .map(|&(v, k)| {
                let name = vars
                    .get(v.0)
                    .map(|x| x.name().to_string())
                    .unwrap_or_else(|| format!("{v}"));
                if k == 1 {
                    format!("{name}++")
                } else {
                    format!("{name} += {k}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A transition rule of either automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    name: String,
    from: LocId,
    branches: Vec<Branch>,
    guard: Guard,
    update: Update,
    round_switch: bool,
    owner: Owner,
}

impl Rule {
    /// Creates a Dirac rule `(from, to, guard, update)`.
    pub fn dirac(
        name: impl Into<String>,
        from: LocId,
        to: LocId,
        guard: Guard,
        update: Update,
        owner: Owner,
    ) -> Self {
        Rule {
            name: name.into(),
            from,
            branches: vec![Branch::new(to, Probability::ONE)],
            guard,
            update,
            round_switch: false,
            owner,
        }
    }

    /// Creates a probabilistic rule `(from, δ_to, guard, update)`.
    pub fn probabilistic(
        name: impl Into<String>,
        from: LocId,
        branches: Vec<Branch>,
        guard: Guard,
        update: Update,
        owner: Owner,
    ) -> Self {
        Rule {
            name: name.into(),
            from,
            branches,
            guard,
            update,
            round_switch: false,
            owner,
        }
    }

    /// Creates a round-switch rule `(from, to, true, 0)`.
    pub fn round_switch(name: impl Into<String>, from: LocId, to: LocId, owner: Owner) -> Self {
        Rule {
            name: name.into(),
            from,
            branches: vec![Branch::new(to, Probability::ONE)],
            guard: Guard::top(),
            update: Update::none(),
            round_switch: true,
            owner,
        }
    }

    /// Rule name (e.g. `"r21"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source location.
    pub fn from(&self) -> LocId {
        self.from
    }

    /// The probabilistic branches.  Dirac rules have exactly one branch with
    /// probability 1.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// The guard `φ`.
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// The update vector `u`.
    pub fn update(&self) -> &Update {
        &self.update
    }

    /// Whether this is a round-switch rule (final location → border location
    /// of the next round).
    pub fn is_round_switch(&self) -> bool {
        self.round_switch
    }

    /// Which automaton the rule belongs to.
    pub fn owner(&self) -> Owner {
        self.owner
    }

    /// Whether the rule has a single destination with probability 1.
    pub fn is_dirac(&self) -> bool {
        self.branches.len() == 1 && self.branches[0].prob.is_one()
    }

    /// The destination of a Dirac rule.
    pub fn dirac_to(&self) -> Option<LocId> {
        if self.is_dirac() {
            Some(self.branches[0].to)
        } else {
            None
        }
    }

    /// Whether the rule is a self-loop (every branch returns to the source).
    pub fn is_self_loop(&self) -> bool {
        self.branches.iter().all(|b| b.to == self.from)
    }

    /// Whether the probabilities of all branches sum to exactly 1.
    pub fn probabilities_sum_to_one(&self) -> bool {
        Probability::sum(self.branches.iter().map(|b| b.prob)).is_one()
    }

    /// Whether the guard only tests coin variables ("coin-based" rule).
    pub fn is_coin_based(&self, vars: &[Variable]) -> bool {
        self.guard.kind(vars) == crate::guard::GuardKind::Coin
    }

    /// Internal: replaces the name.
    pub(crate) fn with_name(&self, name: impl Into<String>) -> Rule {
        Rule {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Internal: produces a Dirac copy of this rule pointing to `to`
    /// (used by the Definition-1 de-probabilisation).
    pub(crate) fn dirac_copy_to(&self, name: impl Into<String>, to: LocId) -> Rule {
        Rule {
            name: name.into(),
            from: self.from,
            branches: vec![Branch::new(to, Probability::ONE)],
            guard: self.guard.clone(),
            update: self.update.clone(),
            round_switch: self.round_switch,
            owner: self.owner,
        }
    }

    /// Internal: redirects the (single) destination of a Dirac rule.
    pub(crate) fn redirect_to(&self, to: LocId) -> Rule {
        assert!(self.is_dirac(), "only Dirac rules can be redirected");
        Rule {
            branches: vec![Branch::new(to, Probability::ONE)],
            ..self.clone()
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> ", self.name, self.from)?;
        if self.is_dirac() {
            write!(f, "{}", self.branches[0].to)?;
        } else {
            write!(f, "{{")?;
            for (i, b) in self.branches.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", b.to, b.prob)?;
            }
            write!(f, "}}")?;
        }
        write!(f, " [{}]", self.guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;

    #[test]
    fn probability_reduction_and_accessors() {
        let p = Probability::new(2, 4);
        assert_eq!(p, Probability::HALF);
        assert_eq!(p.numerator(), 1);
        assert_eq!(p.denominator(), 2);
        assert!((p.to_f64() - 0.5).abs() < 1e-12);
        assert!(Probability::ONE.is_one());
        assert!(Probability::new(0, 3).is_zero());
    }

    #[test]
    fn probability_sum_is_exact() {
        let s = Probability::sum(vec![Probability::HALF, Probability::new(1, 3)]);
        assert_eq!(s, Probability::new(5, 6));
        let one = Probability::sum(vec![Probability::HALF, Probability::HALF]);
        assert!(one.is_one());
        let zero = Probability::sum(std::iter::empty());
        assert!(zero.is_zero());
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn probability_rejects_more_than_one() {
        let _ = Probability::new(3, 2);
    }

    #[test]
    fn update_application_and_queries() {
        let u = Update::increment(VarId(0)).and_increment(VarId(2));
        let mut vals = vec![0, 5, 7];
        u.apply(&mut vals);
        assert_eq!(vals, vec![1, 5, 8]);
        assert_eq!(u.increment_of(VarId(0)), 1);
        assert_eq!(u.increment_of(VarId(1)), 0);
        assert!(!u.is_empty());
        assert!(Update::none().is_empty());
        assert!(u.touches(|v| v == VarId(2)));
        assert!(!u.touches(|v| v == VarId(1)));
        let u2 = Update::increment_by(VarId(1), 3);
        assert_eq!(u2.increment_of(VarId(1)), 3);
    }

    #[test]
    fn dirac_rule_properties() {
        let r = Rule::dirac(
            "r1",
            LocId(0),
            LocId(1),
            Guard::top(),
            Update::none(),
            Owner::Process,
        );
        assert!(r.is_dirac());
        assert_eq!(r.dirac_to(), Some(LocId(1)));
        assert!(!r.is_round_switch());
        assert!(!r.is_self_loop());
        assert!(r.probabilities_sum_to_one());
        assert_eq!(r.owner(), Owner::Process);
    }

    #[test]
    fn probabilistic_rule_properties() {
        let r = Rule::probabilistic(
            "rb",
            LocId(0),
            vec![
                Branch::new(LocId(1), Probability::HALF),
                Branch::new(LocId(2), Probability::HALF),
            ],
            Guard::top(),
            Update::none(),
            Owner::Coin,
        );
        assert!(!r.is_dirac());
        assert_eq!(r.dirac_to(), None);
        assert!(r.probabilities_sum_to_one());
        let bad = Rule::probabilistic(
            "bad",
            LocId(0),
            vec![Branch::new(LocId(1), Probability::HALF)],
            Guard::top(),
            Update::none(),
            Owner::Coin,
        );
        assert!(!bad.probabilities_sum_to_one());
    }

    #[test]
    fn round_switch_and_self_loop() {
        let rs = Rule::round_switch("s1", LocId(3), LocId(0), Owner::Process);
        assert!(rs.is_round_switch());
        assert!(rs.guard().is_true());
        let sl = Rule::dirac(
            "loop",
            LocId(4),
            LocId(4),
            Guard::top(),
            Update::none(),
            Owner::Process,
        );
        assert!(sl.is_self_loop());
    }

    #[test]
    fn coin_based_detection() {
        let vars = vec![
            Variable::new("a0", crate::variable::VarKind::Shared),
            Variable::new("cc0", crate::variable::VarKind::Coin),
        ];
        let coin_rule = Rule::dirac(
            "r22",
            LocId(0),
            LocId(1),
            Guard::ge(VarId(1), LinearExpr::constant(0, 1)),
            Update::none(),
            Owner::Process,
        );
        assert!(coin_rule.is_coin_based(&vars));
        let shared_rule = Rule::dirac(
            "r3",
            LocId(0),
            LocId(1),
            Guard::ge(VarId(0), LinearExpr::constant(0, 1)),
            Update::none(),
            Owner::Process,
        );
        assert!(!shared_rule.is_coin_based(&vars));
    }

    #[test]
    fn display_formats() {
        let r = Rule::dirac(
            "r1",
            LocId(0),
            LocId(1),
            Guard::top(),
            Update::none(),
            Owner::Process,
        );
        assert!(format!("{r}").contains("r1"));
        assert_eq!(format!("{}", Probability::HALF), "1/2");
        assert_eq!(format!("{}", RuleId(7)), "r7");
        let vars = vec![Variable::new("a0", crate::variable::VarKind::Shared)];
        assert_eq!(Update::none().display_with(&vars), "-");
        assert_eq!(Update::increment(VarId(0)).display_with(&vars), "a0++");
    }
}
