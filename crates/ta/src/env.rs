//! Environments: parameters, resilience conditions and the `N` function.
//!
//! An environment `Env = (Π, RC, N)` fixes the set of parameters (ranging
//! over natural numbers), the resilience condition — a conjunction of linear
//! constraints over the parameters — and the function `N` mapping an
//! admissible parameter valuation to the number of explicitly modelled
//! processes and common coins (Sect. III-B(a) of the paper).

use crate::expr::{LinearConstraint, LinearExpr, ParamId};
use std::fmt;

/// Number of explicitly modelled processes and common coins for a concrete
/// parameter valuation: the value `N(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemSize {
    /// Number of copies of the correct-process threshold automaton.
    pub processes: u64,
    /// Number of copies of the common-coin automaton (usually 0 or 1).
    pub coins: u64,
}

/// A concrete assignment of natural numbers to all parameters of an
/// environment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamValuation {
    values: Vec<u64>,
}

impl ParamValuation {
    /// Creates a valuation from raw values, ordered by [`ParamId`].
    pub fn new(values: Vec<u64>) -> Self {
        ParamValuation { values }
    }

    /// The raw value vector.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The value of a single parameter.
    pub fn value(&self, p: ParamId) -> u64 {
        self.values[p.0]
    }

    /// Number of parameters in this valuation.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the valuation is empty (no parameters).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for ParamValuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The environment `Env = (Π, RC, N)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    params: Vec<String>,
    resilience: Vec<LinearConstraint>,
    num_processes: LinearExpr,
    num_coins: LinearExpr,
}

impl Environment {
    /// Number of declared parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Names of all parameters, ordered by [`ParamId`].
    pub fn param_names(&self) -> &[String] {
        &self.params
    }

    /// The name of a parameter.
    pub fn param_name(&self, p: ParamId) -> &str {
        &self.params[p.0]
    }

    /// Looks up a parameter by name.
    pub fn param_id(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p == name).map(ParamId)
    }

    /// The conjunction of resilience constraints `RC`.
    pub fn resilience(&self) -> &[LinearConstraint] {
        &self.resilience
    }

    /// The expression computing the number of modelled processes.
    pub fn num_processes_expr(&self) -> &LinearExpr {
        &self.num_processes
    }

    /// The expression computing the number of modelled common coins.
    pub fn num_coins_expr(&self) -> &LinearExpr {
        &self.num_coins
    }

    /// Whether a valuation satisfies the resilience condition.
    pub fn is_admissible(&self, valuation: &ParamValuation) -> bool {
        valuation.len() == self.num_params()
            && self.resilience.iter().all(|c| c.holds(valuation.values()))
    }

    /// Computes `N(p)` for an admissible valuation.
    ///
    /// Returns `None` if the valuation is not admissible or if one of the
    /// size expressions evaluates to a negative number.
    pub fn system_size(&self, valuation: &ParamValuation) -> Option<SystemSize> {
        if !self.is_admissible(valuation) {
            return None;
        }
        let procs = self.num_processes.eval(valuation.values());
        let coins = self.num_coins.eval(valuation.values());
        if procs < 0 || coins < 0 {
            return None;
        }
        Some(SystemSize {
            processes: procs as u64,
            coins: coins as u64,
        })
    }

    /// Enumerates all admissible valuations with every parameter bounded by
    /// `max_value` (inclusive), sorted by the number of modelled processes.
    ///
    /// This is the workhorse of the bounded-parameter sweeps used by the
    /// explicit-state checker in place of ByMC's fully parameterized
    /// reasoning.
    pub fn admissible_valuations(&self, max_value: u64) -> Vec<ParamValuation> {
        let k = self.num_params();
        let mut out = Vec::new();
        let mut current = vec![0u64; k];
        self.enumerate_rec(0, max_value, &mut current, &mut out);
        out.sort_by_key(|v| {
            self.system_size(v)
                .map(|s| (s.processes, s.coins))
                .unwrap_or((u64::MAX, u64::MAX))
        });
        out
    }

    /// Returns the admissible valuation with the smallest number of modelled
    /// processes among those bounded by `max_value`, if any.
    pub fn smallest_admissible(&self, max_value: u64) -> Option<ParamValuation> {
        self.admissible_valuations(max_value).into_iter().next()
    }

    fn enumerate_rec(
        &self,
        idx: usize,
        max_value: u64,
        current: &mut Vec<u64>,
        out: &mut Vec<ParamValuation>,
    ) {
        if idx == current.len() {
            let v = ParamValuation::new(current.clone());
            if self.is_admissible(&v) && self.system_size(&v).is_some() {
                out.push(v);
            }
            return;
        }
        for value in 0..=max_value {
            current[idx] = value;
            self.enumerate_rec(idx + 1, max_value, current, out);
        }
        current[idx] = 0;
    }

    /// Renders the resilience condition using parameter names.
    pub fn describe_resilience(&self) -> String {
        if self.resilience.is_empty() {
            return "true".to_string();
        }
        self.resilience
            .iter()
            .map(|c| c.display_with(&self.params))
            .collect::<Vec<_>>()
            .join(" /\\ ")
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Env(params = [{}], RC = {})",
            self.params.join(", "),
            self.describe_resilience()
        )
    }
}

/// Builder for [`Environment`].
#[derive(Debug, Default)]
pub struct EnvironmentBuilder {
    params: Vec<String>,
    resilience: Vec<LinearConstraint>,
    num_processes: Option<LinearExpr>,
    num_coins: Option<LinearExpr>,
}

impl EnvironmentBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a parameter and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a parameter with the same name was already declared.
    pub fn param(&mut self, name: &str) -> ParamId {
        assert!(
            !self.params.iter().any(|p| p == name),
            "duplicate parameter name {name:?}"
        );
        self.params.push(name.to_string());
        ParamId(self.params.len() - 1)
    }

    /// Adds one conjunct of the resilience condition.
    pub fn require(&mut self, constraint: LinearConstraint) -> &mut Self {
        self.resilience.push(constraint);
        self
    }

    /// Sets the expression computing the number of modelled processes.
    pub fn processes(&mut self, expr: LinearExpr) -> &mut Self {
        self.num_processes = Some(expr);
        self
    }

    /// Sets the expression computing the number of modelled common coins.
    pub fn coins(&mut self, expr: LinearExpr) -> &mut Self {
        self.num_coins = Some(expr);
        self
    }

    /// Finishes the environment.
    ///
    /// # Panics
    ///
    /// Panics if an expression or constraint was built for a different number
    /// of parameters than declared.
    pub fn build(self) -> Environment {
        let k = self.params.len();
        let num_processes = self
            .num_processes
            .unwrap_or_else(|| LinearExpr::constant(k, 0));
        let num_coins = self.num_coins.unwrap_or_else(|| LinearExpr::constant(k, 0));
        assert_eq!(num_processes.num_params(), k);
        assert_eq!(num_coins.num_params(), k);
        for c in &self.resilience {
            assert_eq!(c.lhs().num_params(), k);
        }
        Environment {
            params: self.params,
            resilience: self.resilience,
            num_processes,
            num_coins,
        }
    }
}

/// Builds the standard Byzantine environment `BAMP_{n,t}[n > a*t, CC]` used
/// throughout the benchmark: parameters `n`, `t`, `f`, `cc`, resilience
/// `n > a*t /\ t >= f /\ f >= 0 /\ cc >= 1`, `N(p) = (n - f, 1)`.
pub fn byzantine_common_coin_env(resilience_factor: i64) -> Environment {
    let mut b = EnvironmentBuilder::new();
    let n = b.param("n");
    let t = b.param("t");
    let f = b.param("f");
    let cc = b.param("cc");
    let k = 4usize;
    b.require(LinearConstraint::gt(
        LinearExpr::param(k, n),
        LinearExpr::term(k, t, resilience_factor),
    ));
    b.require(LinearConstraint::ge(
        LinearExpr::param(k, t),
        LinearExpr::param(k, f),
    ));
    b.require(LinearConstraint::ge(
        LinearExpr::param(k, f),
        LinearExpr::constant(k, 0),
    ));
    b.require(LinearConstraint::ge(
        LinearExpr::param(k, cc),
        LinearExpr::constant(k, 1),
    ));
    b.processes(LinearExpr::param(k, n).sub(&LinearExpr::param(k, f)));
    b.coins(LinearExpr::constant(k, 1));
    b.build()
}

/// Builds the crash-stop environment used by the generated protocol
/// families: the same parameters `n`, `t`, `f`, `cc` and resilience
/// `n > a*t /\ t >= f /\ f >= 0 /\ cc >= 1` as
/// [`byzantine_common_coin_env`], but `N(p) = (n, 1)` — *all* `n` processes
/// are modelled, because a crashed process is one that simply stops taking
/// steps, and the asynchronous interleaving semantics already contains every
/// execution in which up to `f` processes never move again.  Threshold
/// guards of crash-stop protocols consequently wait for `n - t` messages
/// (all but the slowest `t`) instead of the Byzantine `n - t - f`.
pub fn crash_stop_common_coin_env(resilience_factor: i64) -> Environment {
    let mut b = EnvironmentBuilder::new();
    let n = b.param("n");
    let t = b.param("t");
    let f = b.param("f");
    let cc = b.param("cc");
    let k = 4usize;
    b.require(LinearConstraint::gt(
        LinearExpr::param(k, n),
        LinearExpr::term(k, t, resilience_factor),
    ));
    b.require(LinearConstraint::ge(
        LinearExpr::param(k, t),
        LinearExpr::param(k, f),
    ));
    b.require(LinearConstraint::ge(
        LinearExpr::param(k, f),
        LinearExpr::constant(k, 0),
    ));
    b.require(LinearConstraint::ge(
        LinearExpr::param(k, cc),
        LinearExpr::constant(k, 1),
    ));
    b.processes(LinearExpr::param(k, n));
    b.coins(LinearExpr::constant(k, 1));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Rel;

    #[test]
    fn byzantine_env_has_expected_shape() {
        let env = byzantine_common_coin_env(3);
        assert_eq!(env.num_params(), 4);
        assert_eq!(env.param_name(ParamId(0)), "n");
        assert_eq!(env.param_id("f"), Some(ParamId(2)));
        assert_eq!(env.param_id("zzz"), None);
        assert_eq!(env.resilience().len(), 4);
    }

    #[test]
    fn admissibility_respects_resilience() {
        let env = byzantine_common_coin_env(3);
        // n=4, t=1, f=1, cc=1 is admissible (4 > 3)
        assert!(env.is_admissible(&ParamValuation::new(vec![4, 1, 1, 1])));
        // n=3, t=1 violates n > 3t
        assert!(!env.is_admissible(&ParamValuation::new(vec![3, 1, 1, 1])));
        // f > t violates t >= f
        assert!(!env.is_admissible(&ParamValuation::new(vec![7, 1, 2, 1])));
        // cc = 0 violates cc >= 1
        assert!(!env.is_admissible(&ParamValuation::new(vec![4, 1, 1, 0])));
        // wrong arity
        assert!(!env.is_admissible(&ParamValuation::new(vec![4, 1, 1])));
    }

    #[test]
    fn system_size_counts_correct_processes_and_one_coin() {
        let env = byzantine_common_coin_env(3);
        let size = env
            .system_size(&ParamValuation::new(vec![4, 1, 1, 1]))
            .unwrap();
        assert_eq!(size.processes, 3);
        assert_eq!(size.coins, 1);
        assert!(env
            .system_size(&ParamValuation::new(vec![3, 1, 1, 1]))
            .is_none());
    }

    #[test]
    fn admissible_enumeration_is_sorted_by_system_size() {
        let env = byzantine_common_coin_env(3);
        let vals = env.admissible_valuations(5);
        assert!(!vals.is_empty());
        let sizes: Vec<u64> = vals
            .iter()
            .map(|v| env.system_size(v).unwrap().processes)
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // smallest admissible for n > 3t: n=1,t=0,f=0? n>0 holds, so n=1 works
        let smallest = env.smallest_admissible(5).unwrap();
        assert_eq!(env.system_size(&smallest).unwrap().processes, 1);
    }

    #[test]
    fn crash_env_models_all_processes() {
        let env = crash_stop_common_coin_env(2);
        assert_eq!(env.num_params(), 4);
        let v = ParamValuation::new(vec![3, 1, 1, 1]);
        assert!(env.is_admissible(&v));
        let size = env.system_size(&v).unwrap();
        assert_eq!(size.processes, 3);
        assert_eq!(size.coins, 1);
        // same resilience shape as the Byzantine environment
        assert!(!env.is_admissible(&ParamValuation::new(vec![2, 1, 1, 1])));
        assert!(!env.is_admissible(&ParamValuation::new(vec![5, 1, 2, 1])));
    }

    #[test]
    fn builder_rejects_duplicate_parameters() {
        let result = std::panic::catch_unwind(|| {
            let mut b = EnvironmentBuilder::new();
            b.param("n");
            b.param("n");
        });
        assert!(result.is_err());
    }

    #[test]
    fn describe_resilience_uses_names() {
        let env = byzantine_common_coin_env(3);
        let s = env.describe_resilience();
        assert!(s.contains("n > 3*t"));
        assert!(s.contains("t >= f"));
    }

    #[test]
    fn empty_resilience_describes_as_true() {
        let mut b = EnvironmentBuilder::new();
        let _n = b.param("n");
        let env = b.build();
        assert_eq!(env.describe_resilience(), "true");
    }

    #[test]
    fn constraint_accessors_expose_parts() {
        let env = byzantine_common_coin_env(3);
        let c = &env.resilience()[0];
        assert_eq!(c.rel(), Rel::Gt);
        assert_eq!(c.lhs().coeff(ParamId(0)), 1);
        assert_eq!(c.rhs().coeff(ParamId(1)), 3);
    }

    #[test]
    fn valuation_display_and_accessors() {
        let v = ParamValuation::new(vec![4, 1, 1, 1]);
        assert_eq!(format!("{v}"), "(4, 1, 1, 1)");
        assert_eq!(v.value(ParamId(0)), 4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
    }
}
