//! Protocol categories (A), (B), (C) from Sect. V-B of the paper.
//!
//! The category determines which sufficient conditions are used to establish
//! almost-sure termination:
//!
//! * **(A)** — no "decide" action: conditions `(C1)` and `(C2)`.
//! * **(B)** — a "decide" action and purely binary messages: conditions
//!   `(C1)` and `(C2')`.
//! * **(C)** — a "decide" action plus a Binary Crusader Agreement primitive:
//!   the binding conditions `(CB0)`–`(CB4)` (which imply `(C1)`) plus
//!   `(C2')`.

use std::fmt;

/// The design category of a common-coin consensus protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolCategory {
    /// No decide action (e.g. Rabin83 as modelled in the paper).
    A,
    /// Decide action with binary-only messages (e.g. CC85, FMR05, KS16).
    B,
    /// Decide action built on Binary Crusader Agreement (e.g. MMR14,
    /// Miller18, ABY22).
    C,
}

impl ProtocolCategory {
    /// Whether protocols of this category have decision locations.
    pub fn has_decisions(self) -> bool {
        !matches!(self, ProtocolCategory::A)
    }

    /// Whether protocols of this category require the binding conditions
    /// `(CB0)`–`(CB4)`.
    pub fn requires_binding(self) -> bool {
        matches!(self, ProtocolCategory::C)
    }

    /// Short label used in tables ("(A)", "(B)", "(C)").
    pub fn label(self) -> &'static str {
        match self {
            ProtocolCategory::A => "(A)",
            ProtocolCategory::B => "(B)",
            ProtocolCategory::C => "(C)",
        }
    }
}

impl fmt::Display for ProtocolCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_predicates() {
        assert!(!ProtocolCategory::A.has_decisions());
        assert!(ProtocolCategory::B.has_decisions());
        assert!(ProtocolCategory::C.has_decisions());
        assert!(!ProtocolCategory::A.requires_binding());
        assert!(!ProtocolCategory::B.requires_binding());
        assert!(ProtocolCategory::C.requires_binding());
    }

    #[test]
    fn labels() {
        assert_eq!(ProtocolCategory::A.label(), "(A)");
        assert_eq!(format!("{}", ProtocolCategory::C), "(C)");
    }
}
